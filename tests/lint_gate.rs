//! Tier-1 lint gate: `cargo test -q` from the workspace root fails if
//! `cargo run -p rim-xtask -- lint` would report anything. This is the
//! enforcement point for the project's numeric discipline (no exact
//! float equality, distance-level comparisons), hermeticity (no
//! external dependencies, ever), the panic-freedom and
//! concurrency-discipline obligations on the hot paths, and the
//! differential-testing policy: the `naive-oracle-retained` audit fails
//! the gate if any `O(n²)` reference oracle ever loses its test
//! callers.
//!
//! The gate also pins the call-graph layer itself: the graph must stay
//! populated (a degenerate parse would silently disable every
//! graph-driven rule), the graph-based oracle-retention verdicts must
//! agree with the legacy token scan, and a full lint run must stay
//! inside a wall-clock budget so the gate remains cheap enough to run
//! on every `cargo test`.

use std::path::Path;
use std::time::{Duration, Instant};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lint_is_clean() {
    let diags = rim_xtask::run_lint(root()).expect("lint must run on the workspace");
    let rendered: Vec<String> = diags.iter().map(|d| d.human()).collect();
    assert!(
        diags.is_empty(),
        "`cargo run -p rim-xtask -- lint` would report {} diagnostic(s):\n{}\n\
         fix the findings or annotate intentional sites with `// rim-lint: allow(<rule>)`",
        diags.len(),
        rendered.join("\n")
    );
}

#[test]
fn call_graph_stays_populated() {
    let members = rim_xtask::load_workspace(root()).expect("workspace loads");
    let ws = rim_xtask::model::build(&members);
    assert!(
        ws.fns.len() > 200,
        "call graph has only {} fns; the parser or model degenerated",
        ws.fns.len()
    );
    assert!(
        ws.edges.len() > ws.fns.len(),
        "only {} edges over {} fns; call resolution degenerated",
        ws.edges.len(),
        ws.fns.len()
    );
    // The JSONL export carries one record per fn and per edge.
    let jsonl = ws.export_jsonl();
    assert_eq!(jsonl.lines().count(), ws.fns.len() + ws.edges.len());
    assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    // Every retained oracle must be defined *and* reachable from a test
    // in the graph — the reachability side of `naive-oracle-retained`.
    let reach = ws.reachable_from_tests();
    for oracle in rim_xtask::audit::RETAINED_ORACLES {
        let reachable = ws
            .defs_named(oracle)
            .iter()
            .any(|&i| !ws.fns[i].in_test && reach[i]);
        assert!(reachable, "`{oracle}` is not test-reachable in the call graph");
    }
}

#[test]
fn physical_engine_obligations_stay_registered() {
    // The SINR layer's standing obligations: the naive SINR oracle is a
    // retained differential reference (so `naive-oracle-retained` fails
    // the gate if the physical differential suite stops calling it), and
    // both physical kernel entry points carry the panic-freedom closure
    // check. Dropping any of these from the registries would silently
    // un-audit rim-phys; pin them here.
    for oracle in ["interference_vector_naive", "sinr_interference_naive"] {
        assert!(
            rim_xtask::audit::RETAINED_ORACLES.contains(&oracle),
            "`{oracle}` must stay in RETAINED_ORACLES"
        );
    }
    for root in ["physical_interference_vector_with", "sinr_interference_with"] {
        assert!(
            rim_xtask::audit::PANIC_FREE_ROOTS.contains(&root),
            "`{root}` must stay in PANIC_FREE_ROOTS"
        );
    }
    assert!(
        rim_xtask::rules::rule_known("power-domain-mismatch"),
        "the dBm/mW mixing rule must stay registered"
    );
}

#[test]
fn streaming_kernel_obligations_stay_registered() {
    // The million-node streaming path's standing obligations: both
    // counting entry points and the sharded scatter primitive carry the
    // panic-freedom closure check, the thread-count-invariant kernels
    // are determinism roots, and the naive oracle the streaming
    // differential suite pins against stays retained. Dropping any of
    // these would silently un-audit the SoA/streaming layer.
    for root in ["interference_counts", "interference_counts_sharded", "par_scatter_u32"] {
        assert!(
            rim_xtask::audit::PANIC_FREE_ROOTS.contains(&root),
            "`{root}` must stay in PANIC_FREE_ROOTS"
        );
    }
    for root in ["interference_counts_sharded", "par_scatter_u32"] {
        assert!(
            rim_xtask::flow::DETERMINISM_ROOTS.contains(&root),
            "`{root}` must stay in DETERMINISM_ROOTS"
        );
    }
    assert!(
        rim_xtask::audit::RETAINED_ORACLES.contains(&"interference_vector_naive"),
        "the naive oracle anchors the streaming differential suite"
    );
}

#[test]
fn churn_hot_path_obligations_stay_registered() {
    // The churn layer's standing obligations: the whole edit hot path
    // (op application and tombstoning departures) plus both snapshot
    // codec entry points are panic-free roots, and the replay-equality
    // surface (apply_edit, remove_node, the snapshot encoder) must not
    // reach RNG draws, wall-clock reads, or atomic RMW — bit-exact
    // (seed, trace) replay and snapshot restore depend on it. Dropping
    // any of these would silently un-audit rim-churn.
    for root in ["remove_node", "apply_edit", "encode_snapshot", "decode_snapshot"] {
        assert!(
            rim_xtask::audit::PANIC_FREE_ROOTS.contains(&root),
            "`{root}` must stay in PANIC_FREE_ROOTS"
        );
    }
    for root in ["remove_node", "apply_edit", "encode_snapshot"] {
        assert!(
            rim_xtask::flow::DETERMINISM_ROOTS.contains(&root),
            "`{root}` must stay in DETERMINISM_ROOTS"
        );
    }
    assert!(
        rim_xtask::audit::RETAINED_ORACLES.contains(&"interference_vector_naive"),
        "the naive oracle anchors the churn replay-differential suite"
    );
}

#[test]
fn graph_oracle_verdicts_agree_with_the_token_scan() {
    // Same workspace, both implementations: the graph-based audit is
    // stricter in general (it needs a call chain, not a mention), but on
    // the real workspace the two must agree rule-for-rule — here, both
    // clean. A divergence means either the token scan is matching a
    // mention without a call, or call resolution lost an edge.
    let members = rim_xtask::load_workspace(root()).expect("workspace loads");
    let mut legacy = Vec::new();
    rim_xtask::audit::audit_oracle_retained(&members, &mut legacy);
    let ws = rim_xtask::model::build(&members);
    let mut graph = Vec::new();
    rim_xtask::audit::audit_oracle_retained_graph(&ws, &mut graph);
    let legacy: Vec<String> = legacy.iter().map(|d| d.human()).collect();
    let graph: Vec<String> = graph.iter().map(|d| d.human()).collect();
    assert!(legacy.is_empty(), "token scan found: {legacy:#?}");
    assert!(graph.is_empty(), "graph audit found: {graph:#?}");
}

#[test]
fn committed_call_graph_export_is_fresh() {
    // `results/callgraph.jsonl` is a committed artifact; `graph --check`
    // in the CLI and this test both fail when a source change alters the
    // graph without the export being regenerated
    // (`cargo run -p rim-xtask -- graph`).
    let members = rim_xtask::load_workspace(root()).expect("workspace loads");
    let ws = rim_xtask::model::build(&members);
    let path = root().join("results/callgraph.jsonl");
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed: {e}", path.display()));
    assert!(
        committed == ws.export_jsonl(),
        "{} is stale; regenerate with `cargo run -p rim-xtask -- graph`",
        path.display()
    );
}

#[test]
fn squared_distance_verdicts_agree_between_scanner_and_dataflow() {
    // The units-of-measure dataflow pass replaced the token-window
    // scanner in `run_lint`, but the scanner is retained as a second
    // opinion: on the real workspace both must be clean. A divergence
    // means the unit inferencer regressed (false positive) or the
    // scanner's heuristics drifted from the lattice (false negative).
    let members = rim_xtask::load_workspace(root()).expect("workspace loads");
    let mut legacy = Vec::new();
    for member in &members {
        for sources in [&member.lib_sources, &member.test_sources] {
            for (rel, tokens, ranges) in sources {
                let pragmas = rim_xtask::rules::Pragmas::parse(tokens);
                let ctx = rim_xtask::rules::FileCtx {
                    path: rel,
                    tokens,
                    pragmas: &pragmas,
                    test_mod_ranges: ranges,
                };
                rim_xtask::rules::squared_distance_mismatch(&ctx, &mut legacy);
            }
        }
    }
    let ws = rim_xtask::model::build(&members);
    let flow = rim_xtask::flow::analyze(&ws);
    let pragma_map = ws
        .files
        .iter()
        .map(|f| (f.rel.to_string(), rim_xtask::rules::Pragmas::parse(f.tokens)))
        .collect();
    let mut dataflow = Vec::new();
    rim_xtask::flow::check_unit_mismatch(&ws, &flow, &pragma_map, &mut dataflow);
    let legacy: Vec<String> = legacy.iter().map(|d| d.human()).collect();
    let dataflow: Vec<String> = dataflow.iter().map(|d| d.human()).collect();
    assert!(legacy.is_empty(), "token scanner found: {legacy:#?}");
    assert!(dataflow.is_empty(), "dataflow pass found: {dataflow:#?}");
}

#[test]
fn lint_runtime_stays_within_budget() {
    // The whole point of an in-tree linter is that it rides along with
    // `cargo test`. Parsing every file, building the call graph, running
    // the expression-level dataflow passes, and running all rules must
    // stay comfortably interactive even in debug builds; 45s is ~20x the
    // current debug-profile cost, so this only trips on accidental
    // quadratic blowups, not on slow CI machines.
    let start = Instant::now();
    rim_xtask::run_lint(root()).expect("lint must run on the workspace");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(45),
        "full lint took {elapsed:?}; the gate must stay cheap"
    );
}
