//! Tier-1 lint gate: `cargo test -q` from the workspace root fails if
//! `cargo run -p rim-xtask -- lint` would report anything. This is the
//! enforcement point for the project's numeric discipline (no exact
//! float equality, distance-level comparisons), hermeticity (no
//! external dependencies, ever), the panic-freedom and
//! concurrency-discipline obligations on the hot paths, and the
//! differential-testing policy: the `naive-oracle-retained` audit fails
//! the gate if any `O(n²)` reference oracle ever loses its test
//! callers.
//!
//! The gate also pins the call-graph layer itself: the graph must stay
//! populated (a degenerate parse would silently disable every
//! graph-driven rule), the graph-based oracle-retention verdicts must
//! agree with the legacy token scan, and a full lint run must stay
//! inside a wall-clock budget so the gate remains cheap enough to run
//! on every `cargo test`.

use std::path::Path;
use std::time::{Duration, Instant};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_lint_is_clean() {
    let diags = rim_xtask::run_lint(root()).expect("lint must run on the workspace");
    let rendered: Vec<String> = diags.iter().map(|d| d.human()).collect();
    assert!(
        diags.is_empty(),
        "`cargo run -p rim-xtask -- lint` would report {} diagnostic(s):\n{}\n\
         fix the findings or annotate intentional sites with `// rim-lint: allow(<rule>)`",
        diags.len(),
        rendered.join("\n")
    );
}

#[test]
fn call_graph_stays_populated() {
    let members = rim_xtask::load_workspace(root()).expect("workspace loads");
    let ws = rim_xtask::model::build(&members);
    assert!(
        ws.fns.len() > 200,
        "call graph has only {} fns; the parser or model degenerated",
        ws.fns.len()
    );
    assert!(
        ws.edges.len() > ws.fns.len(),
        "only {} edges over {} fns; call resolution degenerated",
        ws.edges.len(),
        ws.fns.len()
    );
    // The JSONL export carries one record per fn and per edge.
    let jsonl = ws.export_jsonl();
    assert_eq!(jsonl.lines().count(), ws.fns.len() + ws.edges.len());
    assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    // Every retained oracle must be defined *and* reachable from a test
    // in the graph — the reachability side of `naive-oracle-retained`.
    let reach = ws.reachable_from_tests();
    for oracle in rim_xtask::audit::RETAINED_ORACLES {
        let reachable = ws
            .defs_named(oracle)
            .iter()
            .any(|&i| !ws.fns[i].in_test && reach[i]);
        assert!(reachable, "`{oracle}` is not test-reachable in the call graph");
    }
}

#[test]
fn graph_oracle_verdicts_agree_with_the_token_scan() {
    // Same workspace, both implementations: the graph-based audit is
    // stricter in general (it needs a call chain, not a mention), but on
    // the real workspace the two must agree rule-for-rule — here, both
    // clean. A divergence means either the token scan is matching a
    // mention without a call, or call resolution lost an edge.
    let members = rim_xtask::load_workspace(root()).expect("workspace loads");
    let mut legacy = Vec::new();
    rim_xtask::audit::audit_oracle_retained(&members, &mut legacy);
    let ws = rim_xtask::model::build(&members);
    let mut graph = Vec::new();
    rim_xtask::audit::audit_oracle_retained_graph(&ws, &mut graph);
    let legacy: Vec<String> = legacy.iter().map(|d| d.human()).collect();
    let graph: Vec<String> = graph.iter().map(|d| d.human()).collect();
    assert!(legacy.is_empty(), "token scan found: {legacy:#?}");
    assert!(graph.is_empty(), "graph audit found: {graph:#?}");
}

#[test]
fn lint_runtime_stays_within_budget() {
    // The whole point of an in-tree linter is that it rides along with
    // `cargo test`. Parsing every file, building the call graph, and
    // running all rules must stay comfortably interactive even in debug
    // builds; 30s is ~20x the current debug-profile cost, so this only
    // trips on accidental quadratic blowups, not on slow CI machines.
    let start = Instant::now();
    rim_xtask::run_lint(root()).expect("lint must run on the workspace");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "full lint took {elapsed:?}; the gate must stay cheap"
    );
}
