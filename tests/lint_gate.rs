//! Tier-1 lint gate: `cargo test -q` from the workspace root fails if
//! `cargo run -p rim-xtask -- lint` would report anything. This is the
//! enforcement point for the project's numeric discipline (no exact
//! float equality, distance-level comparisons), hermeticity (no
//! external dependencies, ever), and the differential-testing policy:
//! the `naive-oracle-retained` audit fails the gate if the `O(n²)`
//! reference kernel `interference_vector_naive` ever loses its test
//! callers.

use std::path::Path;

#[test]
fn workspace_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = rim_xtask::run_lint(root).expect("lint must run on the workspace");
    let rendered: Vec<String> = diags.iter().map(|d| d.human()).collect();
    assert!(
        diags.is_empty(),
        "`cargo run -p rim-xtask -- lint` would report {} diagnostic(s):\n{}\n\
         fix the findings or annotate intentional sites with `// rim-lint: allow(<rule>)`",
        diags.len(),
        rendered.join("\n")
    );
}
