//! Cross-crate invariants exercised through the facade's public API.

#![allow(clippy::needless_range_loop)] // node-id-indexed loops by design
use rim::prelude::*;
use rim_rng::prop::check;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};

/// Every baseline output is a valid topology-control result on random
/// fields: subgraph of the UDG and (except the NNF) connectivity
/// preserving.
#[test]
fn baselines_are_valid_topology_control_outputs() {
    for seed in 0..3u64 {
        let nodes = rim::workloads::uniform_square(80, 2.0, seed);
        let udg = unit_disk_graph(&nodes);
        for baseline in Baseline::ALL {
            let t = baseline.build(&nodes, &udg);
            assert!(t.respects_range(1.0), "{} seed={seed}", baseline.name());
            for e in t.edges() {
                assert!(
                    udg.has_edge(e.u, e.v),
                    "{} emitted a non-UDG edge",
                    baseline.name()
                );
            }
            if baseline.guarantees_connectivity() {
                assert!(
                    t.preserves_connectivity_of(&udg),
                    "{} broke connectivity (seed={seed})",
                    baseline.name()
                );
            }
        }
    }
}

/// The Section 3 sandwich holds for every baseline on random fields:
/// `deg(v) <= I(v)` and `I(G') <= Δ(UDG)`.
#[test]
fn interference_sandwich_on_all_baselines() {
    let nodes = rim::workloads::gaussian_clusters(4, 20, 3.0, 0.2, 9);
    let udg = unit_disk_graph(&nodes);
    let delta = udg.max_degree();
    for baseline in Baseline::ALL {
        let t = baseline.build(&nodes, &udg);
        let iv = interference_vector(&t);
        for v in 0..t.num_nodes() {
            assert!(iv[v] >= t.graph().degree(v), "{} node {v}", baseline.name());
        }
        assert!(
            graph_interference(&t) <= delta,
            "{}: I exceeds Δ",
            baseline.name()
        );
    }
}

/// The exact optimum never exceeds any baseline, and the `√(γ/2)`
/// certificate never exceeds the optimum (Lemma 5.5), across random
/// small highway instances.
#[test]
fn optimum_is_sandwiched_by_certificate_and_heuristics() {
    let mut rng = rim_rng::SmallRng::seed_from_u64(77);
    for _ in 0..6 {
        let n = 5 + (rng.gen::<u64>() % 3) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 1.8).collect();
        let h = HighwayInstance::new(xs);
        let nodes = h.node_set();
        let udg = unit_disk_graph(&nodes);
        let opt = min_interference_topology(&nodes, 1.0, SolverLimits::default());
        assert!(opt.optimal);
        // Certificate below optimum.
        let cert = rim::highway::bounds::optimum_lower_bound(&h);
        assert!((opt.interference as f64) >= cert.floor() - 1e-9);
        // Optimum below every connectivity-preserving baseline.
        for baseline in Baseline::ALL {
            let t = baseline.build(&nodes, &udg);
            if t.preserves_connectivity_of(&udg) {
                assert!(
                    opt.interference <= graph_interference(&t),
                    "optimum beaten by {}",
                    baseline.name()
                );
            }
        }
    }
}

/// Simulator runs on topology-control outputs are deterministic and
/// account packets consistently.
#[test]
fn simulation_accounting_is_consistent() {
    let nodes = rim::workloads::uniform_square(40, 1.8, 3);
    let udg = unit_disk_graph(&nodes);
    let t = Baseline::Emst.build(&nodes, &udg);
    let cfg = SimConfig {
        slots: 8_000,
        mac: MacConfig::csma(),
        traffic: TrafficConfig::Poisson { rate: 0.3 },
        alpha: 2.0,
        seed: 123,
    };
    let m = Simulator::new(t, cfg).run();
    assert!(m.generated > 0);
    // delivered + dropped <= generated (the rest is still queued).
    assert!(m.delivered + m.dropped_no_route + m.dropped_retries <= m.generated);
    // Collisions are a subset of transmissions.
    assert!(m.collisions <= m.transmissions);
    // Delivered packets took at least one hop and one slot… at least 0.
    assert!(m.total_hops >= m.delivered);
}

/// Random highway positions: `len` in `[min_len, max_len)`, coordinates
/// uniform in `[0, hi)`.
fn arb_positions(rng: &mut SmallRng, min_len: usize, max_len: usize, hi: f64) -> Vec<f64> {
    let n = rng.gen_range(min_len..max_len);
    (0..n).map(|_| rng.gen_range(0.0f64..hi)).collect()
}

/// A_apx always produces a valid connectivity-preserving topology on
/// arbitrary highway instances (including disconnected ones).
#[test]
fn aapx_is_always_valid() {
    check(
        "aapx_is_always_valid",
        32,
        |rng| arb_positions(rng, 2, 40, 6.0),
        |xs| {
            let h = HighwayInstance::new(xs.clone());
            let r = a_apx(&h);
            let udg = h.udg();
            prop_ensure!(r.topology.preserves_connectivity_of(&udg));
            prop_ensure!(r.topology.respects_range(1.0));
            Ok(())
        },
    );
}

/// A_gen likewise, with the O(√Δ) bound.
#[test]
fn agen_is_always_valid() {
    check(
        "agen_is_always_valid",
        32,
        |rng| arb_positions(rng, 2, 60, 4.0),
        |xs| {
            let h = HighwayInstance::new(xs.clone());
            let r = a_gen(&h);
            prop_ensure!(r.topology.preserves_connectivity_of(&h.udg()));
            let i = graph_interference(&r.topology) as f64;
            let delta = h.max_degree() as f64;
            prop_ensure!(i <= 9.0 * delta.sqrt() + 6.0, "I={i} Δ={delta}");
            Ok(())
        },
    );
}

/// γ equals the interference of the linear connection whenever that
/// connection is feasible.
#[test]
fn gamma_matches_linear_interference() {
    check(
        "gamma_matches_linear_interference",
        32,
        |rng| arb_positions(rng, 2, 30, 1.0),
        |xs| {
            let h = HighwayInstance::new(xs.clone());
            prop_ensure_eq!(gamma(&h), graph_interference(&h.linear_topology()));
            Ok(())
        },
    );
}
