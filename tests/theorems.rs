//! Cross-crate integration tests: one test per theorem/claim of the
//! paper, wired through the public API of the facade crate.

use rim::highway::bounds::exponential_chain_lower_bound;
use rim::highway::exponential::two_chains;
use rim::prelude::*;
use rim::topology_control::nnf::{contains_nnf, nearest_neighbor_forest};

/// Theorem 4.1 — the Nearest Neighbor Forest is `Ω(n)` worse than the
/// optimal connected topology on the two-chain construction.
#[test]
fn theorem_4_1_nnf_is_linear_factor_worse() {
    let mut prev_ratio = 0.0;
    for k in [6usize, 12, 24, 48] {
        let tc = two_chains(k);
        let udg = unit_disk_graph(&tc.nodes);
        let nnf = nearest_neighbor_forest(&tc.nodes, &udg);
        let witness = tc.witness_topology();

        let i_nnf = graph_interference(&nnf);
        let i_wit = graph_interference(&witness);

        // The NNF interference grows linearly: the horizontal chain alone
        // covers h_0 with k-1 disks.
        assert!(i_nnf >= k - 1, "k={k}: I(NNF)={i_nnf}");
        // The witness stays constant.
        assert!(i_wit <= 8, "k={k}: I(witness)={i_wit}");
        // And the gap widens with n.
        let ratio = i_nnf as f64 / i_wit as f64;
        assert!(ratio > prev_ratio, "ratio must grow with k");
        prev_ratio = ratio;
    }
}

/// Section 4's premise: all classic constructions contain the NNF (LIFE
/// is the noted exception, exercised in the topology-control crate).
#[test]
fn classic_baselines_contain_the_nnf() {
    let nodes = rim::workloads::uniform_square(70, 2.0, 31);
    let udg = unit_disk_graph(&nodes);
    for baseline in [
        Baseline::Nnf,
        Baseline::Emst,
        Baseline::Gabriel,
        Baseline::Rng,
        Baseline::Yao6,
        Baseline::Xtc,
        Baseline::Lmst,
        Baseline::Cbtc,
    ] {
        let t = baseline.build(&nodes, &udg);
        assert!(
            contains_nnf(&t, &udg),
            "{} does not contain the NNF",
            baseline.name()
        );
    }
}

/// Figure 7 — the linearly connected exponential chain has interference
/// exactly `n − 2`, concentrated at the leftmost node.
#[test]
fn figure_7_linear_chain_interference() {
    for n in [8usize, 32, 128] {
        let c = exponential_chain(n);
        let t = c.linear_topology();
        assert_eq!(graph_interference(&t), n - 2);
        assert_eq!(interference_at(&t, 0), n - 2);
    }
}

/// Theorems 5.1 + 5.2 — `A_exp` is `Θ(√n)`-optimal on the exponential
/// chain: `√n <= I(A_exp) <= √(2n) + 1`.
#[test]
fn theorem_5_1_and_5_2_aexp_sandwich() {
    for n in [16usize, 64, 144, 256] {
        let c = exponential_chain(n);
        let i = graph_interference(&a_exp(&c).topology) as f64;
        assert!(i >= exponential_chain_lower_bound(n).floor());
        assert!(i <= (2.0 * n as f64).sqrt() + 1.0);
    }
}

/// Theorem 5.4 — `A_gen` yields `O(√Δ)` on arbitrary highway instances.
#[test]
fn theorem_5_4_agen_sqrt_delta() {
    for seed in 0..4u64 {
        let h = rim::workloads::uniform_highway(250, 5.0, seed);
        let delta = h.max_degree();
        let r = a_gen(&h);
        assert!(r.topology.preserves_connectivity_of(&h.udg()));
        let i = graph_interference(&r.topology) as f64;
        assert!(
            i <= 9.0 * (delta as f64).sqrt() + 6.0,
            "seed={seed}: I={i} Δ={delta}"
        );
    }
}

/// Theorem 5.6 — `A_apx` approximates the optimum within `O(Δ^{1/4})`;
/// verified against the exact branch-and-bound optimum on small random
/// instances.
#[test]
fn theorem_5_6_aapx_approximation_ratio() {
    let mut rng = rim_rng::SmallRng::seed_from_u64(4242);
    for trial in 0..10 {
        let n = 6 + trial % 3;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0).collect();
        let h = HighwayInstance::new(xs.clone());
        let apx = graph_interference(&a_apx(&h).topology) as f64;
        let opt = min_interference_topology(&h.node_set(), 1.0, SolverLimits::default());
        assert!(opt.optimal, "trial {trial}");
        let delta = h.max_degree() as f64;
        // Small instances: the ratio must stay within a small multiple of
        // Δ^{1/4} (the theorem's asymptotic bound with a concrete c).
        assert!(
            apx <= (opt.interference as f64) * 3.0 * delta.powf(0.25) + 2.0,
            "trial {trial}: xs={xs:?} apx={apx} opt={}",
            opt.interference
        );
    }
}

/// Figure 7 again, pinned through each concrete engine: the theorem
/// regressions must not depend on `Auto`'s size-based dispatch, so the
/// indexed and parallel kernels are asserted against the same exact
/// `n − 2` closed form (and `Naive` documents the oracle's verdict).
#[test]
fn figure_7_linear_chain_interference_pinned_engines() {
    for n in [8usize, 32, 128] {
        let t = exponential_chain(n).linear_topology();
        for engine in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
            assert_eq!(
                graph_interference_with(&t, engine),
                n - 2,
                "n={n} engine={}",
                engine.name()
            );
        }
    }
}

/// Theorems 5.1 + 5.2 pinned through the indexed engine: the `√n`
/// sandwich must hold on the exact counts the spatial index produces —
/// exponential chains are precisely the instances whose radius spread
/// forces the kd-tree backend.
#[test]
fn theorem_5_1_and_5_2_aexp_sandwich_pinned_indexed() {
    for n in [16usize, 64, 144, 256] {
        let c = exponential_chain(n);
        let t = a_exp(&c).topology;
        let i = graph_interference_with(&t, Engine::Indexed) as f64;
        assert!(i >= exponential_chain_lower_bound(n).floor(), "n={n}: I={i}");
        assert!(i <= (2.0 * n as f64).sqrt() + 1.0, "n={n}: I={i}");
        assert_eq!(
            graph_interference_with(&t, Engine::Indexed),
            graph_interference_with(&t, Engine::Naive),
            "n={n}: indexed engine diverged from the oracle"
        );
    }
}

/// Theorem 4.1 pinned through the indexed engine: the `Ω(n)` NNF gap on
/// the two-chain construction, with both sides of the ratio computed by
/// the spatial-index kernel.
#[test]
fn theorem_4_1_nnf_gap_pinned_indexed() {
    let mut prev_ratio = 0.0;
    for k in [6usize, 12, 24, 48] {
        let tc = two_chains(k);
        let udg = unit_disk_graph(&tc.nodes);
        let nnf = nearest_neighbor_forest(&tc.nodes, &udg);
        let witness = tc.witness_topology();
        let i_nnf = graph_interference_with(&nnf, Engine::Indexed);
        let i_wit = graph_interference_with(&witness, Engine::Indexed);
        assert!(i_nnf >= k - 1, "k={k}: I(NNF)={i_nnf}");
        assert!(i_wit <= 8, "k={k}: I(witness)={i_wit}");
        let ratio = i_nnf as f64 / i_wit as f64;
        assert!(ratio > prev_ratio, "k={k}: ratio must grow");
        prev_ratio = ratio;
    }
}

/// The robustness contrast of Figure 1: one arrival moves the
/// sender-centric measure to `Θ(n)` while the receiver-centric measure
/// moves by a constant.
#[test]
fn figure_1_robustness_contrast() {
    use rim::interference::robustness::arrival_impact;
    use rim::topology_control::emst::euclidean_mst;
    for n in [30usize, 60, 120] {
        let (cluster, with) = rim::workloads::fig1_instance(n, 0.1, 5);
        let outlier = with.pos(with.len() - 1);
        let impact = arrival_impact(&cluster, outlier, |ns| {
            let udg = unit_disk_graph(ns);
            euclidean_mst(ns, &udg)
        });
        // Sender measure explodes: the forced long link covers the whole
        // cluster.
        assert!(
            impact.sender_after >= n - 2,
            "n={n}: sender_after={}",
            impact.sender_after
        );
        // Receiver measure moves by a constant.
        assert!(
            impact.receiver_after <= impact.receiver_before + 3,
            "n={n}: receiver {} -> {}",
            impact.receiver_before,
            impact.receiver_after
        );
        assert!(impact.max_receiver_delta <= 3, "n={n}");
    }
}

/// The introduction's physical claim, on the simulator: on the same
/// traffic, the low-interference topology suffers fewer collisions than
/// the interference-heavy linear chain.
#[test]
fn lower_interference_means_fewer_collisions() {
    let chain = exponential_chain(48);
    let linear = chain.linear_topology();
    let apx = a_apx(&chain).topology;
    let i_lin = graph_interference(&linear);
    let i_apx = graph_interference(&apx);
    assert!(i_apx < i_lin);

    let cfg = SimConfig {
        slots: 20_000,
        mac: MacConfig::aloha(),
        traffic: TrafficConfig::Cbr {
            flows: 10,
            period: 25,
        },
        alpha: 2.0,
        seed: 17,
    };
    let m_lin = Simulator::new(linear, cfg).run();
    let m_apx = Simulator::new(apx, cfg).run();
    assert!(
        m_apx.collision_rate() < m_lin.collision_rate(),
        "collision rates: apx={} linear={}",
        m_apx.collision_rate(),
        m_lin.collision_rate()
    );
}
