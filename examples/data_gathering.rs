//! Data gathering — the sensor-network setting the interference model
//! originated in (reference [4] of the paper): all nodes report to a
//! sink over a directed tree; each node transmits only as far as its
//! parent.
//!
//! ```text
//! cargo run --example data_gathering
//! ```

use rim::interference::gathering::GatheringTree;
use rim::prelude::*;

fn main() {
    let nodes = rim::workloads::gaussian_clusters(3, 30, 2.0, 0.25, 7);
    let udg = unit_disk_graph(&nodes);
    // Sink: the node closest to the field centroid.
    let centroid = nodes
        .points()
        .iter()
        .fold(Point::ORIGIN, |acc, p| acc + *p)
        / nodes.len() as f64;
    let sink = (0..nodes.len())
        .min_by(|&a, &b| {
            nodes.pos(a)
                .dist_sq(&centroid)
                .total_cmp(&nodes.pos(b).dist_sq(&centroid))
        })
        .unwrap();

    println!(
        "field: {} nodes in 3 clusters, sink = node {sink}\n",
        nodes.len()
    );
    println!(
        "{:<12} {:>9} {:>12} {:>10} {:>10}",
        "tree", "gathered", "I(directed)", "I(undir.)", "max depth"
    );
    let trees: Vec<(&str, GatheringTree)> = vec![
        ("SPT", GatheringTree::shortest_path_tree(&nodes, &udg, sink)),
        ("MST-rooted", GatheringTree::mst_tree(&nodes, &udg, sink)),
    ];
    for (name, t) in trees {
        let max_depth = (0..nodes.len())
            .filter_map(|v| t.depth(v))
            .max()
            .unwrap_or(0);
        println!(
            "{:<12} {:>9} {:>12} {:>10} {:>10}",
            name,
            t.gathered(),
            t.interference(),
            graph_interference(&t.as_undirected()),
            max_depth
        );
    }
    println!(
        "\nDirected interference is never larger than the undirected\n\
         interference of the same tree: a node only needs to reach its\n\
         parent, not its farthest child."
    );
}
