//! Ground the interference measure in MAC-level behavior: simulate the
//! same traffic over differently-controlled topologies of one sensor
//! field and watch collisions/retransmissions/energy follow `I(G')`.
//!
//! ```text
//! cargo run --example sensor_field_sim
//! ```

use rim::prelude::*;

fn main() {
    let nodes = rim::workloads::uniform_square(60, 2.2, 2025);
    let udg = unit_disk_graph(&nodes);
    println!(
        "sensor field: {} nodes, Δ = {}\n",
        nodes.len(),
        udg.max_degree()
    );

    let cfg = SimConfig {
        slots: 30_000,
        mac: MacConfig::csma(),
        traffic: TrafficConfig::Cbr {
            flows: 12,
            period: 40,
        },
        alpha: 2.0,
        seed: 7,
    };

    println!(
        "{:<8} {:>6} {:>9} {:>9} {:>10} {:>10}",
        "topology", "I(G')", "delivery", "coll.rate", "tx/deliv", "energy/pkt"
    );
    for baseline in Baseline::ALL {
        let t = baseline.build(&nodes, &udg);
        if !t.preserves_connectivity_of(&udg) {
            // NNF may split the field; routing treats unreachable pairs
            // as no-route drops, so the comparison stays fair, but note it.
            println!("{:<8} (does not preserve connectivity)", baseline.name());
        }
        let i = graph_interference(&t);
        let m = Simulator::new(t, cfg).run();
        println!(
            "{:<8} {:>6} {:>9.3} {:>9.3} {:>10.2} {:>10.4}",
            baseline.name(),
            i,
            m.delivery_ratio(),
            m.collision_rate(),
            m.transmissions_per_delivery(),
            m.energy_per_delivery(),
        );
    }
}
