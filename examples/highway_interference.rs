//! The highway model end to end: reproduce the paper's Section 5 story
//! on the exponential node chain and on random 1-D instances.
//!
//! ```text
//! cargo run --example highway_interference
//! ```

use rim::highway::bounds::{exponential_chain_lower_bound, optimum_lower_bound};
use rim::highway::a_apx::ApxChoice;
use rim::prelude::*;

fn main() {
    println!("== exponential node chain (Figures 6-8, Theorems 5.1/5.2) ==");
    println!(
        "{:>5} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "n", "linear", "A_exp", "A_gen", "A_apx", "√n"
    );
    for n in [8usize, 16, 32, 64, 128, 256] {
        let chain = exponential_chain(n);
        let linear = graph_interference(&chain.linear_topology());
        let aexp = graph_interference(&a_exp(&chain).topology);
        let agen = graph_interference(&a_gen(&chain).topology);
        let aapx = graph_interference(&a_apx(&chain).topology);
        println!(
            "{:>5} {:>9} {:>8} {:>8} {:>8} {:>7.2}",
            n,
            linear,
            aexp,
            agen,
            aapx,
            exponential_chain_lower_bound(n)
        );
    }

    println!("\n== random highway instances: A_apx adapts (Theorem 5.6) ==");
    println!(
        "{:>22} {:>6} {:>6} {:>8} {:>8} {:>9}",
        "instance", "Δ", "γ", "choice", "I(apx)", "LB(√γ/2)"
    );
    let instances: Vec<(&str, HighwayInstance)> = vec![
        ("uniform n=100", rim::workloads::uniform_highway(100, 4.0, 7)),
        (
            "clustered 5×20",
            rim::workloads::clustered_highway(5, 20, 0.05, 1.0, 7),
        ),
        (
            "fragmented exponential",
            rim::workloads::fragmented_exponential(4, 16, 7),
        ),
        ("exponential n=64", exponential_chain(64)),
    ];
    for (name, h) in instances {
        let r = a_apx(&h);
        let choice = match r.single_choice() {
            Some(ApxChoice::Linear) => "linear",
            Some(ApxChoice::Gen) => "A_gen",
            None => "mixed",
        };
        println!(
            "{:>22} {:>6} {:>6} {:>8} {:>8} {:>9.2}",
            name,
            h.max_degree(),
            gamma(&h),
            choice,
            graph_interference(&r.topology),
            optimum_lower_bound(&h),
        );
    }
}
