//! Figure 1 live: one node joins the network and the *sender-centric*
//! interference measure explodes to `n`, while the receiver-centric
//! measure moves by a small constant.
//!
//! ```text
//! cargo run --example robustness
//! ```

use rim::interference::robustness::arrival_impact;
use rim::prelude::*;
use rim::topology_control::emst::euclidean_mst;

fn main() {
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "n", "recv:before", "recv:after", "send:before", "send:after", "maxΔ"
    );
    for n in [10usize, 20, 50, 100, 200] {
        let (cluster, with_outlier) = rim::workloads::fig1_instance(n, 0.1, 99);
        let outlier_pos = with_outlier.pos(with_outlier.len() - 1);
        // The topology-control algorithm under test: the Euclidean MST
        // (any NNF-containing construction behaves alike here).
        let impact = arrival_impact(&cluster, outlier_pos, |ns| {
            let udg = unit_disk_graph(ns);
            euclidean_mst(ns, &udg)
        });
        println!(
            "{:>5} {:>10} {:>10} {:>12} {:>12} {:>8}",
            n,
            impact.receiver_before,
            impact.receiver_after,
            impact.sender_before,
            impact.sender_after,
            impact.max_receiver_delta
        );
    }
    println!(
        "\nThe sender-centric column jumps to ≈ n after the arrival; the\n\
         receiver-centric measure stays a small constant — the robustness\n\
         argument of Section 1 (Figure 1)."
    );
}
