//! Quickstart: build a small network, run topology control, and compare
//! the receiver-centric interference of the baselines against the exact
//! optimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rim::prelude::*;

fn main() {
    // Eight nodes in a 1.4 × 1.4 field (deterministic seed).
    let nodes = rim::workloads::uniform_square(8, 1.4, 42);
    let udg = unit_disk_graph(&nodes);
    println!(
        "network: {} nodes, UDG has {} edges, Δ = {}",
        nodes.len(),
        udg.num_edges(),
        udg.max_degree()
    );

    println!("\n{:<8} {:>6} {:>7} {:>9} {:>8}", "topology", "edges", "I(G')", "I_sender", "energy");
    for baseline in Baseline::ALL {
        let t = baseline.build(&nodes, &udg);
        println!(
            "{:<8} {:>6} {:>7} {:>9} {:>8.3}",
            baseline.name(),
            t.num_edges(),
            graph_interference(&t),
            sender_graph_interference(&t),
            t.energy(2.0),
        );
    }

    // The exact minimum-interference topology (branch and bound; this
    // instance is small enough to solve provably optimally).
    let opt = min_interference_topology(&nodes, 1.0, SolverLimits::default());
    println!(
        "\nexact optimum: I = {} ({} search steps, optimal = {})",
        opt.interference, opt.steps, opt.optimal
    );

    // Per-node picture of the best baseline.
    let mst = Baseline::Emst.build(&nodes, &udg);
    let summary = InterferenceSummary::of(&mst);
    println!(
        "MST per-node interference: {:?} (mean {:.2})",
        summary.per_node, summary.mean
    );
}
