//! Topology control the way it actually runs: as localized
//! message-passing protocols. Each node only ever talks to its radio
//! neighbors; the runtime enforces that and counts the cost.
//!
//! ```text
//! cargo run --example distributed_protocols
//! ```

use rim::prelude::*;
use rim::proto::{lmst_proto::LmstNode, nnf_proto::NnfNode, run_protocol, xtc_proto::XtcNode};

fn main() {
    let nodes = rim::workloads::uniform_square(100, 2.2, 11);
    let udg = unit_disk_graph(&nodes);
    println!(
        "field: {} nodes, UDG: {} edges, Δ = {}\n",
        nodes.len(),
        udg.num_edges(),
        udg.max_degree()
    );
    println!(
        "{:<6} {:>7} {:>9} {:>13} {:>7} {:>7}",
        "proto", "rounds", "messages", "max msgs/node", "edges", "I(G')"
    );

    let (t, s) = run_protocol::<XtcNode>(&nodes, &udg);
    println!(
        "{:<6} {:>7} {:>9} {:>13} {:>7} {:>7}",
        "XTC", s.rounds, s.messages, s.max_node_messages, t.num_edges(), graph_interference(&t)
    );
    let (t, s) = run_protocol::<LmstNode>(&nodes, &udg);
    println!(
        "{:<6} {:>7} {:>9} {:>13} {:>7} {:>7}",
        "LMST", s.rounds, s.messages, s.max_node_messages, t.num_edges(), graph_interference(&t)
    );
    let (t, s) = run_protocol::<NnfNode>(&nodes, &udg);
    println!(
        "{:<6} {:>7} {:>9} {:>13} {:>7} {:>7}",
        "NNF", s.rounds, s.messages, s.max_node_messages, t.num_edges(), graph_interference(&t)
    );

    println!(
        "\nAll three finish in two synchronous rounds with one message per\n\
         directed radio link — and produce bit-identical topologies to the\n\
         centralized implementations (asserted in the crate's tests)."
    );
}
