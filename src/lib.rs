//! `rim` — **R**obust **I**nterference **M**odel for wireless ad-hoc
//! networks.
//!
//! A faithful, tested reproduction of *"A Robust Interference Model for
//! Wireless Ad-Hoc Networks"* (Pascal von Rickenbach, Stefan Schmid,
//! Roger Wattenhofer, Aaron Zollinger — IPDPS/IPPS 2005), together with
//! every substrate it needs: geometry, graphs, the unit-disk-graph
//! network model, classic topology-control baselines, the highway-model
//! algorithms, an exact optimum solver, and a packet-level MAC simulator.
//!
//! # Quick start
//!
//! ```
//! use rim::prelude::*;
//!
//! // Five nodes on a line within mutual range.
//! let nodes = NodeSet::on_line(&[0.0, 0.1, 0.3, 0.6, 1.0]);
//! let udg = unit_disk_graph(&nodes);
//!
//! // A connectivity-preserving topology: the Euclidean MST.
//! let mst = rim::topology_control::emst::euclidean_mst(&nodes, &udg);
//! assert!(mst.preserves_connectivity_of(&udg));
//!
//! // Receiver-centric interference (Definitions 3.1 / 3.2).
//! let i = graph_interference(&mst);
//! assert!(i >= 1 && i <= udg.max_degree());
//! ```
//!
//! # Crate map
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`geom`] | points, disks, spatial indices |
//! | [`graph`] | adjacency lists, MST, shortest paths, connectivity |
//! | [`udg`] | node sets, unit disk graphs, radius-induced topologies |
//! | [`interference`] | the receiver-centric model, the sender-centric comparison model, robustness, exact optimum |
//! | [`topology_control`] | NNF, MST, Gabriel, RNG, Yao, XTC, LIFE/LISE |
//! | [`highway`] | exponential chains, `A_exp`, `A_gen`, `A_apx`, `γ`, bounds |
//! | [`proto`] | localized message-passing protocols (XTC/LMST/NNF) |
//! | [`viz`] | SVG rendering of topologies and arc diagrams |
//! | [`sim`] | slot-synchronous MAC simulator on the disk model |
//! | [`workloads`] | deterministic instance generators |
//! | [`obs`] | spans, counters, histograms (no-op unless a recorder is installed) |

#![forbid(unsafe_code)]

pub use rim_core as interference;
pub use rim_geom as geom;
pub use rim_graph as graph;
pub use rim_highway as highway;
pub use rim_obs as obs;
pub use rim_proto as proto;
pub use rim_viz as viz;
pub use rim_sim as sim;
pub use rim_topology_control as topology_control;
pub use rim_udg as udg;
pub use rim_workloads as workloads;

/// The most common imports, bundled.
pub mod prelude {
    pub use rim_core::analysis::InterferenceSummary;
    pub use rim_core::dynamic::DynamicInterference;
    pub use rim_core::optimal::{min_interference_topology, SolverLimits};
    pub use rim_core::receiver::{
        graph_interference, graph_interference_with, interference_at, interference_vector,
        interference_vector_naive, interference_vector_with, Engine,
    };
    pub use rim_core::sender::sender_graph_interference;
    pub use rim_geom::Point;
    pub use rim_highway::{a_apx, a_exp, a_gen, exponential_chain, gamma, HighwayInstance};
    pub use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
    pub use rim_topology_control::Baseline;
    pub use rim_udg::udg::{unit_disk_graph, unit_disk_graph_with_range};
    pub use rim_udg::{NodeSet, Topology};
}
