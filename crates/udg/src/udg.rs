//! Unit Disk Graph construction.

use crate::node_set::NodeSet;
use rim_graph::AdjacencyList;
use rim_geom::SpatialIndex;

/// Builds the Unit Disk Graph of `nodes`: an edge `{u, v}` (weighted by
/// Euclidean distance) for every pair with `|uv| <= max_range`.
///
/// The paper normalizes the maximum transmission range to 1; pass
/// `max_range = 1.0` for the standard UDG. Construction scatters one
/// closed-disk query per node over a [`SpatialIndex`] (grid, or kd-tree
/// when the spread defeats a uniform cell — the same adaptive structure
/// the interference engine uses) and runs in `O(n + m)` expected time
/// for bounded densities.
pub fn unit_disk_graph_with_range(nodes: &NodeSet, max_range: f64) -> AdjacencyList {
    assert!(max_range > 0.0 && max_range.is_finite());
    let mut g = AdjacencyList::new(nodes.len());
    if nodes.len() < 2 {
        return g;
    }
    let index = SpatialIndex::build(nodes.points(), max_range);
    for u in 0..nodes.len() {
        let pu = nodes.pos(u);
        index.for_each_in_disk(pu, max_range, |v| {
            if v > u {
                g.add_edge(u, v, nodes.dist(u, v));
            }
        });
    }
    g
}

/// Builds the standard Unit Disk Graph (`max_range = 1`).
pub fn unit_disk_graph(nodes: &NodeSet) -> AdjacencyList {
    unit_disk_graph_with_range(nodes, 1.0)
}

/// Maximum node degree `Δ` of the UDG — the quantity the paper's bounds
/// are expressed in (`O(√Δ)` interference, `O(Δ^{1/4})` approximation).
pub fn max_degree(udg: &AdjacencyList) -> usize {
    udg.max_degree()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_geom::Point;
    use rim_graph::traversal::is_connected;

    #[test]
    fn edges_iff_within_unit_distance() {
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),  // exactly at range: edge
            Point::new(2.01, 0.0), // 1.01 from node 1: no edge
        ]);
        let g = unit_disk_graph(&ns);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut state = 7u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..150).map(|_| Point::new(rnd() * 3.0, rnd() * 3.0)).collect();
        let ns = NodeSet::new(pts);
        let g = unit_disk_graph(&ns);
        for u in 0..ns.len() {
            for v in (u + 1)..ns.len() {
                assert_eq!(
                    g.has_edge(u, v),
                    ns.dist(u, v) <= 1.0,
                    "u={u} v={v} d={}",
                    ns.dist(u, v)
                );
            }
        }
    }

    #[test]
    fn dense_cluster_is_complete() {
        let ns = NodeSet::on_line(&[0.0, 0.1, 0.2, 0.3]);
        let g = unit_disk_graph(&ns);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(max_degree(&g), 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn custom_range_scales_connectivity() {
        let ns = NodeSet::on_line(&[0.0, 2.0, 4.0]);
        assert_eq!(unit_disk_graph(&ns).num_edges(), 0);
        let g = unit_disk_graph_with_range(&ns, 2.0);
        assert_eq!(g.num_edges(), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(unit_disk_graph(&NodeSet::new(vec![])).num_vertices(), 0);
        let g = unit_disk_graph(&NodeSet::on_line(&[0.5]));
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
