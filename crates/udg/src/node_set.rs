//! Immutable sets of node positions.

use rim_geom::{Aabb, Point};

/// An immutable set of node positions, indexed `0..n`.
///
/// All algorithms in the workspace identify nodes by their index into a
/// `NodeSet`; positions never change after construction (mobility is
/// modelled by constructing a new `NodeSet`, matching the paper's static
/// analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSet {
    points: Vec<Point>,
}

impl NodeSet {
    /// Creates a node set from explicit positions.
    ///
    /// Panics if any coordinate is non-finite.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(
            points.iter().all(Point::is_finite),
            "non-finite node position"
        );
        NodeSet { points }
    }

    /// Creates a one-dimensional (highway) node set from x-coordinates.
    pub fn on_line(xs: &[f64]) -> Self {
        NodeSet::new(xs.iter().map(|&x| Point::on_line(x)).collect())
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if there are no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of node `i`.
    #[inline]
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the set
    pub fn pos(&self, i: usize) -> Point {
        self.points[i]
    }

    /// All positions.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Euclidean distance between nodes `i` and `j`.
    #[inline]
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the set
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.points[i].dist(&self.points[j])
    }

    /// Squared Euclidean distance between nodes `i` and `j`.
    #[inline]
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the set
    pub fn dist_sq(&self, i: usize, j: usize) -> f64 {
        self.points[i].dist_sq(&self.points[j])
    }

    /// Returns `true` if every node lies on the x-axis (highway model).
    pub fn is_highway(&self) -> bool {
        // rim-lint: allow(float-eq) — exact on-axis membership defines the highway model
        self.points.iter().all(|p| p.y == 0.0)
    }

    /// Bounding box of the node positions.
    pub fn bbox(&self) -> Aabb {
        Aabb::of_points(&self.points)
    }

    /// Indices sorted by x-coordinate (then y, then index) — the scan
    /// order used by the highway algorithms.
    pub fn order_by_x(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            self.points[a]
                .lex_cmp(&self.points[b])
                .then(a.cmp(&b))
        });
        order
    }

    /// Returns a new node set with `p` appended (used by the robustness
    /// experiments, which add a single node to an instance).
    #[must_use]
    pub fn with_node(&self, p: Point) -> NodeSet {
        let mut points = self.points.clone();
        points.push(p);
        NodeSet::new(points)
    }

    /// Returns a new node set with node `i` removed; the indices of later
    /// nodes shift down by one.
    #[must_use]
    pub fn without_node(&self, i: usize) -> NodeSet {
        let mut points = self.points.clone();
        points.remove(i);
        NodeSet { points }
    }
}

impl From<Vec<Point>> for NodeSet {
    fn from(points: Vec<Point>) -> Self {
        NodeSet::new(points)
    }
}

impl std::ops::Index<usize> for NodeSet {
    type Output = Point;
    #[inline]
    // rim-lint: allow(panic-freedom) — Index impls forward the slice's own contract
    fn index(&self, i: usize) -> &Point {
        &self.points[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let ns = NodeSet::new(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]);
        assert_eq!(ns.len(), 2);
        assert_eq!(ns.dist(0, 1), 5.0);
        assert_eq!(ns.dist_sq(1, 0), 25.0);
        assert_eq!(ns[1], Point::new(3.0, 4.0));
    }

    #[test]
    fn highway_detection() {
        assert!(NodeSet::on_line(&[0.0, 0.5, 0.25]).is_highway());
        assert!(!NodeSet::new(vec![Point::new(0.0, 0.1)]).is_highway());
        assert!(NodeSet::new(vec![]).is_highway());
    }

    #[test]
    fn order_by_x_is_deterministic() {
        let ns = NodeSet::on_line(&[0.5, 0.1, 0.9, 0.1]);
        assert_eq!(ns.order_by_x(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn add_and_remove_nodes() {
        let ns = NodeSet::on_line(&[0.0, 1.0]);
        let grown = ns.with_node(Point::on_line(2.0));
        assert_eq!(grown.len(), 3);
        assert_eq!(grown.pos(2), Point::on_line(2.0));
        let shrunk = grown.without_node(1);
        assert_eq!(shrunk.len(), 2);
        assert_eq!(shrunk.pos(1), Point::on_line(2.0));
        // Original unchanged.
        assert_eq!(ns.len(), 2);
    }

    #[test]
    #[should_panic]
    fn non_finite_positions_rejected() {
        NodeSet::new(vec![Point::new(f64::NAN, 0.0)]);
    }
}
