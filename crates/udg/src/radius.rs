//! Radius assignments and the symmetric graphs they induce.
//!
//! A topology determines radii (`r_u` = farthest neighbor); conversely a
//! radius assignment `r : V → ℝ≥0` induces the symmetric graph with edge
//! `{u, v}` iff `|uv| <= min(r_u, r_v)` — both endpoints must reach each
//! other, the symmetric-link requirement of Section 3. The exact optimum
//! solver searches over radius assignments, so this is its state space.

use crate::node_set::NodeSet;
use crate::topology::Topology;
use rim_graph::AdjacencyList;

/// Builds the symmetric graph induced by a radius assignment:
/// edge `{u, v}` iff `|uv| <= min(r_u, r_v)`.
pub fn induced_graph(nodes: &NodeSet, radii: &[f64]) -> AdjacencyList {
    assert_eq!(nodes.len(), radii.len());
    let mut g = AdjacencyList::new(nodes.len());
    for u in 0..nodes.len() {
        for v in (u + 1)..nodes.len() {
            let d = nodes.dist(u, v);
            if d <= radii[u] && d <= radii[v] {
                g.add_edge(u, v, d);
            }
        }
    }
    g
}

/// Builds the [`Topology`] induced by a radius assignment.
///
/// Note that the topology's *recomputed* radii can be smaller than the
/// assignment (a node assigned a huge radius but whose neighbors all
/// refuse long links does not actually need that radius); the recomputed
/// radii are the ones that matter for interference.
pub fn induced_topology(nodes: &NodeSet, radii: &[f64]) -> Topology {
    let g = induced_graph(nodes, radii);
    Topology::from_graph(nodes.clone(), g)
}

/// The candidate radii of node `u`: `0` plus its distances to every other
/// node, sorted ascending and deduplicated.
///
/// Some radius assignment over these candidates realizes every
/// minimum-interference topology: shrinking any `r_u` down to the largest
/// pairwise distance it still covers changes neither the induced edge set
/// nor any coverage predicate.
pub fn candidate_radii(nodes: &NodeSet, u: usize) -> Vec<f64> {
    let mut out: Vec<f64> = std::iter::once(0.0)
        .chain((0..nodes.len()).filter(|&v| v != u).map(|v| nodes.dist(u, v)))
        .collect();
    out.sort_unstable_by(f64::total_cmp);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_rule_requires_both_endpoints() {
        let ns = NodeSet::on_line(&[0.0, 1.0, 3.0]);
        // Node 0 reaches node 1 but node 1 gets radius too small: no edge.
        let g = induced_graph(&ns, &[1.0, 0.5, 0.0]);
        assert_eq!(g.num_edges(), 0);
        // Raise node 1's radius: edge appears.
        let g = induced_graph(&ns, &[1.0, 1.0, 0.0]);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn boundary_distance_included() {
        let ns = NodeSet::on_line(&[0.0, 0.75]);
        let g = induced_graph(&ns, &[0.75, 0.75]);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn induced_topology_shrinks_wasted_radii() {
        let ns = NodeSet::on_line(&[0.0, 0.25, 1.0]);
        // Node 0 is assigned radius 1.0 (reaches node 2), but node 2 has
        // radius 0, so node 0's only realized link is to node 1.
        let t = induced_topology(&ns, &[1.0, 0.25, 0.0]);
        assert_eq!(t.num_edges(), 1);
        assert!((t.radius(0) - 0.25).abs() < 1e-15);
        assert_eq!(t.radius(2), 0.0);
    }

    #[test]
    fn candidate_radii_are_sorted_distances() {
        let ns = NodeSet::on_line(&[0.0, 0.25, 1.0, 0.25]);
        let c = candidate_radii(&ns, 0);
        assert_eq!(c, vec![0.0, 0.25, 1.0]); // deduplicated
        let c2 = candidate_radii(&ns, 2);
        assert_eq!(c2, vec![0.0, 0.75, 1.0]);
    }

    #[test]
    fn full_radii_give_complete_graph_within_range() {
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.9]);
        let g = induced_graph(&ns, &[1.0, 1.0, 1.0]);
        assert_eq!(g.num_edges(), 3);
    }
}
