//! Resulting topologies: symmetric edge sets plus the radii they induce.

use crate::node_set::NodeSet;
use rim_graph::traversal::preserves_connectivity;
use rim_graph::{AdjacencyList, Edge};

/// A *resulting topology* in the sense of the paper: a set of symmetric
/// (undirected) communication links over a [`NodeSet`], together with the
/// transmission radii those links force upon the nodes.
///
/// The radius of node `u` is `r_u = max_{v ∈ N_u} |uv|` — a node must
/// reach its farthest neighbor — and `r_u = 0` for isolated nodes. All
/// interference analysis in `rim-core` is a function of this type.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: NodeSet,
    graph: AdjacencyList,
    radii: Vec<f64>,
}

impl Topology {
    /// Builds a topology from node-index pairs; edge weights are the
    /// Euclidean distances between the endpoints.
    ///
    /// Panics on duplicate pairs or out-of-range indices.
    ///
    /// ```
    /// use rim_udg::{NodeSet, Topology};
    ///
    /// let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.25, 0.75]), &[(0, 1), (1, 2)]);
    /// // The middle node must reach its farthest neighbor:
    /// assert_eq!(t.radius(1), 0.5);
    /// assert!(t.is_forest());
    /// ```
    pub fn from_pairs(nodes: NodeSet, pairs: &[(usize, usize)]) -> Self {
        let mut graph = AdjacencyList::new(nodes.len());
        for &(u, v) in pairs {
            assert!(
                graph.add_edge(u, v, nodes.dist(u, v)),
                "duplicate edge ({u}, {v})"
            );
        }
        Self::from_graph(nodes, graph)
    }

    /// Builds a topology from an existing adjacency structure whose edge
    /// weights must equal the Euclidean distances.
    pub fn from_graph(nodes: NodeSet, graph: AdjacencyList) -> Self {
        assert_eq!(nodes.len(), graph.num_vertices());
        debug_assert!(graph.edges().iter().all(|e| {
            // rim-lint: allow(float-eq) — exact invariant: weights are dist() outputs, bit-identical
            e.weight == nodes.dist(e.u, e.v)
        }), "edge weight differs from Euclidean distance");
        let radii = (0..nodes.len())
            .map(|u| graph.max_incident_weight(u).unwrap_or(0.0))
            .collect();
        Topology { nodes, graph, radii }
    }

    /// The empty topology (no links; all radii zero).
    pub fn empty(nodes: NodeSet) -> Self {
        let n = nodes.len();
        Topology {
            nodes,
            graph: AdjacencyList::new(n),
            radii: vec![0.0; n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// The node positions.
    #[inline]
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// The link structure.
    #[inline]
    pub fn graph(&self) -> &AdjacencyList {
        &self.graph
    }

    /// Transmission radius of node `u` (distance to its farthest
    /// neighbor; 0 if isolated).
    #[inline]
    // rim-lint: allow(panic-freedom) — node ids are caller-validated; radii cover every node
    pub fn radius(&self, u: usize) -> f64 {
        self.radii[u]
    }

    /// All transmission radii.
    #[inline]
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// All links as normalized, distance-weighted edges.
    pub fn edges(&self) -> Vec<Edge> {
        self.graph.edges()
    }

    /// Returns `true` if every link is no longer than `max_range` — i.e.
    /// the topology is a subgraph of the UDG with that range.
    pub fn respects_range(&self, max_range: f64) -> bool {
        self.radii.iter().all(|&r| r <= max_range)
    }

    /// Returns `true` if this topology connects exactly the pairs the
    /// given reference graph (typically the UDG) connects — the paper's
    /// connectivity-preservation requirement.
    pub fn preserves_connectivity_of(&self, reference: &AdjacencyList) -> bool {
        preserves_connectivity(reference, &self.graph)
    }

    /// Returns `true` if the topology is a forest. The paper restricts
    /// attention to forests, as extra edges can only increase interference.
    pub fn is_forest(&self) -> bool {
        rim_graph::tree::is_forest(&self.graph)
    }

    /// Total transmission energy `Σ_u r_u^alpha` for a path-loss exponent
    /// `alpha` (commonly 2..4) — the classic energy proxy that motivates
    /// topology control.
    pub fn energy(&self, alpha: f64) -> f64 {
        self.radii.iter().map(|&r| r.powf(alpha)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udg::unit_disk_graph;
    use rim_geom::Point;

    fn line5() -> NodeSet {
        NodeSet::on_line(&[0.0, 0.1, 0.3, 0.6, 1.0])
    }

    #[test]
    fn radii_are_farthest_neighbor_distances() {
        let t = Topology::from_pairs(line5(), &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r: Vec<f64> = t.radii().to_vec();
        // Node 1 is linked to 0 (0.1) and 2 (0.2): radius 0.2.
        assert!((r[0] - 0.1).abs() < 1e-15);
        assert!((r[1] - 0.2).abs() < 1e-15);
        assert!((r[2] - 0.3).abs() < 1e-15);
        assert!((r[3] - 0.4).abs() < 1e-15);
        assert!((r[4] - 0.4).abs() < 1e-15);
    }

    #[test]
    fn isolated_nodes_have_zero_radius() {
        let t = Topology::from_pairs(line5(), &[(0, 1)]);
        assert_eq!(t.radius(3), 0.0);
        assert_eq!(t.radius(4), 0.0);
        assert!(t.radius(0) > 0.0);
    }

    #[test]
    fn empty_topology() {
        let t = Topology::empty(line5());
        assert_eq!(t.num_edges(), 0);
        // rim-lint: allow(float-eq) — radii are exactly 0.0 by construction
        assert!(t.radii().iter().all(|&r| r == 0.0));
        assert!(t.is_forest());
    }

    #[test]
    fn connectivity_preservation_against_udg() {
        let ns = line5();
        let udg = unit_disk_graph(&ns); // complete: span is 1.0
        let chain = Topology::from_pairs(ns.clone(), &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(chain.preserves_connectivity_of(&udg));
        let broken = Topology::from_pairs(ns, &[(0, 1), (1, 2)]);
        assert!(!broken.preserves_connectivity_of(&udg));
    }

    #[test]
    fn forest_detection_and_energy() {
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        let tree = Topology::from_pairs(ns.clone(), &[(0, 1), (0, 2)]);
        assert!(tree.is_forest());
        // Energy with alpha=2: r0=1, r1=1, r2=1.
        assert!((tree.energy(2.0) - 3.0).abs() < 1e-12);

        let cycle = Topology::from_pairs(ns, &[(0, 1), (0, 2), (1, 2)]);
        assert!(!cycle.is_forest());
    }

    #[test]
    fn respects_range() {
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 2.0]), &[(0, 1)]);
        assert!(t.respects_range(2.0));
        assert!(!t.respects_range(1.0));
    }

    #[test]
    #[should_panic]
    fn duplicate_pairs_rejected() {
        Topology::from_pairs(line5(), &[(0, 1), (1, 0)]);
    }
}
