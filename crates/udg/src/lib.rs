//! The network model of the paper: Unit Disk Graphs and symmetric
//! transmission-radius topologies.
//!
//! Section 3 of von Rickenbach et al. (IPDPS 2005) models the wireless
//! network as a Unit Disk Graph `G = (V, E)` — nodes are points in the
//! plane, with an edge `{u, v}` iff `|uv| <= 1` — and a *resulting
//! topology* as a connectivity-preserving subgraph `G' ⊆ G` consisting of
//! symmetric edges. Each node's transmission radius is then
//! `r_u = max_{v ∈ N_u} |uv|` (distance to its farthest neighbor in `G'`).
//!
//! This crate provides:
//!
//! * [`NodeSet`] — an immutable set of node positions with cached pairwise
//!   helpers,
//! * [`unit_disk_graph`] — UDG construction (grid-accelerated),
//! * [`Topology`] — an edge set plus the radii it induces, with the
//!   validity predicates used throughout the workspace,
//! * [`radius`] — radius assignments and the symmetric graphs they induce
//!   (the search space of the exact optimum solver).

#![forbid(unsafe_code)]

pub mod io;
pub mod node_set;
pub mod radius;
pub mod topology;
pub mod udg;

pub use node_set::NodeSet;
pub use topology::Topology;
pub use udg::{max_degree, unit_disk_graph};
