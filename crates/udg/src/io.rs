//! Plain-text serialization of node sets and topologies.
//!
//! The formats are deliberately trivial so instances can be produced and
//! inspected with standard tools:
//!
//! * **nodes file** — one `x y` pair per line (`y` may be omitted for
//!   highway instances); `#` starts a comment;
//! * **topology file** — one `u v` node-index pair per line, `#`
//!   comments allowed. Edge weights are recomputed from the node file,
//!   so a topology file is only meaningful next to its node file.

use crate::node_set::NodeSet;
use crate::topology::Topology;
use rim_geom::Point;
use std::fmt;

/// Parse error for the plain-text formats.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn significant_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(i, raw)| {
        let line = raw.split('#').next().unwrap_or("").trim();
        (!line.is_empty()).then_some((i + 1, line))
    })
}

/// Parses a nodes file: `x [y]` per line.
pub fn parse_nodes(text: &str) -> Result<NodeSet, ParseError> {
    let mut pts = Vec::new();
    for (line, content) in significant_lines(text) {
        let mut it = content.split_whitespace();
        let x: f64 = it
            .next()
            // rim-lint: allow(no-unwrap-in-lib) — significant_lines yields non-blank lines
            .unwrap()
            .parse()
            .map_err(|e| ParseError {
                line,
                message: format!("bad x coordinate: {e}"),
            })?;
        let y: f64 = match it.next() {
            Some(tok) => tok.parse().map_err(|e| ParseError {
                line,
                message: format!("bad y coordinate: {e}"),
            })?,
            None => 0.0,
        };
        if it.next().is_some() {
            return Err(ParseError {
                line,
                message: "expected at most two coordinates".into(),
            });
        }
        if !x.is_finite() || !y.is_finite() {
            return Err(ParseError {
                line,
                message: "coordinates must be finite".into(),
            });
        }
        pts.push(Point::new(x, y));
    }
    Ok(NodeSet::new(pts))
}

/// Renders a nodes file.
pub fn format_nodes(nodes: &NodeSet) -> String {
    let mut out = String::with_capacity(nodes.len() * 24);
    out.push_str("# rim nodes file: x y per line\n");
    for p in nodes.points() {
        out.push_str(&format!("{} {}\n", p.x, p.y));
    }
    out
}

/// Parses a topology file (`u v` per line) against a node set.
pub fn parse_topology(text: &str, nodes: &NodeSet) -> Result<Topology, ParseError> {
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut pair_lines: Vec<usize> = Vec::new();
    for (line, content) in significant_lines(text) {
        let mut it = content.split_whitespace();
        let parse_idx = |tok: Option<&str>, line: usize| -> Result<usize, ParseError> {
            let tok = tok.ok_or(ParseError {
                line,
                message: "expected two node indices".into(),
            })?;
            let idx: usize = tok.parse().map_err(|e| ParseError {
                line,
                message: format!("bad node index: {e}"),
            })?;
            if idx >= nodes.len() {
                return Err(ParseError {
                    line,
                    message: format!("node index {idx} out of range (n = {})", nodes.len()),
                });
            }
            Ok(idx)
        };
        let u = parse_idx(it.next(), line)?;
        let v = parse_idx(it.next(), line)?;
        if it.next().is_some() {
            return Err(ParseError {
                line,
                message: "expected exactly two node indices".into(),
            });
        }
        if u == v {
            return Err(ParseError {
                line,
                message: format!("self-loop at node {u}"),
            });
        }
        pairs.push((u, v));
        pair_lines.push(line);
    }
    // Reject duplicates with a proper error instead of the panic that
    // Topology::from_pairs would raise.
    let mut seen = std::collections::HashSet::new();
    for (&(u, v), &line) in pairs.iter().zip(&pair_lines) {
        if !seen.insert((u.min(v), u.max(v))) {
            return Err(ParseError {
                line,
                message: format!("duplicate edge ({u}, {v})"),
            });
        }
    }
    Ok(Topology::from_pairs(nodes.clone(), &pairs))
}

/// Renders a topology file.
pub fn format_topology(t: &Topology) -> String {
    let mut out = String::with_capacity(t.num_edges() * 12);
    out.push_str("# rim topology file: u v per line\n");
    for e in t.edges() {
        out.push_str(&format!("{} {}\n", e.u, e.v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_roundtrip() {
        let ns = NodeSet::new(vec![Point::new(0.25, -1.5), Point::new(3.0, 0.0)]);
        let parsed = parse_nodes(&format_nodes(&ns)).unwrap();
        assert_eq!(parsed, ns);
    }

    #[test]
    fn highway_shorthand_and_comments() {
        let ns = parse_nodes("# heading\n0.5\n1.5  # trailing comment\n\n2.5 0\n").unwrap();
        assert_eq!(ns.len(), 3);
        assert!(ns.is_highway());
        assert_eq!(ns.pos(2), Point::new(2.5, 0.0));
    }

    #[test]
    fn topology_roundtrip() {
        let ns = NodeSet::on_line(&[0.0, 0.5, 1.0]);
        let t = Topology::from_pairs(ns.clone(), &[(0, 1), (1, 2)]);
        let parsed = parse_topology(&format_topology(&t), &ns).unwrap();
        assert_eq!(parsed.num_edges(), 2);
        assert!(parsed.graph().has_edge(0, 1));
        assert!(parsed.graph().has_edge(1, 2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse_nodes("1.0\nxyz\n").unwrap_err().line, 2);
        assert_eq!(parse_nodes("1 2 3\n").unwrap_err().line, 1);
        assert_eq!(parse_nodes("inf\n").unwrap_err().line, 1);

        let ns = NodeSet::on_line(&[0.0, 0.5]);
        assert_eq!(parse_topology("0 5\n", &ns).unwrap_err().line, 1);
        assert_eq!(parse_topology("0\n", &ns).unwrap_err().line, 1);
        assert_eq!(parse_topology("0 0\n", &ns).unwrap_err().line, 1);
        assert!(parse_topology("0 1\n1 0\n", &ns)
            .unwrap_err()
            .message
            .contains("duplicate"));
    }

    #[test]
    fn empty_files_are_valid() {
        assert_eq!(parse_nodes("# nothing\n").unwrap().len(), 0);
        let ns = NodeSet::on_line(&[0.0, 1.0]);
        assert_eq!(parse_topology("", &ns).unwrap().num_edges(), 0);
    }
}
