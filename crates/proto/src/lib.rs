//! `rim-proto` — localized, message-passing topology control.
//!
//! The algorithms the paper discusses are *distributed*: every node acts
//! on information from its immediate radio neighborhood. This crate makes
//! that concrete with a synchronous-rounds runtime ([`runtime`]) that
//! **enforces locality** — a node may only message its UDG neighbors —
//! and counts rounds and messages, plus protocol implementations:
//!
//! * [`xtc_proto`] — the XTC protocol of reference \[19\] (one exchange
//!   of neighbor rankings, then a purely local decision);
//! * [`lmst_proto`] — the LMST protocol of reference \[9\] (positions,
//!   local MST, selection exchange);
//! * [`nnf_proto`] — nearest-neighbor linking as a protocol.
//!
//! Every protocol is tested to produce **exactly** the topology of its
//! centralized counterpart in `rim-topology-control`, with the message
//! and round complexity the papers advertise (2 rounds, `O(Δ)` messages
//! per node).

#![forbid(unsafe_code)]

pub mod lmst_proto;
pub mod nnf_proto;
pub mod runtime;
pub mod xtc_proto;

pub use runtime::{run_protocol, NodeCtx, NodeProtocol, RunStats};
