//! A synchronous-rounds message-passing runtime with enforced locality.
//!
//! Execution model (the standard LOCAL/CONGEST-style abstraction):
//!
//! 1. every node runs the same [`NodeProtocol`] state machine;
//! 2. in each round, every node may send one message to any subset of
//!    its **UDG neighbors** (messaging a non-neighbor panics — that
//!    would be cheating on locality);
//! 3. messages sent in round `r` are delivered at the start of round
//!    `r + 1`;
//! 4. the run ends when every node has finished; each node then reports
//!    the set of neighbors it keeps, and an undirected edge materializes
//!    according to the protocol's [`Symmetrization`].

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// What a node sees of the world: its id, position, and UDG neighbors
/// with their positions (radios hear beacons; positions model the
/// distance estimates every one of these protocols assumes).
pub struct NodeCtx<'a> {
    /// This node's id.
    pub id: usize,
    /// All node positions (access *only* your own and your neighbors' —
    /// the runtime hands out the full set for convenience, the protocols
    /// in this crate touch nothing else).
    pub nodes: &'a NodeSet,
    /// Sorted UDG neighbor ids.
    pub neighbors: &'a [usize],
}

/// How per-node keep-decisions combine into undirected edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symmetrization {
    /// Edge iff both endpoints keep it.
    Intersection,
    /// Edge iff either endpoint keeps it.
    Union,
}

/// A node's state machine.
pub trait NodeProtocol: Sized {
    /// Message type exchanged between neighbors.
    type Msg: Clone;

    /// Creates the node's initial state.
    fn init(ctx: &NodeCtx<'_>) -> Self;

    /// One synchronous round: receive last round's messages (sender id +
    /// payload), optionally send messages (`(neighbor, payload)`).
    /// Return `true` when this node is done.
    fn round(
        &mut self,
        ctx: &NodeCtx<'_>,
        round: usize,
        inbox: &[(usize, Self::Msg)],
        outbox: &mut Vec<(usize, Self::Msg)>,
    ) -> bool;

    /// The neighbors this node keeps, once done.
    fn kept(&self, ctx: &NodeCtx<'_>) -> Vec<usize>;

    /// How the per-node decisions combine.
    fn symmetrization() -> Symmetrization;
}

/// Execution statistics of a protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Synchronous rounds until every node finished.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: usize,
    /// Maximum messages sent by a single node over the whole run.
    pub max_node_messages: usize,
}

/// Runs a protocol over the UDG of `nodes` and materializes the
/// resulting topology.
///
/// Panics if a node messages a non-neighbor (locality violation) or if
/// the protocol fails to terminate within `4 + n` rounds (all protocols
/// here are O(1)-round; the bound catches runaways in tests).
pub fn run_protocol<P: NodeProtocol>(nodes: &NodeSet, udg: &AdjacencyList) -> (Topology, RunStats) {
    let n = nodes.len();
    let neighbor_lists: Vec<Vec<usize>> = (0..n).map(|u| udg.neighbors(u).collect()).collect();
    let ctx = |u: usize| NodeCtx {
        id: u,
        nodes,
        neighbors: &neighbor_lists[u],
    };

    let mut states: Vec<P> = (0..n).map(|u| P::init(&ctx(u))).collect();
    let mut done = vec![false; n];
    let mut inboxes: Vec<Vec<(usize, P::Msg)>> = vec![Vec::new(); n];
    let mut sent_per_node = vec![0usize; n];
    let mut messages = 0usize;
    let mut rounds = 0usize;
    let max_rounds = 4 + n;

    let mut outbox: Vec<(usize, P::Msg)> = Vec::new();
    while !done.iter().all(|&d| d) {
        assert!(rounds < max_rounds, "protocol did not terminate");
        let mut next_inboxes: Vec<Vec<(usize, P::Msg)>> = vec![Vec::new(); n];
        for u in 0..n {
            if done[u] {
                continue;
            }
            outbox.clear();
            let inbox = std::mem::take(&mut inboxes[u]);
            done[u] = states[u].round(&ctx(u), rounds, &inbox, &mut outbox);
            for (v, msg) in outbox.drain(..) {
                assert!(
                    neighbor_lists[u].contains(&v),
                    "locality violation: node {u} messaged non-neighbor {v}"
                );
                sent_per_node[u] += 1;
                messages += 1;
                next_inboxes[v].push((u, msg));
            }
        }
        inboxes = next_inboxes;
        rounds += 1;
    }

    // Materialize the topology from per-node keep sets.
    let kept: Vec<Vec<usize>> = (0..n).map(|u| states[u].kept(&ctx(u))).collect();
    for (u, list) in kept.iter().enumerate() {
        for &v in list {
            assert!(
                neighbor_lists[u].contains(&v),
                "node {u} kept non-neighbor {v}"
            );
        }
    }
    let mut g = AdjacencyList::new(n);
    for e in udg.edges() {
        let u_keeps = kept[e.u].contains(&e.v);
        let v_keeps = kept[e.v].contains(&e.u);
        let keep = match P::symmetrization() {
            Symmetrization::Intersection => u_keeps && v_keeps,
            Symmetrization::Union => u_keeps || v_keeps,
        };
        if keep {
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    (
        Topology::from_graph(nodes.clone(), g),
        RunStats {
            rounds,
            messages,
            max_node_messages: sent_per_node.into_iter().max().unwrap_or(0),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_udg::udg::unit_disk_graph;

    /// A trivial protocol: keep every neighbor (reproduces the UDG).
    struct KeepAll;
    impl NodeProtocol for KeepAll {
        type Msg = ();
        fn init(_: &NodeCtx<'_>) -> Self {
            KeepAll
        }
        fn round(&mut self, _: &NodeCtx<'_>, _: usize, _: &[(usize, ())], _: &mut Vec<(usize, ())>) -> bool {
            true
        }
        fn kept(&self, ctx: &NodeCtx<'_>) -> Vec<usize> {
            ctx.neighbors.to_vec()
        }
        fn symmetrization() -> Symmetrization {
            Symmetrization::Intersection
        }
    }

    /// A one-shot gossip: each node pings every neighbor once, then stops.
    struct PingOnce {
        pinged: bool,
        heard: usize,
    }
    impl NodeProtocol for PingOnce {
        type Msg = u8;
        fn init(_: &NodeCtx<'_>) -> Self {
            PingOnce { pinged: false, heard: 0 }
        }
        fn round(
            &mut self,
            ctx: &NodeCtx<'_>,
            _round: usize,
            inbox: &[(usize, u8)],
            outbox: &mut Vec<(usize, u8)>,
        ) -> bool {
            self.heard += inbox.len();
            if !self.pinged {
                self.pinged = true;
                outbox.extend(ctx.neighbors.iter().map(|&v| (v, 1u8)));
                false
            } else {
                true
            }
        }
        fn kept(&self, _: &NodeCtx<'_>) -> Vec<usize> {
            Vec::new()
        }
        fn symmetrization() -> Symmetrization {
            Symmetrization::Union
        }
    }

    #[test]
    fn keep_all_reproduces_the_udg() {
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.8, 1.9]);
        let udg = unit_disk_graph(&ns);
        let (t, stats) = run_protocol::<KeepAll>(&ns, &udg);
        assert_eq!(t.num_edges(), udg.num_edges());
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn message_accounting() {
        // A path (node 0 and node 2 are out of mutual range).
        let ns = NodeSet::on_line(&[0.0, 0.6, 1.2]);
        let udg = unit_disk_graph(&ns);
        let (_, stats) = run_protocol::<PingOnce>(&ns, &udg);
        // Node 1 has two neighbors, nodes 0 and 2 one each: 4 messages.
        assert_eq!(stats.messages, 4);
        assert_eq!(stats.max_node_messages, 2);
        assert_eq!(stats.rounds, 2);
    }

    #[test]
    fn empty_network() {
        let ns = NodeSet::new(vec![]);
        let udg = unit_disk_graph(&ns);
        let (t, stats) = run_protocol::<KeepAll>(&ns, &udg);
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(stats.rounds, 0);
    }
}
