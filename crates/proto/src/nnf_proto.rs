//! Nearest-neighbor linking as a message-passing protocol.
//!
//! Round 0: beacon positions. Round 1: every node keeps the link to its
//! nearest heard neighbor. The undirected forest is the union of the
//! selections — exactly the Nearest Neighbor Forest that Section 4 of
//! the paper takes aim at, produced with the minimal distributed effort
//! (which is precisely why every practical construction contains it).

use crate::runtime::{NodeCtx, NodeProtocol, Symmetrization};
use rim_geom::Point;

/// One node's NNF state.
pub struct NnfNode {
    nearest: Option<usize>,
}

impl NodeProtocol for NnfNode {
    type Msg = Point;

    fn init(_: &NodeCtx<'_>) -> Self {
        NnfNode { nearest: None }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx<'_>,
        round: usize,
        inbox: &[(usize, Point)],
        outbox: &mut Vec<(usize, Point)>,
    ) -> bool {
        match round {
            0 => {
                let me = ctx.nodes.pos(ctx.id);
                for &v in ctx.neighbors {
                    outbox.push((v, me));
                }
                false
            }
            _ => {
                let me = ctx.nodes.pos(ctx.id);
                self.nearest = inbox
                    .iter()
                    .min_by(|(a, pa), (b, pb)| {
                        pa.dist_sq(&me)
                            .total_cmp(&pb.dist_sq(&me))
                            .then(a.cmp(b))
                    })
                    .map(|&(v, _)| v);
                true
            }
        }
    }

    fn kept(&self, _: &NodeCtx<'_>) -> Vec<usize> {
        self.nearest.into_iter().collect()
    }

    fn symmetrization() -> Symmetrization {
        Symmetrization::Union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_protocol;
    use rim_topology_control::nnf::nearest_neighbor_forest;
    use rim_udg::udg::unit_disk_graph;
    use rim_udg::NodeSet;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new(
            (0..n)
                .map(|_| Point::new(rnd() * side, rnd() * side))
                .collect(),
        )
    }

    #[test]
    fn protocol_matches_centralized_nnf() {
        for seed in 1..6u64 {
            let ns = random_field(45, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            let (proto, _) = run_protocol::<NnfNode>(&ns, &udg);
            let central = nearest_neighbor_forest(&ns, &udg);
            assert_eq!(proto.edges(), central.edges(), "seed={seed}");
        }
    }

    #[test]
    fn isolated_nodes_select_nothing() {
        let ns = NodeSet::on_line(&[0.0, 5.0]);
        let udg = unit_disk_graph(&ns);
        let (t, stats) = run_protocol::<NnfNode>(&ns, &udg);
        assert_eq!(t.num_edges(), 0);
        assert_eq!(stats.messages, 0);
    }
}
