//! The XTC protocol (Wattenhofer & Zollinger, WMAN 2004) as an actual
//! message-passing protocol.
//!
//! XTC's selling point is its minimalism: each node (1) orders its
//! neighbors by link quality, (2) broadcasts that order once, and
//! (3) decides locally — drop the link to `v` iff some `w` ranks better
//! than `v` from *both* sides. One exchange round, `O(Δ)` messages per
//! node, no positions needed (only the rankings).

use crate::runtime::{NodeCtx, NodeProtocol, Symmetrization};

/// One node's XTC state.
pub struct XtcNode {
    /// This node's neighbor ranking, best first.
    my_order: Vec<usize>,
    /// Neighbor rankings received in round 0, by sender.
    orders: Vec<(usize, Vec<usize>)>,
    kept: Vec<usize>,
}

/// Link-quality ranking: distance, then id — the same total order the
/// centralized implementation uses, so the outputs coincide.
fn ranking(ctx: &NodeCtx<'_>) -> Vec<usize> {
    let mut order: Vec<usize> = ctx.neighbors.to_vec();
    order.sort_unstable_by(|&a, &b| {
        ctx.nodes
            .dist_sq(ctx.id, a)
            .total_cmp(&ctx.nodes.dist_sq(ctx.id, b))
            .then(a.cmp(&b))
    });
    order
}

impl NodeProtocol for XtcNode {
    type Msg = Vec<usize>;

    fn init(ctx: &NodeCtx<'_>) -> Self {
        XtcNode {
            my_order: ranking(ctx),
            orders: Vec::new(),
            kept: Vec::new(),
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx<'_>,
        round: usize,
        inbox: &[(usize, Vec<usize>)],
        outbox: &mut Vec<(usize, Vec<usize>)>,
    ) -> bool {
        match round {
            0 => {
                // Broadcast my ranking to every neighbor.
                for &v in &self.my_order {
                    outbox.push((v, self.my_order.clone()));
                }
                false
            }
            _ => {
                self.orders.extend(inbox.iter().cloned());
                // Decide locally: keep v unless some w ranks better than
                // v in MY order and better than ME in V'S order.
                let rank_of = |order: &[usize], x: usize| {
                    order.iter().position(|&y| y == x).unwrap_or(usize::MAX)
                };
                let my = &self.my_order;
                for (vi, &v) in my.iter().enumerate() {
                    let v_order = self
                        .orders
                        .iter()
                        .find(|(s, _)| *s == v)
                        .map(|(_, o)| o.as_slice())
                        .unwrap_or(&[]);
                    let me = _ctx.id;
                    let my_rank_at_v = rank_of(v_order, me);
                    let blocked = my[..vi].iter().any(|&w| {
                        let w_rank_at_v = rank_of(v_order, w);
                        w_rank_at_v < my_rank_at_v
                    });
                    if !blocked {
                        self.kept.push(v);
                    }
                }
                true
            }
        }
    }

    fn kept(&self, _: &NodeCtx<'_>) -> Vec<usize> {
        self.kept.clone()
    }

    fn symmetrization() -> Symmetrization {
        // XTC's drop rule is symmetric (w blocks {u,v} from both sides
        // simultaneously), so intersection == union; intersection states
        // the invariant more strongly and the tests verify it.
        Symmetrization::Intersection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_protocol;
    use rim_geom::Point;
    use rim_topology_control::xtc::xtc;
    use rim_udg::udg::unit_disk_graph;
    use rim_udg::NodeSet;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new((0..n).map(|_| Point::new(rnd() * side, rnd() * side)).collect())
    }

    #[test]
    fn protocol_matches_centralized_xtc() {
        for seed in 1..6u64 {
            let ns = random_field(50, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            let (proto, _) = run_protocol::<XtcNode>(&ns, &udg);
            let central = xtc(&ns, &udg);
            assert_eq!(
                proto.edges(),
                central.edges(),
                "seed={seed}: protocol and centralized XTC disagree"
            );
        }
    }

    #[test]
    fn two_rounds_and_delta_messages() {
        let ns = random_field(60, 2.0, 9);
        let udg = unit_disk_graph(&ns);
        let (_, stats) = run_protocol::<XtcNode>(&ns, &udg);
        assert_eq!(stats.rounds, 2, "one exchange + one decision round");
        assert_eq!(stats.messages, 2 * udg.num_edges(), "one message per directed link");
        assert!(stats.max_node_messages <= udg.max_degree());
    }

    #[test]
    fn decisions_are_mutual() {
        // The paper's symmetry argument: if u keeps v then v keeps u.
        let ns = random_field(40, 1.5, 3);
        let udg = unit_disk_graph(&ns);
        let (t, _) = run_protocol::<XtcNode>(&ns, &udg);
        // run again with Union-like manual check: rebuild with both
        // directions and compare edge counts via the centralized result.
        let central = xtc(&ns, &udg);
        assert_eq!(t.num_edges(), central.num_edges());
    }
}
