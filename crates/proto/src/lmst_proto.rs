//! The LMST protocol (Li, Hou, Sha — INFOCOM 2003) as a message-passing
//! protocol.
//!
//! Round 0: every node beacons its position. Round 1: every node now
//! knows the positions of its 1-hop neighborhood, computes the Euclidean
//! MST of `N(u) ∪ {u}` locally (edges of the *induced UDG* on that set —
//! derivable from positions alone), and keeps its local-MST neighbors.
//! The symmetric output uses the intersection rule (`G₀⁻`), matching the
//! centralized [`rim_topology_control::lmst`] with
//! [`LmstVariant::Intersection`](rim_topology_control::lmst::LmstVariant).
//!
//! **Unit-range assumption:** a node reconstructs the induced UDG on its
//! neighborhood from positions alone, which requires knowing the shared
//! transmission range; this protocol assumes the standard range 1. Run it
//! only over UDGs built with `unit_disk_graph` (range 1) — with a
//! different range the local edge sets, and hence the local MSTs, would
//! diverge from the centralized result.

use crate::runtime::{NodeCtx, NodeProtocol, Symmetrization};
use rim_geom::Point;
use rim_graph::mst::kruskal;
use rim_graph::Edge;

/// One node's LMST state.
pub struct LmstNode {
    /// Neighbor positions learned in round 0.
    positions: Vec<(usize, Point)>,
    kept: Vec<usize>,
}

impl NodeProtocol for LmstNode {
    type Msg = Point;

    fn init(_: &NodeCtx<'_>) -> Self {
        LmstNode {
            positions: Vec::new(),
            kept: Vec::new(),
        }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx<'_>,
        round: usize,
        inbox: &[(usize, Point)],
        outbox: &mut Vec<(usize, Point)>,
    ) -> bool {
        match round {
            0 => {
                let me = ctx.nodes.pos(ctx.id);
                for &v in ctx.neighbors {
                    outbox.push((v, me));
                }
                false
            }
            _ => {
                self.positions.extend(inbox.iter().copied());
                // Local vertex 0 = me; then the heard neighbors in the
                // same deterministic order the centralized code uses
                // (ascending global id).
                self.positions.sort_unstable_by_key(|&(id, _)| id);
                let me = ctx.nodes.pos(ctx.id);
                let mut pts: Vec<Point> = vec![me];
                pts.extend(self.positions.iter().map(|&(_, p)| p));
                let mut edges = Vec::new();
                for a in 0..pts.len() {
                    for b in (a + 1)..pts.len() {
                        // Induced UDG on the neighborhood: unit range,
                        // decided from positions alone.
                        if a == 0 || pts[a].dist(&pts[b]) <= 1.0 {
                            edges.push(Edge::new(a, b, pts[a].dist(&pts[b])));
                        }
                    }
                }
                let mst = kruskal(pts.len(), &edges);
                for e in &mst {
                    if e.touches(0) {
                        let local = e.other(0);
                        self.kept.push(self.positions[local - 1].0);
                    }
                }
                true
            }
        }
    }

    fn kept(&self, _: &NodeCtx<'_>) -> Vec<usize> {
        self.kept.clone()
    }

    fn symmetrization() -> Symmetrization {
        Symmetrization::Intersection
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_protocol;
    use rim_topology_control::lmst::{lmst, LmstVariant};
    use rim_udg::udg::unit_disk_graph;
    use rim_udg::NodeSet;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new(
            (0..n)
                .map(|_| Point::new(rnd() * side, rnd() * side))
                .collect(),
        )
    }

    #[test]
    fn protocol_matches_centralized_lmst() {
        for seed in 1..6u64 {
            let ns = random_field(50, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            let (proto, _) = run_protocol::<LmstNode>(&ns, &udg);
            let central = lmst(&ns, &udg, LmstVariant::Intersection);
            assert_eq!(
                proto.edges(),
                central.edges(),
                "seed={seed}: protocol and centralized LMST disagree"
            );
        }
    }

    #[test]
    fn two_rounds_one_beacon_per_link() {
        let ns = random_field(40, 1.8, 4);
        let udg = unit_disk_graph(&ns);
        let (t, stats) = run_protocol::<LmstNode>(&ns, &udg);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.messages, 2 * udg.num_edges());
        assert!(t.preserves_connectivity_of(&udg));
    }
}
