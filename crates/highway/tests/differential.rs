//! Differential tests for the highway crate: the theorem bounds of
//! Section 5 checked with explicit constants, and the algorithms checked
//! against independent reconstructions of their own decision rules.
//!
//! * Theorem 5.1 — `I(A_exp) = O(√n)` on the exponential chain; pinned
//!   here as `I ≤ √(2n) + 1`, which fails if the hub-growth logic or the
//!   chain construction drifts.
//! * `a_exp` vs `a_exp_reference` — the incremental implementation must
//!   produce the same hubs and edges as the literal recompute-everything
//!   transcription of Figure 8, on random instances.
//! * Theorem 5.4 — `I(A_gen) = O(√Δ)` on *any* distribution; pinned as
//!   `I ≤ 9·√Δ + 6` over uniform, clustered, and adversarial
//!   (doubling-gap) 1-D families.
//! * `A_apx` (Definition 5.2 / Theorem 5.6) — per-component `γ > √Δ`
//!   choice rule recomputed independently, the emitted edge set compared
//!   against the branch it claims to have taken, the crossover exercised
//!   in both directions, and `I(A_apx) ≤ 9·min(γ, √Δ) + 6` on connected
//!   random instances.

use rim_core::receiver::graph_interference;
use rim_highway::a_apx::ApxChoice;
use rim_highway::a_exp::a_exp_reference;
use rim_highway::a_gen::a_gen_with_spacing;
use rim_highway::{a_apx, a_exp, a_gen, exponential_chain, gamma, HighwayInstance};
use rim_rng::{prop, prop_ensure, prop_ensure_eq, SmallRng};

/// Undirected edge set of a topology as sorted `(min, max)` index pairs.
/// Weights are deliberately dropped: edge identity is positional, and the
/// weights are derived from the same positions on both sides.
fn edge_pairs(t: &rim_udg::Topology) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = t
        .edges()
        .iter()
        .map(|e| (e.u.min(e.v), e.u.max(e.v)))
        .collect();
    pairs.sort_unstable();
    pairs
}

// ---------------------------------------------------------------------
// Theorem 5.1: A_exp on the exponential chain.
// ---------------------------------------------------------------------

#[test]
fn a_exp_on_exponential_chains_stays_within_sqrt_2n_plus_1() {
    // 512 is the longest chain whose smallest gap survives the distance
    // squaring in `Point::dist` (see `exponential_chain`'s length limit).
    for n in [2usize, 3, 4, 8, 16, 32, 64, 128, 256, 512] {
        let chain = exponential_chain(n);
        let r = a_exp(&chain);
        let i = graph_interference(&r.topology) as f64;
        let bound = (2.0 * n as f64).sqrt() + 1.0;
        assert!(
            i <= bound,
            "n={n}: I(A_exp)={i} exceeds Theorem 5.1 bound {bound:.2}"
        );
        assert!(r.topology.preserves_connectivity_of(&chain.udg()));
    }
}

#[test]
fn a_exp_matches_the_reference_implementation() {
    // Random instances within mutual transmission range (the A_exp
    // precondition): n points uniform in [0, 1).
    prop::check(
        "a_exp_matches_the_reference_implementation",
        64,
        |rng: &mut SmallRng| {
            let n = rng.gen_range(1usize..49);
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..0.999)).collect();
            HighwayInstance::new(xs)
        },
        |h| {
            let fast = a_exp(h);
            let slow = a_exp_reference(h);
            prop_ensure_eq!(fast.hubs, slow.hubs);
            prop_ensure_eq!(edge_pairs(&fast.topology), edge_pairs(&slow.topology));
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Theorem 5.4: A_gen on arbitrary 1-D families.
// ---------------------------------------------------------------------

/// One linearly connectable instance from three stylised families. The
/// tag is carried for failure reports.
fn gen_family_instance(rng: &mut SmallRng) -> (&'static str, HighwayInstance) {
    match rng.gen_range(0u32..3) {
        0 => {
            // Uniform: constant spacing, degree controlled by spacing.
            let n = rng.gen_range(2usize..201);
            let s = rng.gen_range(0.01..0.5);
            ("uniform", HighwayInstance::new((0..n).map(|i| i as f64 * s).collect()))
        }
        1 => {
            // Clustered: tight packs separated by near-unit hops.
            let clusters = rng.gen_range(1usize..9);
            let mut xs = Vec::new();
            let mut base = 0.0f64;
            for _ in 0..clusters {
                let size = rng.gen_range(1usize..25);
                let pitch = rng.gen_range(0.001..0.02);
                for i in 0..size {
                    xs.push(base + i as f64 * pitch);
                }
                base = xs.last().copied().unwrap_or(base) + rng.gen_range(0.5..1.0);
            }
            ("clustered", HighwayInstance::new(xs))
        }
        _ => {
            // Adversarial: doubling gaps (exponential-chain flavour),
            // restarted whenever the next gap would exceed the range.
            let n = rng.gen_range(2usize..121);
            let mut xs = vec![0.0f64];
            let mut gap = rng.gen_range(0.001..0.01);
            for _ in 1..n {
                if gap > 0.9 {
                    gap = rng.gen_range(0.001..0.01);
                }
                xs.push(xs.last().copied().unwrap_or(0.0) + gap);
                gap *= 2.0;
            }
            ("doubling", HighwayInstance::new(xs))
        }
    }
}

#[test]
fn a_gen_interference_is_within_9_sqrt_delta_plus_6() {
    prop::check(
        "a_gen_interference_is_within_9_sqrt_delta_plus_6",
        96,
        gen_family_instance,
        |(family, h)| {
            let r = a_gen(h);
            let i = graph_interference(&r.topology) as f64;
            let delta = h.max_degree() as f64;
            let bound = 9.0 * delta.sqrt() + 6.0;
            prop_ensure!(
                i <= bound,
                "{family} n={}: I(A_gen)={i} exceeds 9√Δ+6 = {bound:.2} (Δ={delta})",
                h.len()
            );
            prop_ensure!(
                r.topology.preserves_connectivity_of(&h.udg()),
                "{family}: A_gen broke UDG connectivity"
            );
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// A_apx: decision rule, emitted edges, crossover, and bound.
// ---------------------------------------------------------------------

/// Random instance that may split into several UDG components (gaps > 1
/// appear with probability ~1/4 between bursts).
fn multi_component_instance(rng: &mut SmallRng) -> HighwayInstance {
    let bursts = rng.gen_range(1usize..5);
    let mut xs = Vec::new();
    let mut base = 0.0f64;
    for b in 0..bursts {
        if b > 0 {
            // Either stay connected or open a component break.
            base += if rng.gen_bool(0.5) { rng.gen_range(0.3..0.9) } else { rng.gen_range(1.5..3.0) };
        }
        let size = rng.gen_range(1usize..31);
        if rng.gen_bool(0.5) {
            let pitch = rng.gen_range(0.01..0.3);
            for i in 0..size {
                xs.push(base + i as f64 * pitch);
            }
        } else {
            let mut gap = rng.gen_range(0.001..0.01);
            xs.push(base);
            for _ in 1..size {
                if gap > 0.9 {
                    gap = rng.gen_range(0.001..0.01);
                }
                xs.push(xs.last().copied().unwrap_or(base) + gap);
                gap *= 2.0;
            }
        }
        base = xs.last().copied().unwrap_or(base);
    }
    HighwayInstance::new(xs)
}

#[test]
fn a_apx_choice_rule_and_edges_match_an_independent_reconstruction() {
    prop::check(
        "a_apx_choice_rule_and_edges_match_an_independent_reconstruction",
        64,
        multi_component_instance,
        |h| {
            let r = a_apx(h);

            // Components must exactly tile the instance at gaps > 1.
            let mut expected_edges: Vec<(usize, usize)> = Vec::new();
            let mut cursor = 0usize;
            for rec in &r.components {
                prop_ensure_eq!(rec.start, cursor);
                prop_ensure!(rec.end > rec.start, "empty component record");
                if rec.end < h.len() {
                    prop_ensure!(
                        h.gap(rec.end - 1) > 1.0,
                        "component ended at index {} without a range break",
                        rec.end
                    );
                }
                cursor = rec.end;

                // Recompute γ, Δ, and the Definition 5.2 rule on the
                // component in isolation.
                let sub =
                    HighwayInstance::new(h.positions()[rec.start..rec.end].to_vec());
                prop_ensure_eq!(rec.gamma, gamma(&sub));
                prop_ensure_eq!(rec.delta, sub.max_degree());
                let expect_gen = (rec.gamma as f64) > (rec.delta as f64).sqrt();
                prop_ensure_eq!(
                    rec.choice,
                    if expect_gen { ApxChoice::Gen } else { ApxChoice::Linear }
                );

                // Reconstruct the edges the chosen branch must emit.
                match rec.choice {
                    ApxChoice::Linear => {
                        for j in rec.start + 1..rec.end {
                            expected_edges.push((j - 1, j));
                        }
                    }
                    ApxChoice::Gen => {
                        let spacing =
                            ((rec.delta as f64).sqrt().ceil().max(1.0)) as usize;
                        let g = a_gen_with_spacing(&sub, spacing);
                        for e in g.topology.edges() {
                            let (u, v) = (rec.start + e.u, rec.start + e.v);
                            expected_edges.push((u.min(v), u.max(v)));
                        }
                    }
                }
            }
            prop_ensure_eq!(cursor, h.len());
            expected_edges.sort_unstable();
            expected_edges.dedup();
            prop_ensure_eq!(edge_pairs(&r.topology), expected_edges);
            Ok(())
        },
    );
}

#[test]
fn a_apx_crossover_fires_in_both_directions() {
    // Dense uniform instance: γ is constant while √Δ grows with n, so
    // the rule must pick Linear.
    let uniform = HighwayInstance::new((0..120).map(|i| i as f64 * 0.008).collect());
    let r = a_apx(&uniform);
    assert_eq!(r.single_choice(), Some(ApxChoice::Linear));
    let gamma_u = gamma(&uniform);
    assert_eq!(
        graph_interference(&r.topology) as usize, gamma_u,
        "linear branch must realise interference exactly γ"
    );

    // Exponential chain: γ = n − 1 far exceeds √Δ = √(n−1), so the rule
    // must pick Gen — and must beat the linear connection it rejected.
    let chain = exponential_chain(64);
    let r = a_apx(&chain);
    assert_eq!(r.single_choice(), Some(ApxChoice::Gen));
    let apx = graph_interference(&r.topology);
    let linear = graph_interference(&chain.linear_topology());
    assert!(
        apx < linear,
        "Gen branch ({apx}) must beat the rejected linear connection ({linear})"
    );
}

#[test]
fn a_apx_interference_is_within_9_min_gamma_sqrt_delta_plus_6() {
    // On connected instances, A_apx realises γ exactly (Linear branch)
    // or pays Theorem 5.4's O(√Δ) (Gen branch, entered only when
    // γ > √Δ) — either way I ≤ 9·min(γ, √Δ) + 6. A strict
    // `I(apx) ≤ min(I(linear), I(gen))` is *not* a theorem (A_gen can
    // undercut 9√Δ+6 on instances where Linear was chosen), so the
    // constant-factor form is what we pin.
    prop::check(
        "a_apx_interference_is_within_9_min_gamma_sqrt_delta_plus_6",
        96,
        gen_family_instance,
        |(family, h)| {
            let r = a_apx(h);
            let i = graph_interference(&r.topology) as f64;
            let g = gamma(h) as f64;
            let sqrt_delta = (h.max_degree() as f64).sqrt();
            let bound = 9.0 * g.min(sqrt_delta) + 6.0;
            prop_ensure!(
                i <= bound,
                "{family} n={}: I(A_apx)={i} exceeds 9·min(γ,√Δ)+6 = {bound:.2} \
                 (γ={g}, √Δ={sqrt_delta:.2})",
                h.len()
            );
            prop_ensure!(
                r.topology.preserves_connectivity_of(&h.udg()),
                "{family}: A_apx broke UDG connectivity"
            );
            Ok(())
        },
    );
}
