//! Algorithm `A_gen` — segments and hubs (Section 5.2, Figure 9).
//!
//! `A_gen` partitions the highway into segments of unit length (the
//! maximum transmission range). Within a segment every `⌈√Δ⌉`-th node is
//! nominated a *hub* (the rightmost node of the segment as well); hubs
//! are connected linearly, and every regular node connects to the nearest
//! of the two hubs delimiting its interval. Consecutive non-empty
//! segments are joined by one link between their facing boundary nodes.
//! Theorem 5.4: the result has interference `O(√Δ)` for **any** node
//! distribution.

use crate::instance::HighwayInstance;
use rim_graph::AdjacencyList;
use rim_udg::Topology;

/// Result of running [`a_gen`].
#[derive(Debug, Clone)]
pub struct AGenResult {
    /// The constructed topology.
    pub topology: Topology,
    /// Hub node indices, ascending.
    pub hubs: Vec<usize>,
    /// Segments as index ranges `[start, end)` into the sorted node
    /// order (only non-empty segments are listed).
    pub segments: Vec<(usize, usize)>,
    /// The hub spacing used (`⌈√Δ⌉` unless overridden).
    pub spacing: usize,
}

/// Runs `A_gen` with the paper's hub spacing `⌈√Δ⌉`.
pub fn a_gen(instance: &HighwayInstance) -> AGenResult {
    let delta = instance.max_degree();
    let spacing = (delta as f64).sqrt().ceil().max(1.0) as usize;
    a_gen_with_spacing(instance, spacing)
}

/// Runs `A_gen` with an explicit hub spacing (exposed for the ablation
/// experiment; the paper's choice is `⌈√Δ⌉`).
pub fn a_gen_with_spacing(instance: &HighwayInstance, spacing: usize) -> AGenResult {
    assert!(spacing >= 1, "hub spacing must be positive");
    let n = instance.len();
    let nodes = instance.node_set();
    if n == 0 {
        return AGenResult {
            topology: Topology::empty(nodes),
            hubs: Vec::new(),
            segments: Vec::new(),
            spacing,
        };
    }

    // Partition the sorted nodes into unit-length segments anchored at
    // the leftmost node.
    let x0 = instance.x(0);
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    let mut seg_id = 0usize;
    for i in 0..n {
        let id = (instance.x(i) - x0).floor() as usize;
        if id != seg_id {
            segments.push((start, i));
            start = i;
            seg_id = id;
        }
    }
    segments.push((start, n));

    let mut g = AdjacencyList::new(n);
    let mut hubs: Vec<usize> = Vec::new();
    let link = |g: &mut AdjacencyList, a: usize, b: usize| {
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b, nodes.dist(a, b));
        }
    };

    for &(s, e) in &segments {
        // Hubs: every `spacing`-th node from the left, plus the rightmost.
        let mut seg_hubs: Vec<usize> = (s..e).step_by(spacing).collect();
        // rim-lint: allow(no-unwrap-in-lib) — step_by over non-empty s..e yields >= 1 hub
        if *seg_hubs.last().unwrap() != e - 1 {
            seg_hubs.push(e - 1);
        }
        // Hubs linearly connected.
        for w in seg_hubs.windows(2) {
            link(&mut g, w[0], w[1]);
        }
        // Regular nodes connect to the nearest delimiting hub
        // (ties towards the left hub).
        for w in seg_hubs.windows(2) {
            let (hl, hr) = (w[0], w[1]);
            for v in (hl + 1)..hr {
                let dl = instance.x(v) - instance.x(hl);
                let dr = instance.x(hr) - instance.x(v);
                link(&mut g, v, if dl <= dr { hl } else { hr });
            }
        }
        hubs.extend(seg_hubs);
    }

    // Join consecutive segments whose boundary nodes are in range; a
    // larger boundary gap means the UDG itself is disconnected there.
    for w in segments.windows(2) {
        let (left_end, right_start) = (w[0].1 - 1, w[1].0);
        if instance.x(right_start) - instance.x(left_end) <= 1.0 {
            link(&mut g, left_end, right_start);
        }
    }

    hubs.sort_unstable();
    hubs.dedup();
    AGenResult {
        topology: Topology::from_graph(nodes, g),
        hubs,
        segments,
        spacing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::exponential_chain;
    use rim_core::receiver::graph_interference;

    fn pseudo_uniform(n: usize, span: f64, seed: u64) -> HighwayInstance {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        HighwayInstance::new((0..n).map(|_| rnd() * span).collect())
    }

    #[test]
    fn preserves_connectivity_on_random_instances() {
        for seed in 1..6u64 {
            let h = pseudo_uniform(120, 5.0, seed);
            let r = a_gen(&h);
            assert!(r.topology.preserves_connectivity_of(&h.udg()), "seed={seed}");
            assert!(r.topology.respects_range(1.0), "seed={seed}");
        }
    }

    #[test]
    fn interference_is_order_sqrt_delta() {
        // Theorem 5.4: I(A_gen) ∈ O(√Δ). Lemma 5.3's constants: at most
        // ~3 segments contribute, each O(√Δ) hubs + 2·interval regulars.
        for (n, span, seed) in [(200usize, 2.0, 3u64), (300, 6.0, 4), (150, 1.0, 5)] {
            let h = pseudo_uniform(n, span, seed);
            let delta = h.max_degree();
            let r = a_gen(&h);
            let i = graph_interference(&r.topology);
            let bound = 9.0 * (delta as f64).sqrt() + 6.0;
            assert!(
                (i as f64) <= bound,
                "n={n} span={span}: I={i} > 9√Δ+6 = {bound:.1} (Δ={delta})"
            );
        }
    }

    #[test]
    fn exponential_chain_beats_linear() {
        let c = exponential_chain(64);
        let r = a_gen(&c);
        let i = graph_interference(&r.topology);
        assert!(i < 62, "A_gen should beat the linear n-2 = 62, got {i}");
        assert!(r.topology.preserves_connectivity_of(&c.udg()));
    }

    #[test]
    fn hubs_include_segment_boundaries() {
        let h = HighwayInstance::new(vec![0.0, 0.2, 0.4, 0.6, 1.5, 1.7, 1.9]);
        let r = a_gen_with_spacing(&h, 2);
        assert_eq!(r.segments, vec![(0, 4), (4, 7)]);
        // Leftmost and rightmost of each segment are hubs.
        for &(s, e) in &r.segments {
            assert!(r.hubs.contains(&s));
            assert!(r.hubs.contains(&(e - 1)));
        }
        // Segments joined by boundary link (gap 0.9 <= 1).
        assert!(r.topology.graph().has_edge(3, 4));
    }

    #[test]
    fn disconnected_instance_stays_disconnected() {
        let h = HighwayInstance::new(vec![0.0, 0.5, 3.0, 3.5]);
        let r = a_gen(&h);
        assert!(r.topology.preserves_connectivity_of(&h.udg()));
        assert!(!rim_graph::traversal::is_connected(r.topology.graph()));
    }

    #[test]
    fn uniform_spacing_one_is_linear_chain() {
        // spacing 1 within one segment: every node is a hub, hubs are
        // connected linearly — the chain.
        let h = HighwayInstance::new(vec![0.0, 0.2, 0.4, 0.6, 0.8]);
        let r = a_gen_with_spacing(&h, 1);
        assert_eq!(r.topology.num_edges(), 4);
        for i in 1..5 {
            assert!(r.topology.graph().has_edge(i - 1, i));
        }
    }

    #[test]
    fn empty_instance() {
        let r = a_gen(&HighwayInstance::new(vec![]));
        assert_eq!(r.topology.num_nodes(), 0);
        assert!(r.hubs.is_empty());
    }
}
