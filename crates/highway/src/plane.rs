//! `A_gen2` — an engineering extension of `A_gen` to the plane.
//!
//! The paper closes with: *"Adaptation of our approach to higher
//! dimensions remains an open problem and is left for future work."*
//! This module is our take on that direction. It carries no theorem —
//! the `O(√Δ)` analysis of Theorem 5.4 does not transfer verbatim — but
//! it preserves connectivity by construction and is evaluated
//! empirically against the 2-D baselines (experiment `X2`).
//!
//! Construction (mirroring `A_gen`'s segment/hub/interval structure):
//!
//! 1. partition the plane into square cells of side `1/√2`, so any two
//!    nodes sharing a cell are within mutual range (cell diagonal = 1);
//! 2. within each cell, nominate every `⌈√Δ⌉`-th node (in lexicographic
//!    position order) a *hub*, plus the last node; chain the hubs and
//!    attach every regular node to its nearest hub in the cell;
//! 3. bridge every pair of cells within Chebyshev cell-distance 2 by the
//!    closest cross pair, if that pair is within range.
//!
//! Connectivity preservation: a UDG edge `{u, v}` has `|uv| <= 1`, so its
//! endpoint cells are at Chebyshev distance at most 2 and their closest
//! cross pair (at distance `<= |uv| <= 1`) is bridged; within a cell the
//! hub chain connects everyone.

use rim_graph::AdjacencyList;
use rim_udg::udg::unit_disk_graph;
use rim_udg::{NodeSet, Topology};
use std::collections::HashMap;

/// Cell side: `1/√2`, so the in-cell diameter is exactly the unit range.
pub const CELL_SIDE: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Result of running [`a_gen_2d`].
#[derive(Debug, Clone)]
pub struct AGen2dResult {
    /// The constructed topology.
    pub topology: Topology,
    /// Hub node indices, ascending.
    pub hubs: Vec<usize>,
    /// Number of occupied cells.
    pub cells: usize,
    /// Hub spacing used (`⌈√Δ⌉` unless overridden).
    pub spacing: usize,
}

/// Runs `A_gen2` with the `⌈√Δ⌉` hub spacing.
pub fn a_gen_2d(nodes: &NodeSet) -> AGen2dResult {
    let udg = unit_disk_graph(nodes);
    let spacing = (udg.max_degree() as f64).sqrt().ceil().max(1.0) as usize;
    a_gen_2d_with_spacing(nodes, spacing)
}

/// Runs `A_gen2` with an explicit hub spacing.
pub fn a_gen_2d_with_spacing(nodes: &NodeSet, spacing: usize) -> AGen2dResult {
    assert!(spacing >= 1);
    let n = nodes.len();
    let mut g = AdjacencyList::new(n);
    if n == 0 {
        return AGen2dResult {
            topology: Topology::empty(nodes.clone()),
            hubs: Vec::new(),
            cells: 0,
            spacing,
        };
    }

    let bbox = nodes.bbox();
    let cell_of = |i: usize| -> (i64, i64) {
        let p = nodes.pos(i);
        (
            ((p.x - bbox.min.x) / CELL_SIDE).floor() as i64,
            ((p.y - bbox.min.y) / CELL_SIDE).floor() as i64,
        )
    };
    let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for i in 0..n {
        cells.entry(cell_of(i)).or_default().push(i);
    }
    // Deterministic processing order of the cells and their members.
    let mut cell_keys: Vec<(i64, i64)> = cells.keys().copied().collect();
    cell_keys.sort_unstable();
    for members in cells.values_mut() {
        members.sort_unstable_by(|&a, &b| {
            nodes.pos(a).lex_cmp(&nodes.pos(b)).then(a.cmp(&b))
        });
    }

    let link = |g: &mut AdjacencyList, a: usize, b: usize| {
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b, nodes.dist(a, b));
        }
    };

    let mut hubs: Vec<usize> = Vec::new();
    for key in &cell_keys {
        let members = &cells[key];
        let mut cell_hubs: Vec<usize> = members.iter().copied().step_by(spacing).collect();
        let last = *members.last().unwrap(); // rim-lint: allow(no-unwrap-in-lib) — cells are non-empty
        if *cell_hubs.last().unwrap() != last { // rim-lint: allow(no-unwrap-in-lib) — step_by yields >= 1
            cell_hubs.push(last);
        }
        for w in cell_hubs.windows(2) {
            link(&mut g, w[0], w[1]);
        }
        // Regular nodes attach to their nearest hub in the cell.
        for &v in members {
            if cell_hubs.contains(&v) {
                continue;
            }
            let h = cell_hubs
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    nodes
                        .dist_sq(v, a)
                        .total_cmp(&nodes.dist_sq(v, b))
                        .then(a.cmp(&b))
                })
                .unwrap(); // rim-lint: allow(no-unwrap-in-lib) — cell_hubs non-empty
            link(&mut g, v, h);
        }
        hubs.extend(cell_hubs);
    }

    // Bridges between nearby cells: the closest cross pair, if in range.
    for (ki, &a) in cell_keys.iter().enumerate() {
        for &b in &cell_keys[ki + 1..] {
            if (a.0 - b.0).abs() > 2 || (a.1 - b.1).abs() > 2 {
                continue;
            }
            let mut best: Option<(f64, usize, usize)> = None;
            for &u in &cells[&a] {
                for &v in &cells[&b] {
                    let d = nodes.dist(u, v);
                    if d <= 1.0 && best.is_none_or(|(bd, bu, bv)| (d, u, v) < (bd, bu, bv)) {
                        best = Some((d, u, v));
                    }
                }
            }
            if let Some((_, u, v)) = best {
                link(&mut g, u, v);
            }
        }
    }

    hubs.sort_unstable();
    hubs.dedup();
    AGen2dResult {
        cells: cell_keys.len(),
        topology: Topology::from_graph(nodes.clone(), g),
        hubs,
        spacing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::receiver::graph_interference;
    use rim_geom::Point;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new((0..n).map(|_| Point::new(rnd() * side, rnd() * side)).collect())
    }

    #[test]
    fn preserves_connectivity_on_random_fields() {
        for seed in 1..6u64 {
            let ns = random_field(120, 2.5, seed);
            let r = a_gen_2d(&ns);
            let udg = unit_disk_graph(&ns);
            assert!(r.topology.preserves_connectivity_of(&udg), "seed={seed}");
            assert!(r.topology.respects_range(1.0));
        }
    }

    #[test]
    fn preserves_connectivity_on_disconnected_fields() {
        // Two far-apart clusters stay two components.
        let mut pts = random_field(30, 1.0, 3).points().to_vec();
        pts.extend(random_field(30, 1.0, 4).points().iter().map(|p| Point::new(p.x + 10.0, p.y)));
        let ns = NodeSet::new(pts);
        let r = a_gen_2d(&ns);
        let udg = unit_disk_graph(&ns);
        assert!(r.topology.preserves_connectivity_of(&udg));
        assert!(!rim_graph::traversal::is_connected(r.topology.graph()));
    }

    #[test]
    fn interference_tracks_sqrt_delta_empirically() {
        // No theorem — but on uniform fields the measured interference
        // should stay within a small multiple of √Δ.
        for (n, side, seed) in [(200usize, 2.0, 7u64), (400, 2.0, 8)] {
            let ns = random_field(n, side, seed);
            let udg = unit_disk_graph(&ns);
            let delta = udg.max_degree() as f64;
            let r = a_gen_2d(&ns);
            let i = graph_interference(&r.topology) as f64;
            assert!(
                i <= 14.0 * delta.sqrt() + 8.0,
                "n={n}: I={i} vs √Δ={:.1}",
                delta.sqrt()
            );
        }
    }

    #[test]
    fn dense_single_cell_uses_hub_structure() {
        let ns = random_field(60, 0.5, 5);
        let r = a_gen_2d(&ns);
        assert!(r.cells <= 2, "tiny field should occupy few cells");
        // Hub count per cell ~ members/spacing + 1.
        assert!(r.hubs.len() < 60);
        let udg = unit_disk_graph(&ns);
        assert!(r.topology.preserves_connectivity_of(&udg));
    }

    #[test]
    fn empty_and_singleton() {
        let r = a_gen_2d(&NodeSet::new(vec![]));
        assert_eq!(r.cells, 0);
        let r = a_gen_2d(&NodeSet::new(vec![Point::new(1.0, 1.0)]));
        assert_eq!(r.cells, 1);
        assert_eq!(r.topology.num_edges(), 0);
    }

    #[test]
    fn highway_input_degenerates_to_a_gen_like_structure() {
        // 1-D input through the 2-D construction still works.
        let ns = NodeSet::on_line(&[0.0, 0.1, 0.2, 0.9, 1.5, 1.6]);
        let r = a_gen_2d(&ns);
        let udg = unit_disk_graph(&ns);
        assert!(r.topology.preserves_connectivity_of(&udg));
    }
}
