//! The **highway model** — Section 5 of von Rickenbach et al. (IPDPS
//! 2005): nodes restricted to one dimension.
//!
//! One-dimensional instances already exhibit the full difficulty of
//! minimum-interference topology control. This crate implements the
//! paper's constructions and algorithms:
//!
//! * [`instance`] — highway instances (sorted positions on a line),
//!   the linearly connected topology `G_lin`, and `Δ` computation;
//! * [`exponential`] — the exponential node chain (Figure 6) and the
//!   two-chain 2-D witness of Theorem 4.1 (Figures 3–5);
//! * [`a_exp`] — the scan-line hub algorithm achieving `O(√n)`
//!   interference on the exponential chain (Theorem 5.1, Figure 8);
//! * [`a_gen`] — the segment/hub algorithm achieving `O(√Δ)` on *any*
//!   highway instance (Lemma 5.3, Theorem 5.4, Figure 9);
//! * [`critical`] — critical node sets `C_v` and `γ = max_v |C_v|`
//!   (Definition 5.2);
//! * [`a_apx`] — the hybrid `O(Δ^{1/4})`-approximation (Theorem 5.6);
//! * [`bounds`] — the `√n` (Theorem 5.2) and `Ω(√γ)` (Lemma 5.5) lower
//!   bounds used as optimality certificates;
//! * [`plane`] — `A_gen2`, our engineering take on the paper's stated
//!   future work (adapting the approach to two dimensions).

#![forbid(unsafe_code)]

// Node ids double as indices throughout this workspace; indexed loops
// over `0..n` mirror the paper's notation and often touch several arrays.
#![allow(clippy::needless_range_loop)]

/// Algorithm `A_apx` — the hybrid approximation (Section 5.3, Theorem 5.6).
pub mod a_apx;
/// Algorithm `A_exp` — scan-line hub growth (Section 5.1, Figure 8).
pub mod a_exp;
/// Algorithm `A_gen` — segments and hubs (Section 5.2, Figure 9).
pub mod a_gen;
/// Lower bounds: Theorem 5.2 and Lemma 5.5 optimality certificates.
pub mod bounds;
/// Critical node sets (Definition 5.2) and the instance parameter `γ`.
pub mod critical;
/// The exponential node chain (Figure 6) and Theorem 4.1's witness.
pub mod exponential;
/// Highway instances: node positions on a line.
pub mod instance;
/// `A_gen2` — an engineering extension of `A_gen` to the plane.
pub mod plane;

pub use a_apx::{a_apx, ApxChoice};
pub use a_exp::a_exp;
pub use a_gen::a_gen;
pub use critical::gamma;
pub use exponential::{exponential_chain, two_chains};
pub use instance::HighwayInstance;
