//! Highway instances: node positions on a line.

use rim_graph::AdjacencyList;
use rim_udg::udg::unit_disk_graph;
use rim_udg::{NodeSet, Topology};

/// A highway instance: `n` nodes on the real line, stored sorted
/// ascending. Node indices follow the left-to-right order, matching the
/// paper's `v_1 … v_n` numbering (0-based here).
#[derive(Debug, Clone, PartialEq)]
pub struct HighwayInstance {
    xs: Vec<f64>,
}

impl HighwayInstance {
    /// Creates an instance from positions (sorted internally).
    ///
    /// Panics on non-finite positions.
    pub fn new(mut xs: Vec<f64>) -> Self {
        assert!(xs.iter().all(|x| x.is_finite()), "non-finite position");
        xs.sort_unstable_by(f64::total_cmp);
        HighwayInstance { xs }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the instance has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Position of node `i` (ascending in `i`).
    #[inline]
    pub fn x(&self, i: usize) -> f64 {
        self.xs[i]
    }

    /// All positions, ascending.
    #[inline]
    pub fn positions(&self) -> &[f64] {
        &self.xs
    }

    /// Gap between consecutive nodes `i` and `i + 1`.
    #[inline]
    pub fn gap(&self, i: usize) -> f64 {
        self.xs[i + 1] - self.xs[i]
    }

    /// The instance as a 2-D [`NodeSet`] on the x-axis.
    pub fn node_set(&self) -> NodeSet {
        NodeSet::on_line(&self.xs)
    }

    /// The Unit Disk Graph of the instance (range 1).
    pub fn udg(&self) -> AdjacencyList {
        unit_disk_graph(&self.node_set())
    }

    /// Maximum UDG degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.udg().max_degree()
    }

    /// The linearly connected topology `G_lin`: every node linked to its
    /// successor. **Requires** every gap to be at most 1 (otherwise the
    /// link would exceed the transmission range); check with
    /// [`HighwayInstance::linearly_connectable`].
    pub fn linear_topology(&self) -> Topology {
        assert!(
            self.linearly_connectable(),
            "a gap exceeds the unit transmission range"
        );
        let pairs: Vec<(usize, usize)> = (1..self.len()).map(|i| (i - 1, i)).collect();
        Topology::from_pairs(self.node_set(), &pairs)
    }

    /// Returns `true` if all consecutive gaps are within the unit range,
    /// i.e. `G_lin` is a valid topology and the UDG is connected.
    pub fn linearly_connectable(&self) -> bool {
        (0..self.len().saturating_sub(1)).all(|i| self.gap(i) <= 1.0)
    }

    /// Total span (distance between leftmost and rightmost node).
    pub fn span(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs[self.len() - 1] - self.xs[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::receiver::graph_interference;

    #[test]
    fn positions_are_sorted() {
        let h = HighwayInstance::new(vec![0.5, 0.1, 0.9]);
        assert_eq!(h.positions(), &[0.1, 0.5, 0.9]);
        assert_eq!(h.x(0), 0.1);
        assert!((h.gap(0) - 0.4).abs() < 1e-15);
        assert!((h.span() - 0.8).abs() < 1e-15);
    }

    #[test]
    fn linear_topology_links_consecutive_nodes() {
        let h = HighwayInstance::new(vec![0.0, 0.3, 0.7, 1.2]);
        assert!(h.linearly_connectable());
        let t = h.linear_topology();
        assert_eq!(t.num_edges(), 3);
        assert!(t.graph().has_edge(0, 1));
        assert!(t.graph().has_edge(2, 3));
        assert!(!t.graph().has_edge(0, 2));
        assert!(t.is_forest());
        assert!(t.preserves_connectivity_of(&h.udg()));
    }

    #[test]
    fn uniform_chain_linear_interference_is_two() {
        let h = HighwayInstance::new((0..20).map(|i| i as f64 * 0.5).collect());
        assert_eq!(graph_interference(&h.linear_topology()), 2);
    }

    #[test]
    fn wide_gap_blocks_linear_connection() {
        let h = HighwayInstance::new(vec![0.0, 2.0]);
        assert!(!h.linearly_connectable());
    }

    #[test]
    fn max_degree_of_dense_segment() {
        let h = HighwayInstance::new((0..7).map(|i| i as f64 * 0.1).collect());
        assert_eq!(h.max_degree(), 6); // all mutually in range
    }

    #[test]
    fn empty_and_singleton() {
        let e = HighwayInstance::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.span(), 0.0);
        assert!(e.linearly_connectable());
        let s = HighwayInstance::new(vec![4.2]);
        assert_eq!(s.linear_topology().num_edges(), 0);
    }
}
