//! The exponential node chain (Figure 6) and the two-chain witness of
//! Theorem 4.1 (Figures 3–5).

use crate::instance::HighwayInstance;
use rim_geom::Point;
use rim_udg::{NodeSet, Topology};

/// Builds the exponential node chain with `n` nodes, scaled so the whole
/// chain spans less than 1 (the paper's assumption: every node can reach
/// every other, hence `Δ = n − 1`).
///
/// Unscaled, node `i` sits at `2^i − 1`, so the gap between nodes `i` and
/// `i+1` is `2^i`; the scale factor `2^{-(n-1)}` is a power of two, so
/// every coordinate and every gap stays exactly representable.
pub fn exponential_chain(n: usize) -> HighwayInstance {
    assert!(n >= 1, "chain needs at least one node");
    // The limit is set by distance *squaring*, not representability:
    // the smallest gap is `2^{-(n-1)}`, and `Point::dist` squares it,
    // so past n = 512 the square drops below the smallest normal f64
    // and nearby nodes collapse to distance zero.
    assert!(n <= 512, "chain too long for f64 dynamic range");
    let scale = 2f64.powi(-(n as i32 - 1));
    HighwayInstance::new(
        (0..n)
            .map(|i| (2f64.powi(i as i32) - 1.0) * scale)
            .collect(),
    )
}

/// The two-exponential-chains construction of Theorem 4.1 with `k`
/// horizontal nodes (total `n = 3k − 1` nodes: `k` horizontal, `k`
/// diagonal, `k − 1` helpers).
///
/// * `h_i` (`i = 0..k`) sits at `x_i = 2^i − 1` on the axis — gaps grow
///   exponentially, so every `h_{i+1}` has `h_i` as nearest neighbor and
///   the Nearest Neighbor Forest links the whole horizontal chain,
///   covering `h_0` with `Ω(n)` disks (Figure 4).
/// * `v_i` hovers above `h_i` at height `d_i` slightly larger than
///   `h_i`'s gap to its left neighbor (`d_i = 1.05 · 2^{i-1}`, and
///   `d_0 = 0.6`), so it never becomes `h_i`'s nearest neighbor.
/// * `t_i` (`i = 1..k`) sits between `v_{i-1}` and `v_i`, at 10% of the
///   way — close enough to `v_{i-1}` that `|h_i t_i| > |h_i v_i|` (with
///   heights `c = 1.05` this requires `4(1−λ) > c²(3+λ)`, satisfied at
///   `λ = 0.1`), so helpers never become nearest neighbors of the
///   horizontal chain.
///
/// Everything is scaled by `2^{-(k+1)}` so the whole instance fits within
/// unit diameter and the UDG (range 1) is complete.
///
/// Returns the node set together with the index ranges
/// `(horizontal, diagonal, helpers)`.
pub struct TwoChains {
    /// All nodes: first the `k` horizontal, then `k` diagonal, then the
    /// `k − 1` helpers.
    pub nodes: NodeSet,
    /// Number of horizontal chain nodes `k`.
    pub k: usize,
}

impl TwoChains {
    /// Index of horizontal node `h_i`.
    pub fn h(&self, i: usize) -> usize {
        assert!(i < self.k);
        i
    }

    /// Index of diagonal node `v_i`.
    pub fn v(&self, i: usize) -> usize {
        assert!(i < self.k);
        self.k + i
    }

    /// Index of helper node `t_i` (`1 <= i < k`).
    pub fn t(&self, i: usize) -> usize {
        assert!(i >= 1 && i < self.k);
        2 * self.k + (i - 1)
    }

    /// Total number of nodes (`3k − 1`).
    pub fn len(&self) -> usize {
        3 * self.k - 1
    }

    /// Returns `true` if the construction is empty (never, `k >= 2`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The explicit low-interference witness topology of Figure 5: each
    /// `h_i` hangs off `v_i`, and the diagonal chain is connected through
    /// the helpers (`v_{i-1} — t_i — v_i`). Its interference is a small
    /// constant independent of `k`.
    pub fn witness_topology(&self) -> Topology {
        let mut pairs = Vec::with_capacity(3 * self.k);
        for i in 0..self.k {
            pairs.push((self.h(i), self.v(i)));
        }
        for i in 1..self.k {
            pairs.push((self.v(i - 1), self.t(i)));
            pairs.push((self.t(i), self.v(i)));
        }
        Topology::from_pairs(self.nodes.clone(), &pairs)
    }
}

/// Builds the two-chain construction; see [`TwoChains`].
pub fn two_chains(k: usize) -> TwoChains {
    assert!(k >= 2, "need at least two horizontal nodes");
    assert!(k <= 500, "construction too large for f64 dynamic range");
    let scale = 2f64.powi(-(k as i32 + 1));
    let hx = |i: usize| (2f64.powi(i as i32) - 1.0) * scale;
    let d = |i: usize| {
        if i == 0 {
            0.6 * scale
        } else {
            1.05 * 2f64.powi(i as i32 - 1) * scale
        }
    };
    let mut pts: Vec<Point> = Vec::with_capacity(3 * k - 1);
    for i in 0..k {
        pts.push(Point::new(hx(i), 0.0));
    }
    for i in 0..k {
        pts.push(Point::new(hx(i), d(i)));
    }
    for i in 1..k {
        let a = Point::new(hx(i - 1), d(i - 1));
        let b = Point::new(hx(i), d(i));
        pts.push(a + (b - a) * 0.1);
    }
    TwoChains {
        nodes: NodeSet::new(pts),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::receiver::{graph_interference, interference_at};
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn chain_gaps_double_exactly() {
        let c = exponential_chain(10);
        for i in 1..9 {
            assert_eq!(c.gap(i), 2.0 * c.gap(i - 1), "gap {i}");
        }
        assert!(c.span() < 1.0);
        assert_eq!(c.max_degree(), 9, "UDG is complete");
    }

    #[test]
    fn linear_chain_interference_is_n_minus_2() {
        // Figure 7: the leftmost node is covered by every node except the
        // rightmost, so I(G_lin) = n − 2.
        for n in [4usize, 8, 16, 32] {
            let c = exponential_chain(n);
            let t = c.linear_topology();
            assert_eq!(interference_at(&t, 0), n - 2, "n={n}");
            assert_eq!(graph_interference(&t), n - 2, "n={n}");
        }
    }

    #[test]
    fn two_chains_nearest_neighbors_follow_the_figure() {
        let tc = two_chains(8);
        let udg = unit_disk_graph(&tc.nodes);
        // h_{i+1}'s nearest neighbor is h_i, forcing the horizontal chain
        // into the NNF.
        for i in 1..tc.k {
            let nn =
                rim_graph::AdjacencyList::neighbors(&udg, tc.h(i)).min_by(|&a, &b| {
                    tc.nodes
                        .dist_sq(tc.h(i), a)
                        .total_cmp(&tc.nodes.dist_sq(tc.h(i), b))
                });
            assert_eq!(nn, Some(tc.h(i - 1)), "NN of h_{i}");
        }
        // Every diagonal and helper node has its nearest neighbor inside
        // the diagonal/helper cluster — never a horizontal node — so the
        // NNF keeps the two chains separate as in Figure 4.
        let is_upper = |idx: usize| idx >= tc.k;
        for idx in tc.k..tc.len() {
            let nn = rim_graph::AdjacencyList::neighbors(&udg, idx)
                .min_by(|&a, &b| {
                    tc.nodes
                        .dist_sq(idx, a)
                        .total_cmp(&tc.nodes.dist_sq(idx, b))
                })
                .unwrap();
            assert!(is_upper(nn), "NN of upper node {idx} is horizontal node {nn}");
        }
    }

    #[test]
    fn witness_topology_has_constant_interference() {
        for k in [4usize, 8, 16] {
            let tc = two_chains(k);
            let w = tc.witness_topology();
            assert!(w.preserves_connectivity_of(&unit_disk_graph(&tc.nodes)));
            assert!(w.is_forest());
            let i = graph_interference(&w);
            assert!(i <= 8, "witness interference {i} grew with k={k}");
        }
    }

    #[test]
    fn helper_is_farther_from_h_than_v() {
        // The defining condition |h_i t_i| > |h_i v_i| of the construction.
        let tc = two_chains(10);
        for i in 1..tc.k {
            assert!(
                tc.nodes.dist(tc.h(i), tc.t(i)) > tc.nodes.dist(tc.h(i), tc.v(i)),
                "i={i}"
            );
        }
    }

    #[test]
    fn index_helpers_are_disjoint_and_total() {
        let tc = two_chains(5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            assert!(seen.insert(tc.h(i)));
            assert!(seen.insert(tc.v(i)));
        }
        for i in 1..5 {
            assert!(seen.insert(tc.t(i)));
        }
        assert_eq!(seen.len(), tc.len());
        assert_eq!(tc.len(), tc.nodes.len());
    }
}
