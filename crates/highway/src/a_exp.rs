//! Algorithm `A_exp` — scan-line hub growth (Section 5.1, Figure 8).
//!
//! `A_exp` processes the nodes left to right. The leftmost node starts as
//! the current hub; each subsequent node is linked to the hub. When an
//! insertion raises the overall interference `I(G_exp)`, the node that
//! caused the increase becomes the new hub, and the scan continues. On the
//! exponential node chain this yields interference `Θ(√n)` (Theorem 5.1),
//! matching the `√n` lower bound of Theorem 5.2.

use crate::instance::HighwayInstance;
use rim_core::receiver::graph_interference;
use rim_graph::AdjacencyList;
use rim_udg::Topology;

/// Result of running [`a_exp`].
#[derive(Debug, Clone)]
pub struct AExpResult {
    /// The constructed topology.
    pub topology: Topology,
    /// The hubs, in scan order (the leftmost node is always first).
    pub hubs: Vec<usize>,
}

/// Runs `A_exp` on a highway instance (incremental interference
/// maintenance, `O(n²)` total).
///
/// Produces exactly the same topology as the literal
/// [`a_exp_reference`] — a property-tested equivalence — but maintains
/// per-node coverage counts incrementally instead of recomputing
/// `I(G_exp)` from scratch after every insertion:
///
/// * inserting `{h, v}` can only grow the radii of `h` and `v`;
/// * when a node's radius grows from `r` to `r'`, it newly covers
///   exactly the nodes at distance in `(r, r']`.
pub fn a_exp(instance: &HighwayInstance) -> AExpResult {
    assert!(
        instance.span() <= 1.0,
        "A_exp requires all nodes within mutual transmission range"
    );
    let n = instance.len();
    let nodes = instance.node_set();
    if n == 0 {
        return AExpResult {
            topology: Topology::empty(nodes),
            hubs: Vec::new(),
        };
    }
    let mut g = AdjacencyList::new(n);
    let mut radius = vec![0.0f64; n];
    // cov[v] = number of nodes whose disks currently cover v.
    let mut cov = vec![0u32; n];
    let mut current_i = 0u32;

    // Distance-sorted neighbor lists are implicit: positions are sorted,
    // so the nodes covered by u at radius r form a contiguous window
    // around u. Track the window per node.
    let mut lo: Vec<usize> = (0..n).collect(); // leftmost covered index
    let mut hi: Vec<usize> = (0..n).collect(); // rightmost covered index

    let grow = |u: usize,
                    new_r: f64,
                    radius: &mut Vec<f64>,
                    cov: &mut Vec<u32>,
                    lo: &mut Vec<usize>,
                    hi: &mut Vec<usize>| {
        if new_r <= radius[u] {
            return;
        }
        radius[u] = new_r;
        // Same distance-level predicate as the interference kernels, so
        // boundary nodes (the farthest neighbor) are counted identically.
        while lo[u] > 0 && nodes.dist(u, lo[u] - 1) <= new_r {
            lo[u] -= 1;
            cov[lo[u]] += 1;
        }
        while hi[u] + 1 < n && nodes.dist(u, hi[u] + 1) <= new_r {
            hi[u] += 1;
            cov[hi[u]] += 1;
        }
    };

    let mut hub = 0usize;
    let mut hubs = vec![0usize];
    for v in 1..n {
        let d = nodes.dist(hub, v);
        g.add_edge(hub, v, d);
        grow(hub, d, &mut radius, &mut cov, &mut lo, &mut hi);
        grow(v, d, &mut radius, &mut cov, &mut lo, &mut hi);
        let new_i = cov.iter().copied().max().unwrap_or(0);
        debug_assert!(new_i >= current_i);
        if new_i > current_i {
            current_i = new_i;
            hub = v;
            hubs.push(v);
        }
    }
    AExpResult {
        topology: Topology::from_graph(nodes, g),
        hubs,
    }
}

/// The literal algorithm of the paper: maintain a current hub `h`, link
/// each scanned node to `h`, recompute `I(G_exp)`, and promote the node
/// to hub whenever the interference just increased. `O(n³)` — kept as
/// the readable reference; [`a_exp`] is the equivalent fast version.
///
/// The paper states `A_exp` for the exponential node chain, where every
/// node can reach every other (`Δ = n − 1`); we therefore require the
/// instance span to be at most 1 so every inserted link is feasible.
pub fn a_exp_reference(instance: &HighwayInstance) -> AExpResult {
    assert!(
        instance.span() <= 1.0,
        "A_exp requires all nodes within mutual transmission range"
    );
    let n = instance.len();
    let nodes = instance.node_set();
    if n == 0 {
        return AExpResult {
            topology: Topology::empty(nodes),
            hubs: Vec::new(),
        };
    }
    let mut g = AdjacencyList::new(n);
    let mut hub = 0usize;
    let mut hubs = vec![0usize];
    let mut current_i = 0usize; // I(G_exp) so far
    for v in 1..n {
        g.add_edge(hub, v, nodes.dist(hub, v));
        let new_i = graph_interference(&Topology::from_graph(nodes.clone(), g.clone()));
        debug_assert!(new_i >= current_i);
        if new_i > current_i {
            current_i = new_i;
            hub = v;
            hubs.push(v);
        }
    }
    AExpResult {
        topology: Topology::from_graph(nodes, g),
        hubs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::exponential_chain;
    use rim_core::receiver::{graph_interference, interference_at};

    #[test]
    fn fast_matches_reference_on_chains_and_random_instances() {
        for n in [2usize, 5, 13, 40] {
            let c = exponential_chain(n);
            let fast = a_exp(&c);
            let slow = a_exp_reference(&c);
            assert_eq!(fast.hubs, slow.hubs, "n={n}");
            assert_eq!(
                fast.topology.edges(),
                slow.topology.edges(),
                "n={n}"
            );
        }
        let mut state = 11u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..10 {
            let n = 3 + (trial % 20);
            let h = HighwayInstance::new((0..n).map(|_| rnd()).collect());
            let fast = a_exp(&h);
            let slow = a_exp_reference(&h);
            assert_eq!(fast.hubs, slow.hubs, "trial={trial}");
            assert_eq!(fast.topology.edges(), slow.topology.edges(), "trial={trial}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let r = a_exp(&HighwayInstance::new(vec![]));
        assert_eq!(r.hubs.len(), 0);
        let r = a_exp(&HighwayInstance::new(vec![0.25]));
        assert_eq!(r.hubs, vec![0]);
        assert_eq!(r.topology.num_edges(), 0);
    }

    #[test]
    fn result_is_connected_tree() {
        for n in [2usize, 5, 17, 40] {
            let c = exponential_chain(n);
            let r = a_exp(&c);
            assert!(r.topology.is_forest());
            assert_eq!(r.topology.num_edges(), n - 1, "spanning tree");
            assert!(r.topology.preserves_connectivity_of(&c.udg()));
        }
    }

    #[test]
    fn interference_is_order_sqrt_n_on_exponential_chain() {
        // Theorem 5.1: I(G_exp) ∈ O(√n); quantitatively the proof gives
        // I such that n >= I²/2 − I/2 + 2, i.e. I <= √(2n) + 1.
        for n in [4usize, 9, 16, 25, 36, 64, 100] {
            let c = exponential_chain(n);
            let r = a_exp(&c);
            let i = graph_interference(&r.topology);
            let upper = (2.0 * n as f64).sqrt() + 1.0;
            assert!(
                (i as f64) <= upper,
                "n={n}: I={i} exceeds √(2n)+1 = {upper:.2}"
            );
            // And it beats the linear connection (n − 2) decisively.
            assert!(i < n - 2 || n < 9, "n={n}: I={i} not better than linear");
        }
    }

    #[test]
    fn leftmost_node_interfered_only_by_hubs() {
        // Only nodes with an edge to their right cover the leftmost node
        // (the hub property of Definition 5.1).
        let c = exponential_chain(30);
        let r = a_exp(&c);
        let hubs: std::collections::HashSet<usize> = r.hubs.iter().copied().collect();
        // Count coverage of node 0 and check each coverer is a hub.
        let t = &r.topology;
        let mut coverers = Vec::new();
        for u in 1..c.len() {
            if t.nodes().dist(u, 0) <= t.radius(u) {
                coverers.push(u);
            }
        }
        for &u in &coverers {
            assert!(hubs.contains(&u), "non-hub {u} covers the leftmost node");
        }
        assert_eq!(interference_at(t, 0), coverers.len());
    }

    #[test]
    fn successive_hubs_serve_growing_runs() {
        // Figure 8's structure: each hub (after the first two) connects
        // one more node to its right than its predecessor.
        let c = exponential_chain(50);
        let r = a_exp(&c);
        let runs: Vec<usize> = r
            .hubs
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect();
        for k in 2..runs.len() {
            assert_eq!(
                runs[k],
                runs[k - 1] + 1,
                "hub run lengths must grow by one: {runs:?}"
            );
        }
    }
}
