//! Lower bounds: Theorem 5.2 (`√n` for the exponential chain) and
//! Lemma 5.5 (`Ω(√γ)` for arbitrary highway instances).

use crate::critical::gamma;
use crate::instance::HighwayInstance;

/// Theorem 5.2: every connected topology on the exponential node chain
/// with `n` nodes has interference at least `√n`.
///
/// Proof sketch encoded here: with `H` hubs and `S` non-hubs, the
/// leftmost node sees `|H| − 1` interference (every hub covers it) and
/// the maximum degree lower-bounds interference, so
/// `n = |H| + |S| <= I·( I ) + …` forces `I >= √n`.
pub fn exponential_chain_lower_bound(n: usize) -> f64 {
    (n as f64).sqrt()
}

/// Lemma 5.5: a minimum-interference topology for a highway instance with
/// critical parameter `γ` has interference `Ω(√γ)`; the concrete
/// certificate from the proof (half the critical nodes form a virtual
/// exponential node chain, to which Theorem 5.2 applies) is `√(γ/2)`.
pub fn optimum_lower_bound(instance: &HighwayInstance) -> f64 {
    (gamma(instance) as f64 / 2.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a_exp::a_exp;
    use crate::exponential::exponential_chain;
    use rim_core::optimal::{min_interference_topology, SolverLimits};
    use rim_core::receiver::graph_interference;

    #[test]
    fn exact_optimum_respects_theorem_52_bound() {
        // On small exponential chains the provably-optimal topology must
        // sit at or above √n (integer interference: ceil).
        for n in [4usize, 6, 8, 9] {
            let c = exponential_chain(n);
            let opt = min_interference_topology(&c.node_set(), 1.0, SolverLimits::default());
            assert!(opt.optimal, "solver must finish for n={n}");
            assert!(
                (opt.interference as f64) >= exponential_chain_lower_bound(n).floor(),
                "n={n}: opt={} below lower bound {}",
                opt.interference,
                exponential_chain_lower_bound(n)
            );
        }
    }

    #[test]
    fn a_exp_sits_between_the_bounds() {
        // Theorem 5.1 + 5.2: √n <= I(A_exp) <= √(2n) + 1 — the sandwich
        // that makes A_exp asymptotically optimal.
        for n in [9usize, 25, 49, 100, 225] {
            let c = exponential_chain(n);
            let i = graph_interference(&a_exp(&c).topology) as f64;
            let lo = exponential_chain_lower_bound(n);
            let hi = (2.0 * n as f64).sqrt() + 1.0;
            assert!(i >= lo.floor(), "n={n}: I={i} below ⌊√n⌋={lo}");
            assert!(i <= hi, "n={n}: I={i} above √(2n)+1={hi}");
        }
    }

    #[test]
    fn gamma_certificate_never_exceeds_exact_optimum() {
        // Lemma 5.5's certificate must be a valid lower bound: verify
        // against the exact solver on assorted small instances.
        let cases: Vec<Vec<f64>> = vec![
            vec![0.0, 0.25, 0.5, 0.75, 1.0],
            vec![0.0, 0.0625, 0.1875, 0.4375, 0.9375], // exponential-ish
            vec![0.0, 0.01, 0.5, 0.51, 1.0, 1.01],
            vec![0.0, 0.3, 0.35, 0.4, 1.3, 2.2],
        ];
        for xs in cases {
            let h = HighwayInstance::new(xs.clone());
            let opt = min_interference_topology(&h.node_set(), 1.0, SolverLimits::default());
            assert!(opt.optimal);
            let cert = optimum_lower_bound(&h);
            assert!(
                (opt.interference as f64) >= cert.floor() - 1e-9,
                "instance {xs:?}: opt={} certificate={cert}",
                opt.interference
            );
        }
    }
}
