//! Algorithm `A_apx` — the hybrid `O(Δ^{1/4})`-approximation
//! (Section 5.3, Theorem 5.6).
//!
//! `A_apx` detects whether an instance is inherently high-interference by
//! comparing `γ` (the linear-connection interference, Definition 5.2)
//! with `√Δ`:
//!
//! * `γ > √Δ` — the instance hides fragmented exponential chains; apply
//!   [`a_gen`](crate::a_gen) for `O(√Δ)` interference, which is within
//!   `O(Δ^{1/4})` of the `Ω(√γ) ⊇ Ω(Δ^{1/4})` lower bound (Lemma 5.5);
//! * `γ <= √Δ` — connect linearly for interference exactly `γ`, again
//!   within `O(Δ^{1/4})` of `Ω(√γ)`.
//!
//! The paper assumes a connected instance; we apply the rule
//! independently to every UDG component (maximal runs of gaps `<= 1`),
//! which preserves connectivity on arbitrary inputs and coincides with
//! the paper on connected ones.

use crate::a_gen::a_gen_with_spacing;
use crate::critical::gamma;
use crate::instance::HighwayInstance;
use rim_graph::AdjacencyList;
use rim_udg::Topology;

/// Which branch `A_apx` took (per component; see [`AApxResult`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApxChoice {
    /// `γ <= √Δ`: nodes were connected linearly.
    Linear,
    /// `γ > √Δ`: `A_gen` was applied.
    Gen,
}

/// Result of running [`a_apx`].
#[derive(Debug, Clone)]
pub struct AApxResult {
    /// The constructed topology.
    pub topology: Topology,
    /// Per-component records `(start, end, gamma, delta, choice)` over
    /// index ranges of the sorted instance.
    pub components: Vec<ComponentRecord>,
}

/// Decision record for one UDG component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentRecord {
    /// First node index of the component.
    pub start: usize,
    /// One past the last node index.
    pub end: usize,
    /// `γ` of the component.
    pub gamma: usize,
    /// `Δ` of the component.
    pub delta: usize,
    /// The branch taken.
    pub choice: ApxChoice,
}

impl AApxResult {
    /// The branch taken, when the instance is a single component
    /// (convenience for the common case; `None` for 0 or 2+ components).
    pub fn single_choice(&self) -> Option<ApxChoice> {
        match self.components.as_slice() {
            [one] => Some(one.choice),
            _ => None,
        }
    }
}

/// Runs `A_apx` on a highway instance.
pub fn a_apx(instance: &HighwayInstance) -> AApxResult {
    let n = instance.len();
    let nodes = instance.node_set();
    let mut g = AdjacencyList::new(n);
    let mut components = Vec::new();

    // Maximal runs of consecutive gaps <= 1 are exactly the UDG components
    // of a 1-D instance.
    let mut start = 0usize;
    for i in 0..n.max(1) {
        let is_break = i + 1 >= n || instance.gap(i) > 1.0;
        if !is_break {
            continue;
        }
        let end = i + 1;
        if n == 0 {
            break;
        }
        let sub = HighwayInstance::new(instance.positions()[start..end].to_vec());
        let sub_gamma = gamma(&sub);
        let sub_delta = sub.max_degree();
        let choice = if (sub_gamma as f64) > (sub_delta as f64).sqrt() {
            ApxChoice::Gen
        } else {
            ApxChoice::Linear
        };
        match choice {
            ApxChoice::Linear => {
                for j in (start + 1)..end {
                    g.add_edge(j - 1, j, instance.gap(j - 1));
                }
            }
            ApxChoice::Gen => {
                let spacing = (sub_delta as f64).sqrt().ceil().max(1.0) as usize;
                let r = a_gen_with_spacing(&sub, spacing);
                for e in r.topology.edges() {
                    g.add_edge(start + e.u, start + e.v, e.weight);
                }
            }
        }
        components.push(ComponentRecord {
            start,
            end,
            gamma: sub_gamma,
            delta: sub_delta,
            choice,
        });
        start = end;
    }

    AApxResult {
        topology: Topology::from_graph(nodes, g),
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::exponential_chain;
    use rim_core::optimal::{min_interference_topology, SolverLimits};
    use rim_core::receiver::graph_interference;

    #[test]
    fn uniform_instance_goes_linear() {
        let h = HighwayInstance::new((0..40).map(|i| i as f64 * 0.1).collect());
        let r = a_apx(&h);
        assert_eq!(r.single_choice(), Some(ApxChoice::Linear));
        // Linear connection of a uniform chain: constant interference —
        // while A_gen would pay Θ(√Δ) here (the motivating example of
        // Section 5.3).
        assert_eq!(graph_interference(&r.topology), 2);
        assert!(r.topology.preserves_connectivity_of(&h.udg()));
    }

    #[test]
    fn exponential_chain_goes_gen() {
        let c = exponential_chain(40);
        let r = a_apx(&c);
        assert_eq!(r.single_choice(), Some(ApxChoice::Gen));
        let i = graph_interference(&r.topology);
        assert!(i < 38, "must beat linear (γ = 38), got {i}");
        assert!(r.topology.preserves_connectivity_of(&c.udg()));
    }

    #[test]
    fn approximation_ratio_on_small_instances() {
        // Theorem 5.6 asymptotically bounds the ratio by O(Δ^{1/4}); on
        // these small instances we check a concrete small multiple.
        let cases: Vec<Vec<f64>> = vec![
            vec![0.0, 0.3, 0.6, 0.9, 1.2, 1.5],
            vec![0.0, 0.01, 0.02, 0.5, 0.51, 0.99],
            vec![0.0, 0.0625, 0.1875, 0.4375, 0.9375],
            vec![0.0, 0.1, 0.2, 0.8, 1.6, 2.4],
            vec![0.0, 0.5, 0.55, 0.6, 1.1, 1.15],
        ];
        for xs in cases {
            let h = HighwayInstance::new(xs.clone());
            let apx = graph_interference(&a_apx(&h).topology);
            let opt = min_interference_topology(&h.node_set(), 1.0, SolverLimits::default());
            assert!(opt.optimal);
            let delta = h.max_degree() as f64;
            let bound = (opt.interference as f64) * 3.0 * delta.powf(0.25) + 2.0;
            assert!(
                (apx as f64) <= bound,
                "instance {xs:?}: apx={apx} opt={} Δ={delta}",
                opt.interference
            );
            // A_apx must itself be a valid topology-control output.
            assert!(a_apx(&h).topology.preserves_connectivity_of(&h.udg()));
        }
    }

    #[test]
    fn per_component_decisions() {
        // Component 1: uniform (linear); component 2: exponential-ish
        // (dense pack + doubling gaps drive γ above √Δ).
        let mut xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let base = 5.0;
        let chain = exponential_chain(24);
        xs.extend(chain.positions().iter().map(|x| base + x));
        let h = HighwayInstance::new(xs);
        let r = a_apx(&h);
        assert_eq!(r.components.len(), 2);
        assert_eq!(r.components[0].choice, ApxChoice::Linear);
        assert_eq!(r.components[1].choice, ApxChoice::Gen);
        assert!(r.topology.preserves_connectivity_of(&h.udg()));
    }

    #[test]
    fn empty_and_singleton() {
        let r = a_apx(&HighwayInstance::new(vec![]));
        assert!(r.components.is_empty());
        let r = a_apx(&HighwayInstance::new(vec![2.0]));
        assert_eq!(r.components.len(), 1);
        assert_eq!(r.topology.num_edges(), 0);
    }
}
