//! Critical node sets (Definition 5.2) and the instance parameter `γ`.
//!
//! For the linearly connected graph `G_lin`, the critical set of a node
//! `v` is
//!
//! ```text
//! C_v = { u ≠ v : ∃ {u,w} ∈ E_lin with |uw| >= |uv| }
//! ```
//!
//! — exactly the nodes that interfere with `v` when the instance is
//! connected linearly (a node's linear radius is its longer adjacent
//! gap). Consequently `γ = max_v |C_v| = I(G_lin)`. `A_apx` uses `γ`
//! both as the high-interference detector and, via Lemma 5.5, as an
//! `Ω(√γ)` lower bound on the optimum.

use crate::instance::HighwayInstance;

/// Linear radius of every node: the larger of its two adjacent gaps
/// (single-neighbor boundary nodes take their only gap; a singleton
/// instance has radius 0).
pub fn linear_radii(instance: &HighwayInstance) -> Vec<f64> {
    let n = instance.len();
    (0..n)
        .map(|i| {
            let left = if i > 0 { instance.gap(i - 1) } else { 0.0 };
            let right = if i + 1 < n { instance.gap(i) } else { 0.0 };
            left.max(right)
        })
        .collect()
}

/// The critical node set `C_v` for every `v` (as index lists).
pub fn critical_sets(instance: &HighwayInstance) -> Vec<Vec<usize>> {
    let n = instance.len();
    let radii = linear_radii(instance);
    (0..n)
        .map(|v| {
            (0..n)
                .filter(|&u| u != v && (instance.x(u) - instance.x(v)).abs() <= radii[u])
                .collect()
        })
        .collect()
}

/// Sizes `|C_v|` for every node, computed without materializing the sets.
pub fn critical_counts(instance: &HighwayInstance) -> Vec<usize> {
    let n = instance.len();
    let radii = linear_radii(instance);
    let mut counts = vec![0usize; n];
    for u in 0..n {
        for (v, c) in counts.iter_mut().enumerate() {
            if u != v && (instance.x(u) - instance.x(v)).abs() <= radii[u] {
                *c += 1;
            }
        }
    }
    counts
}

/// `γ = max_v |C_v|` — the maximum number of critical nodes (0 for
/// instances with fewer than two nodes).
///
/// ```
/// use rim_highway::{exponential_chain, gamma, HighwayInstance};
///
/// // Uniform chains have constant γ …
/// let uniform = HighwayInstance::new((0..10).map(|i| i as f64 * 0.1).collect());
/// assert_eq!(gamma(&uniform), 2);
/// // … while the exponential chain drives it to n − 2.
/// assert_eq!(gamma(&exponential_chain(10)), 8);
/// ```
pub fn gamma(instance: &HighwayInstance) -> usize {
    critical_counts(instance).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::exponential_chain;
    use rim_core::receiver::graph_interference;

    #[test]
    fn gamma_equals_linear_interference() {
        // γ is by construction the interference of G_lin; cross-check
        // against the receiver-centric measure on feasible instances.
        for xs in [
            vec![0.0, 0.5, 1.0, 1.5],
            vec![0.0, 0.1, 0.9, 1.0, 1.05],
            vec![0.0, 0.25, 0.26, 0.9, 1.6, 1.61],
        ] {
            let h = HighwayInstance::new(xs);
            assert_eq!(gamma(&h), graph_interference(&h.linear_topology()));
        }
    }

    #[test]
    fn gamma_of_exponential_chain_is_n_minus_2() {
        for n in [4usize, 8, 20] {
            assert_eq!(gamma(&exponential_chain(n)), n - 2, "n={n}");
        }
    }

    #[test]
    fn gamma_of_uniform_chain_is_two() {
        let h = HighwayInstance::new((0..30).map(|i| i as f64 * 0.3).collect());
        assert_eq!(gamma(&h), 2);
    }

    #[test]
    fn critical_sets_match_counts() {
        let h = HighwayInstance::new(vec![0.0, 0.1, 0.3, 0.7, 1.5]);
        let sets = critical_sets(&h);
        let counts = critical_counts(&h);
        for (s, &c) in sets.iter().zip(&counts) {
            assert_eq!(s.len(), c);
        }
    }

    #[test]
    fn boundary_nodes_use_single_gap() {
        let h = HighwayInstance::new(vec![0.0, 1.0, 1.25]);
        let r = linear_radii(&h);
        assert_eq!(r, vec![1.0, 1.0, 0.25]);
    }

    #[test]
    fn tiny_instances() {
        assert_eq!(gamma(&HighwayInstance::new(vec![])), 0);
        assert_eq!(gamma(&HighwayInstance::new(vec![1.0])), 0);
        assert_eq!(gamma(&HighwayInstance::new(vec![0.0, 0.4])), 1);
    }
}
