//! Edge cases of the shared executor: empty input, single item, more
//! threads/chunks than items, and wildly unequal per-item cost. Both
//! primitives must preserve input order and terminate (no deadlock) in
//! every configuration; the property layer drives the shapes through
//! `rim_rng::prop`.

use rim_par::{num_threads, par_map_ranges, parallel_map};
use rim_rng::prop::check;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};

#[test]
fn empty_input_terminates_immediately() {
    assert_eq!(par_map_ranges(0, 8, |r| r.collect::<Vec<usize>>()), vec![vec![]]);
    assert_eq!(parallel_map(Vec::<u32>::new(), |x| x * 2), Vec::<u32>::new());
}

#[test]
fn single_item_with_many_workers() {
    // chunks/threads far beyond the item count must clamp, not hang.
    assert_eq!(par_map_ranges(1, 64, |r| r.sum::<usize>()), vec![0]);
    assert_eq!(parallel_map(vec![41u64], |x| x + 1), vec![42]);
}

#[test]
fn more_chunks_than_items_covers_each_index_once() {
    for n in 1..=5usize {
        let ranges = par_map_ranges(n, 1000, |r| r.collect::<Vec<_>>());
        let flat: Vec<usize> = ranges.concat();
        assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n}");
    }
}

/// Burns CPU proportionally to `cost` and returns a value derived from
/// the input, so reordered results cannot cancel out.
fn spin(seed: u64, cost: u64) -> u64 {
    let mut acc = seed;
    for i in 0..cost {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

#[test]
fn prop_par_map_ranges_matches_sequential_under_any_split() {
    check(
        "par_map_ranges_matches_sequential_under_any_split",
        96,
        |rng: &mut SmallRng| {
            let n = rng.gen_range(0usize..80);
            let chunks = rng.gen_range(0usize..96); // 0 exercises the clamp
            (n, chunks)
        },
        |&(n, chunks)| {
            let flat: Vec<u64> =
                par_map_ranges(n, chunks, |r| r.map(|i| spin(i as u64, 3)).collect::<Vec<_>>())
                    .concat();
            let want: Vec<u64> = (0..n).map(|i| spin(i as u64, 3)).collect();
            prop_ensure_eq!(flat, want);
            Ok(())
        },
    );
}

#[test]
fn prop_parallel_map_preserves_order_under_unequal_cost() {
    check(
        "parallel_map_preserves_order_under_unequal_cost",
        48,
        |rng: &mut SmallRng| {
            let n = rng.gen_range(1usize..64);
            // A few items cost thousands of times more than the rest, so
            // fast workers finish whole stretches while one worker is
            // stuck — the stress shape for order preservation.
            (0..n)
                .map(|_| if rng.gen_range(0u32..8) == 0 { rng.gen_range(20_000u64..100_000) } else { rng.gen_range(1u64..20) })
                .collect::<Vec<u64>>()
        },
        |costs| {
            let items: Vec<(usize, u64)> = costs.iter().copied().enumerate().collect();
            let got = parallel_map(items.clone(), |(i, cost)| (i, spin(i as u64, cost)));
            let want: Vec<(usize, u64)> =
                items.iter().map(|&(i, cost)| (i, spin(i as u64, cost))).collect();
            prop_ensure_eq!(got, want);
            Ok(())
        },
    );
}

#[test]
fn prop_ranges_partition_even_when_costs_differ() {
    check(
        "ranges_partition_even_when_costs_differ",
        64,
        |rng: &mut SmallRng| {
            (rng.gen_range(1usize..200), rng.gen_range(1usize..16))
        },
        |&(n, chunks)| {
            // Range i sleeps-spins proportionally to its position so the
            // first and last workers finish far apart; results must still
            // arrive in range order and partition 0..n exactly.
            let ranges = par_map_ranges(n, chunks, |r| {
                spin(r.start as u64, (r.start as u64 % 7) * 2_000);
                r
            });
            let mut next = 0usize;
            for r in &ranges {
                prop_ensure_eq!(r.start, next);
                prop_ensure!(r.end >= r.start, "empty or reversed range");
                next = r.end;
            }
            prop_ensure_eq!(next, n);
            Ok(())
        },
    );
}

#[test]
fn num_threads_is_sane() {
    let t = num_threads();
    assert!((1..=1024).contains(&t), "num_threads() = {t}");
}
