//! `rim-par` — the workspace's shared data-parallel executor.
//!
//! The workspace is hermetic — no rayon — so every layer that fans work
//! out over threads shares the two primitives in this crate instead of
//! growing its own pool:
//!
//! * [`par_map_ranges`] — the chunked scoped-thread *scatter executor*:
//!   it carves `0..n` into contiguous ranges, runs one scoped thread per
//!   range, and returns the per-range results in order. The interference
//!   kernels (`rim_core::receiver`) and the topology-construction
//!   pipeline (`rim_topology_control`) both scatter over it; scoped
//!   threads let closures borrow topologies and spatial indices by
//!   reference, so parallelism adds no copies.
//! * [`parallel_map`] — an order-preserving map over heterogeneous work
//!   items with *dynamic* self-scheduling: workers claim items off an
//!   atomic cursor, so a slow item (a long simulation, a big sweep
//!   point) never idles the other workers the way a static split would.
//!   This replaces the Mutex-queue worker pool `rim_bench::sweep` used
//!   to carry; the only locks left are uncontended per-slot ones.
//! * [`par_scatter_u32`] — a sharded-accumulator counting kernel: each
//!   worker scatters increments into its own private `u32` buffer and
//!   the buffers are summed at the barrier, so counting kernels (the
//!   interference engines) never false-share a common output vector.
//!
//! Determinism contract: both primitives return results in input order,
//! and neither changes *what* is computed — only where. Callers that
//! need bit-identical output across thread counts (the topology
//! pipeline's invariance tests) get it for free as long as their
//! per-item closures are pure.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads worth spawning on this machine; at least 1.
///
/// `std::thread::available_parallelism` fails only in exotic sandboxes,
/// where falling back to sequential execution is the right behaviour.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Splits `0..n` into `chunks` contiguous ranges (the first `n % chunks`
/// ranges are one element longer) and runs `work` on each range in its
/// own scoped thread, returning results in range order.
///
/// With `chunks <= 1` (or `n == 0`) the work runs inline on the calling
/// thread — the sequential path stays allocation- and thread-free. A
/// panic in any worker is resumed on the caller, as a plain sequential
/// loop would.
pub fn par_map_ranges<R, F>(n: usize, chunks: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunks = chunks.clamp(1, n.max(1));
    if chunks == 1 {
        return vec![work(0..n)];
    }
    rim_obs::counter_add("par.scatter_chunks", chunks as u64);
    let base = n / chunks;
    let extra = n % chunks;
    let bounds: Vec<Range<usize>> = (0..chunks)
        .scan(0usize, |lo, i| {
            let len = base + usize::from(i < extra);
            let r = *lo..*lo + len;
            *lo += len;
            Some(r)
        })
        .collect();
    let workref = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|r| s.spawn(move || workref(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Runs a counting *scatter* in parallel with per-worker accumulators:
/// `scatter(range, buf)` must add each of range-item `i`'s contributions
/// into `buf[target]` for targets in `0..out_len`, and the per-worker
/// buffers are merged (element-wise `u32` sum) after the barrier.
///
/// This is the sharded alternative to handing every worker the same
/// output vector: each worker owns a private zeroed buffer, so there is
/// no false sharing on hot output cache lines and no synchronization in
/// the scatter loop.
///
/// # Determinism
///
/// The output is **thread-count-invariant by construction**: every
/// worker contributes a disjoint input range, each contribution is a
/// non-negative integer increment, and integer addition is associative
/// and commutative — so the merged totals are bit-identical for any
/// `chunks`, including the sequential `chunks <= 1` path which skips the
/// shard allocation entirely. (Callers must not rely on *visit order*
/// inside `scatter`; only additive writes keep the invariance.)
///
/// Counts saturate nowhere: callers guarantee each target receives fewer
/// than `u32::MAX` total increments (receiver-centric interference is
/// bounded by `n - 1 < u32::MAX` in this workspace — grids refuse more
/// than `u32::MAX` points).
pub fn par_scatter_u32<F>(out_len: usize, n: usize, chunks: usize, scatter: F) -> Vec<u32>
where
    F: Fn(Range<usize>, &mut [u32]) + Sync,
{
    let chunks = chunks.clamp(1, n.max(1));
    if chunks == 1 {
        let mut out = vec![0u32; out_len];
        scatter(0..n, &mut out);
        return out;
    }
    rim_obs::counter_add("par.sharded_scatters", 1);
    let shards = par_map_ranges(n, chunks, |r| {
        let mut buf = vec![0u32; out_len];
        scatter(r, &mut buf);
        buf
    });
    // Merge in range order (order is irrelevant to the sums, but keeping
    // it fixed makes the reduction trivially auditable).
    let mut out = vec![0u32; out_len];
    for shard in shards {
        for (o, s) in out.iter_mut().zip(shard) {
            *o += s;
        }
    }
    out
}

/// Recovers a lock even when a sibling worker panicked: the enclosing
/// scope re-raises the panic anyway, so the inner value is safe to use.
fn relock<T>(r: std::sync::LockResult<T>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Applies `f` to every item of `params` in parallel, preserving order.
///
/// Work is self-scheduled: each worker claims the next unclaimed index
/// off an atomic cursor, so heterogeneous item costs balance themselves
/// (no static split, no central queue lock — input and output slots each
/// sit behind their own uncontended `Mutex`). `f` must be `Sync` (it is
/// shared across threads) and items are consumed by value. Panics in
/// workers propagate to the caller.
// `i >= n` is checked before indexing, and a missing output slot only
// re-raises a worker panic the scope already propagated.
// rim-lint: allow(panic-freedom)
pub fn parallel_map<P, R, F>(params: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = num_threads().min(n);
    if threads <= 1 {
        return params.into_iter().map(f).collect();
    }
    let input: Vec<Mutex<Option<P>>> = params.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let output: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut claimed = 0u64;
                loop {
                    // Relaxed: the cursor is a pure claim ticket; the Mutex
                    // around each slot publishes the claimed payload.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    claimed += 1;
                    let item = relock(input[i].lock()).take();
                    if let Some(p) = item {
                        let r = f(p);
                        *relock(output[i].lock()) = Some(r);
                    }
                }
                // Per-worker load: the spread of this histogram is the
                // balance signal for the dynamic self-scheduler. Every
                // worker also exits through exactly one wasted cursor
                // claim (the `i >= n` overshoot), so the counter is a
                // proxy for end-of-queue cursor contention.
                rim_obs::record("par.tasks_per_worker", claimed);
                rim_obs::counter_add("par.cursor_overshoot", 1);
            });
        }
    });
    output
        .into_iter()
        // Each index is claimed and written exactly once; a missing slot
        // means a worker panicked, which the scope above already
        // re-raised. rim-lint: allow(no-unwrap-in-lib)
        .map(|m| relock(m.into_inner()).expect("worker failed to produce a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_range_exactly_once() {
        for n in [0usize, 1, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = par_map_ranges(n, chunks, |r| r);
                let mut seen = vec![false; n];
                for r in ranges {
                    for i in r {
                        assert!(!seen[i], "n={n} chunks={chunks} i={i} visited twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} chunks={chunks}");
            }
        }
    }

    #[test]
    fn results_arrive_in_range_order() {
        let sums = par_map_ranges(100, 4, |r| r.sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        assert_eq!(sums, vec![300, 925, 1550, 2175]);
    }

    #[test]
    fn sequential_fallback_matches() {
        let seq = par_map_ranges(10, 1, |r| r.collect::<Vec<_>>());
        assert_eq!(seq, vec![(0..10).collect::<Vec<_>>()]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn map_preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn map_single_item() {
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn scatter_u32_is_thread_count_invariant() {
        // A deterministic scatter: item i increments (i*i + 3) % out_len
        // and i % out_len. Totals must be identical for every chunking.
        let out_len = 37;
        let n = 500;
        let run = |chunks| {
            par_scatter_u32(out_len, n, chunks, |range, buf| {
                for i in range {
                    buf[(i * i + 3) % out_len] += 1;
                    buf[i % out_len] += 1;
                }
            })
        };
        let reference = run(1);
        assert_eq!(reference.iter().map(|&c| c as usize).sum::<usize>(), 2 * n);
        for chunks in 2..=8 {
            assert_eq!(run(chunks), reference, "chunks={chunks}");
        }
    }

    #[test]
    fn scatter_u32_handles_empty_and_degenerate() {
        assert_eq!(par_scatter_u32(4, 0, 3, |_, _| {}), vec![0; 4]);
        assert_eq!(par_scatter_u32(0, 10, 3, |_, _| {}), Vec::<u32>::new());
        let one = par_scatter_u32(2, 1, 200, |r, buf| {
            for _ in r {
                buf[1] += 7;
            }
        });
        assert_eq!(one, vec![0, 7]);
    }

    #[test]
    fn map_balances_heterogeneous_work() {
        // One huge item among many tiny ones: self-scheduling must still
        // return every result, in order.
        let out = parallel_map((1..=64u64).collect(), |n| {
            let reps = if n == 1 { 100_000 } else { 10 };
            (0..reps).map(|i| i % n).sum::<u64>()
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], (0..10).map(|i| i % 2).sum::<u64>());
    }
}
