//! Experiment result records and CSV export.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One measured row of an experiment: a named experiment id, the swept
/// parameter, and the measured columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Experiment id (e.g. `"F8"` for Figure 8).
    pub experiment: &'static str,
    /// Swept parameter name (e.g. `"n"`).
    pub param: &'static str,
    /// Swept parameter value.
    pub value: f64,
    /// Measured columns as `(name, value)` pairs.
    pub columns: Vec<(&'static str, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(experiment: &'static str, param: &'static str, value: f64) -> Self {
        Row {
            experiment,
            param,
            value,
            columns: Vec::new(),
        }
    }

    /// Appends a measured column (builder style).
    #[must_use]
    pub fn col(mut self, name: &'static str, value: f64) -> Self {
        self.columns.push((name, value));
        self
    }

    /// Fetches a column by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.columns
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Renders rows as an aligned text table (one table per experiment id,
/// rows assumed homogeneous).
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let head = &rows[0];
    let _ = write!(out, "{:>12}", head.param);
    for (name, _) in &head.columns {
        let _ = write!(out, " {name:>14}");
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "{:>12.4}", row.value);
        for &(_, v) in &row.columns {
            let _ = write!(out, " {v:>14.4}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes rows as CSV (`experiment,param,value,col1,col2,…` with a
/// header derived from the first row).
pub fn write_csv(path: &Path, rows: &[Row]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    if let Some(head) = rows.first() {
        write!(f, "experiment,{}", head.param)?;
        for (name, _) in &head.columns {
            write!(f, ",{name}")?;
        }
        writeln!(f)?;
    }
    for row in rows {
        write!(f, "{},{}", row.experiment, row.value)?;
        for &(_, v) in &row.columns {
            write!(f, ",{v}")?;
        }
        writeln!(f)?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_and_lookup() {
        let r = Row::new("F8", "n", 64.0).col("a_exp", 11.0).col("sqrt_n", 8.0);
        assert_eq!(r.get("a_exp"), Some(11.0));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn table_rendering_contains_all_columns() {
        let rows = vec![
            Row::new("X", "n", 1.0).col("y", 2.0),
            Row::new("X", "n", 2.0).col("y", 4.0),
        ];
        let s = render_table(&rows);
        assert!(s.contains('y'));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("rim_bench_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let rows = vec![Row::new("X", "n", 1.0).col("y", 2.0)];
        write_csv(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("experiment,n,y"));
    }
}
