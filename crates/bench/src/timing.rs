//! Minimal benchmark timing harness (the in-repo `criterion`
//! replacement).
//!
//! Each `[[bench]]` target (with `harness = false`) builds a [`Harness`]
//! named after its benchmark group, registers cases with [`Harness::bench`],
//! and calls [`Harness::finish`]. A case runs `WARMUP_ITERS` untimed
//! warmup iterations followed by `TIMED_ITERS` timed ones; mean/p50/p95
//! per-iteration wall time is printed as a table and appended as JSONL
//! under `results/` so the `BENCH_*.json` trajectory stays machine
//! comparable across PRs.
//!
//! Bench ids keep the `group/function/param` shape Criterion used
//! (e.g. `interference_vector/grid/500`), so historical names remain
//! stable. Structured dimensions ride alongside the id string:
//! [`CaseMeta`] attaches the instance size `n` and the engine name as
//! first-class JSONL fields so downstream tooling filters records
//! without parsing bench names, and every record carries the process
//! peak-RSS watermark ([`rim_obs::peak_rss_kb`]) plus its delta across
//! the case — the witness that a tier did not blow the memory budget.

use std::io::Write as _;
use std::time::Instant;

/// Untimed shake-out iterations before measurement.
pub const WARMUP_ITERS: u32 = 3;
/// Timed iterations per case.
pub const TIMED_ITERS: u32 = 10;

/// Structured dimensions of a benchmark case, emitted as first-class
/// JSONL fields next to the flat `bench` id string.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CaseMeta {
    /// Instance size (node count) the case ran at.
    pub n: Option<u64>,
    /// Engine/kernel name the case exercised.
    pub engine: Option<String>,
}

impl CaseMeta {
    /// Meta with just an instance size.
    pub fn sized(n: u64) -> Self {
        CaseMeta {
            n: Some(n),
            engine: None,
        }
    }

    /// Meta with an instance size and an engine name.
    pub fn engine_sized(engine: &str, n: u64) -> Self {
        CaseMeta {
            n: Some(n),
            engine: Some(engine.to_string()),
        }
    }
}

/// Measured statistics of one benchmark case (per-iteration times).
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Full case id, `group/rest`.
    pub id: String,
    /// Structured dimensions (instance size, engine name).
    pub meta: CaseMeta,
    /// Number of timed iterations.
    pub iters: u32,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration time in nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile per-iteration time in nanoseconds.
    pub p95_ns: f64,
    /// Process peak RSS in kB after the case ran (`None` off Linux).
    pub peak_rss_kb: Option<u64>,
    /// Peak-RSS growth in kB attributable to this case (watermark delta
    /// across warmup + timed iterations; `None` off Linux).
    pub peak_rss_delta_kb: Option<u64>,
    /// Observability counter deltas accumulated over warmup + timed
    /// iterations (only counters that moved), name-sorted.
    pub counters: Vec<(String, u64)>,
}

/// Nearest-rank percentile of an ascending-sorted sample; `q` in `[0, 1]`.
fn percentile(sorted_ns: &[f64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

/// Times one closure: `warmup` untimed runs, then `iters` timed runs.
fn measure<R>(warmup: u32, iters: u32, mut f: impl FnMut() -> R) -> (f64, f64, f64) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(iters.max(1) as usize);
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_unstable_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (mean, percentile(&samples, 0.50), percentile(&samples, 0.95))
}

/// Renders one case as a JSONL record. Ids are plain ASCII bench names;
/// quotes/backslashes are escaped anyway so output is always valid JSON.
fn jsonl_record(group: &str, r: &CaseResult) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut line = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\"",
        esc(group),
        esc(&r.id),
    );
    if let Some(n) = r.meta.n {
        line.push_str(&format!(",\"n\":{n}"));
    }
    if let Some(engine) = &r.meta.engine {
        line.push_str(&format!(",\"engine\":\"{}\"", esc(engine)));
    }
    line.push_str(&format!(
        ",\"iters\":{},\"mean_ns\":{:.1},\"p50_ns\":{:.1},\"p95_ns\":{:.1}",
        r.iters, r.mean_ns, r.p50_ns, r.p95_ns
    ));
    if let Some(kb) = r.peak_rss_kb {
        line.push_str(&format!(",\"peak_rss_kb\":{kb}"));
    }
    if let Some(kb) = r.peak_rss_delta_kb {
        line.push_str(&format!(",\"peak_rss_delta_kb\":{kb}"));
    }
    if !r.counters.is_empty() {
        line.push_str(",\"counters\":{");
        for (i, (name, value)) in r.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{value}", esc(name)));
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// A benchmark group: accumulates case results, then reports.
pub struct Harness {
    group: String,
    results: Vec<CaseResult>,
}

impl Harness {
    /// Opens a group; `group` conventionally matches the historical
    /// Criterion group name of the bench target.
    pub fn new(group: &str) -> Self {
        // Benchmarks always run with the recorder enabled so each case
        // can report what the measured code actually did (disk queries,
        // scatter chunks, …) next to how long it took.
        rim_obs::install_recorder();
        println!("benchmark group: {group}");
        Harness {
            group: group.to_string(),
            results: Vec::new(),
        }
    }

    /// Measures one case with the default iteration counts. `id` is the
    /// part after the group (e.g. `"grid/500"`); the stored id is
    /// `group/id`.
    pub fn bench<R>(&mut self, id: &str, f: impl FnMut() -> R) {
        self.bench_scaled(id, CaseMeta::default(), WARMUP_ITERS, TIMED_ITERS, f);
    }

    /// Measures one case with structured dimensions attached and the
    /// default iteration counts.
    pub fn bench_with<R>(&mut self, id: &str, meta: CaseMeta, f: impl FnMut() -> R) {
        self.bench_scaled(id, meta, WARMUP_ITERS, TIMED_ITERS, f);
    }

    /// Measures one case with explicit warmup/timed iteration counts —
    /// the entry point for the 10⁶–10⁷-node tiers, where the default
    /// 13 total runs would take minutes per case. `iters` is clamped to
    /// at least 1.
    pub fn bench_scaled<R>(
        &mut self,
        id: &str,
        meta: CaseMeta,
        warmup: u32,
        iters: u32,
        f: impl FnMut() -> R,
    ) {
        let before = rim_obs::global().map(|r| r.counters()).unwrap_or_default();
        let rss_before = rim_obs::peak_rss_kb();
        let (mean_ns, p50_ns, p95_ns) = measure(warmup, iters, f);
        let rss_after = rim_obs::peak_rss_kb();
        let after = rim_obs::global().map(|r| r.counters()).unwrap_or_default();
        let counters: Vec<(String, u64)> = after
            .into_iter()
            .filter_map(|(name, v)| {
                let delta = v - before.get(&name).copied().unwrap_or(0);
                (delta > 0).then_some((name, delta))
            })
            .collect();
        let full = format!("{}/{}", self.group, id);
        println!(
            "  {full:<44} mean {:>12}  p50 {:>12}  p95 {:>12}",
            fmt_ns(mean_ns),
            fmt_ns(p50_ns),
            fmt_ns(p95_ns)
        );
        self.results.push(CaseResult {
            id: full,
            meta,
            iters: iters.max(1),
            mean_ns,
            p50_ns,
            p95_ns,
            peak_rss_kb: rss_after,
            peak_rss_delta_kb: match (rss_before, rss_after) {
                (Some(b), Some(a)) => Some(a.saturating_sub(b)),
                _ => None,
            },
            counters,
        });
    }

    /// Finishes the group: appends JSONL under `results/` (best effort —
    /// timing output must not fail the bench when the directory is
    /// read-only) and returns the results for callers that post-process.
    pub fn finish(self) -> Vec<CaseResult> {
        let dir = std::path::Path::new("results");
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("bench_{}.jsonl", self.group.replace('/', "_")));
            let mut f = std::io::BufWriter::new(
                std::fs::OpenOptions::new().create(true).append(true).open(&path)?,
            );
            for r in &self.results {
                writeln!(f, "{}", jsonl_record(&self.group, r))?;
            }
            f.flush()
        };
        if let Err(e) = write() {
            eprintln!("warning: could not write bench JSONL: {e}");
        }
        self.results
    }
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_result(id: &str) -> CaseResult {
        CaseResult {
            id: id.into(),
            meta: CaseMeta::default(),
            iters: 10,
            mean_ns: 1234.5,
            p50_ns: 1200.0,
            p95_ns: 2000.0,
            peak_rss_kb: None,
            peak_rss_delta_kb: None,
            counters: Vec::new(),
        }
    }

    #[test]
    fn percentiles_of_known_sample() {
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 10.0);
        assert_eq!(percentile(&xs, 0.5), 6.0); // nearest rank of 4.5 -> idx 5
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn measure_returns_ordered_stats() {
        let mut x = 0u64;
        let (mean, p50, p95) = measure(WARMUP_ITERS, TIMED_ITERS, || {
            for i in 0..1_000u64 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(mean > 0.0);
        assert!(p50 <= p95, "p50={p50} p95={p95}");
    }

    #[test]
    fn measure_clamps_zero_iters() {
        let (mean, _, _) = measure(0, 0, || 42);
        assert!(mean >= 0.0, "zero requested iters still measures one");
    }

    #[test]
    fn jsonl_record_shape() {
        let line = jsonl_record("g", &plain_result("g/fast/64"));
        assert!(line.starts_with("{\"group\":\"g\",\"bench\":\"g/fast/64\""));
        assert!(line.ends_with('}'));
        assert!(line.contains("\"iters\":10"));
        assert!(line.contains("\"mean_ns\":1234.5"));
        assert!(!line.contains("counters"), "empty counters stay omitted");
        assert!(!line.contains("\"n\":"), "absent meta stays omitted");
        assert!(!line.contains("engine"), "absent meta stays omitted");
        assert!(!line.contains("peak_rss"), "absent probe stays omitted");
    }

    #[test]
    fn jsonl_record_emits_structured_dimensions() {
        let mut r = plain_result("g/streaming/1000000");
        r.meta = CaseMeta::engine_sized("streaming", 1_000_000);
        r.peak_rss_kb = Some(250_000);
        r.peak_rss_delta_kb = Some(1024);
        let line = jsonl_record("g", &r);
        assert!(line.contains("\"n\":1000000"), "{line}");
        assert!(line.contains("\"engine\":\"streaming\""), "{line}");
        assert!(line.contains("\"peak_rss_kb\":250000"), "{line}");
        assert!(line.contains("\"peak_rss_delta_kb\":1024"), "{line}");
        // Structured fields precede the timing block, one JSON object.
        assert!(line.starts_with("{\"group\":\"g\",\"bench\":\"g/streaming/1000000\",\"n\":1000000,\"engine\":\"streaming\""));
        assert_eq!(CaseMeta::sized(7), CaseMeta { n: Some(7), engine: None });
    }

    #[test]
    fn jsonl_record_attaches_counter_deltas() {
        let mut r = plain_result("g/fast/64");
        r.mean_ns = 1.0;
        r.p50_ns = 1.0;
        r.p95_ns = 1.0;
        r.counters = vec![("core.disk_queries".into(), 640), ("par.scatter_chunks".into(), 4)];
        let line = jsonl_record("g", &r);
        assert!(
            line.contains("\"counters\":{\"core.disk_queries\":640,\"par.scatter_chunks\":4}"),
            "{line}"
        );
        assert!(line.ends_with("}}"), "{line}");
    }

    #[test]
    fn bench_captures_counter_deltas_from_measured_code() {
        let mut h = Harness::new("timing_self_test");
        h.bench("counting", || rim_obs::counter_add("bench.self_test.iterations", 1));
        let total: u64 = h.results[0]
            .counters
            .iter()
            .filter(|(n, _)| n == "bench.self_test.iterations")
            .map(|(_, v)| *v)
            .sum();
        // Warmup iterations run inside `bench` too, so they are part of
        // the delta by design: the counters describe everything the case
        // executed, not just the timed window.
        assert_eq!(total, u64::from(WARMUP_ITERS + TIMED_ITERS));
        // The memory probe is attached on Linux (None elsewhere is fine).
        if let Some(kb) = h.results[0].peak_rss_kb {
            assert!(kb > 0);
        }
    }

    #[test]
    fn bench_scaled_respects_iteration_counts() {
        let mut h = Harness::new("timing_self_test_scaled");
        h.bench_scaled("tiny", CaseMeta::sized(1), 0, 2, || {
            rim_obs::counter_add("bench.self_test.scaled", 1)
        });
        let r = &h.results[0];
        assert_eq!(r.iters, 2);
        assert_eq!(r.meta.n, Some(1));
        let total: u64 = r
            .counters
            .iter()
            .filter(|(n, _)| n == "bench.self_test.scaled")
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(total, 2, "no warmup + 2 timed iterations");
    }

    #[test]
    fn escaping_quotes_in_ids() {
        let r = plain_result("a\"b");
        assert!(jsonl_record("g", &r).contains("a\\\"b"));
    }
}
