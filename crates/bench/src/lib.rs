//! Shared harness for the experiment suite: experiment records, CSV
//! export, a parallel sweep runner, a zero-dependency timing harness,
//! and the per-figure data generators used by both the `figures` binary
//! and the `[[bench]]` targets.

#![forbid(unsafe_code)]

// Node ids double as indices throughout this workspace; indexed loops
// over `0..n` mirror the paper's notation and often touch several arrays.
#![allow(clippy::needless_range_loop)]

pub mod experiments;
pub mod record;
pub mod stats;
pub mod sweep;
pub mod timing;
