//! Small statistics helpers for multi-seed experiment aggregation.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

/// Summarizes a sample; panics on empty input.
pub fn summarize(xs: &[f64]) -> Summary {
    assert!(!xs.is_empty(), "cannot summarize an empty sample");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n < 2 {
        0.0
    } else {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
    };
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Summary {
        mean,
        std: var.sqrt(),
        min,
        max,
        n,
    }
}

/// Pearson correlation coefficient of two equal-length samples;
/// `None` when either sample is constant or shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    // rim-lint: allow(float-eq) — exact zero-variance guard
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Averages structurally identical row sets (same experiments, params and
/// column names in the same order) produced under different seeds.
///
/// Returns the element-wise mean rows; panics on structural mismatch.
pub fn mean_rows(runs: &[Vec<crate::record::Row>]) -> Vec<crate::record::Row> {
    assert!(!runs.is_empty());
    let template = &runs[0];
    for run in runs {
        assert_eq!(run.len(), template.len(), "row count mismatch across seeds");
    }
    template
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut row = crate::record::Row::new(t.experiment, t.param, t.value);
            for (c, &(name, _)) in t.columns.iter().enumerate() {
                let samples: Vec<f64> = runs
                    .iter()
                    .map(|run| {
                        let r = &run[i];
                        assert_eq!(r.columns[c].0, name, "column mismatch across seeds");
                        r.columns[c].1
                    })
                    .collect();
                row = row.col(name, summarize(&samples).mean);
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Row;

    #[test]
    fn summary_of_constant_sample() {
        let s = summarize(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn singleton_has_zero_std() {
        let s = summarize(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn pearson_known_cases() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0, 8.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[8.0, 6.0, 4.0, 2.0]).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn mean_rows_averages_columns() {
        let a = vec![Row::new("X", "n", 1.0).col("y", 2.0)];
        let b = vec![Row::new("X", "n", 1.0).col("y", 4.0)];
        let m = mean_rows(&[a, b]);
        assert_eq!(m[0].get("y"), Some(3.0));
        assert_eq!(m[0].value, 1.0);
    }

    #[test]
    #[should_panic]
    fn structural_mismatch_panics() {
        let a = vec![Row::new("X", "n", 1.0).col("y", 2.0)];
        let b = vec![Row::new("X", "n", 1.0).col("z", 4.0)];
        mean_rows(&[a, b]);
    }
}
