//! A small parallel sweep runner — re-exported from the shared
//! [`rim_par`] executor.
//!
//! Experiment sweeps are embarrassingly parallel over their parameter
//! points. The Mutex-queue worker pool that used to live here was
//! replaced by [`rim_par::parallel_map`]: the same order-preserving,
//! dynamically self-scheduled map (at most one thread per logical CPU),
//! now shared with the interference kernels and the topology pipeline
//! instead of duplicated per crate.

pub use rim_par::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn heavier_work_is_correct() {
        let out = parallel_map((1..=16u64).collect(), |n| (1..=n).sum::<u64>());
        assert_eq!(out[15], 136);
    }
}
