//! A small parallel sweep runner.
//!
//! Experiment sweeps are embarrassingly parallel over their parameter
//! points; this fans them out over scoped threads (no unbounded thread
//! creation: at most one thread per logical CPU) and returns results in
//! input order.

use std::sync::Mutex;

/// Applies `f` to every item of `params` in parallel, preserving order.
///
/// `f` must be `Sync` (it is shared across threads) and the items are
/// consumed by value. Panics in workers propagate.
pub fn parallel_map<P, R, F>(params: Vec<P>, f: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return params.into_iter().map(f).collect();
    }

    // Poisoned locks only arise after a worker panic, which the scope
    // below re-raises anyway — so recover the inner value and continue.
    fn relock<T>(r: std::sync::LockResult<T>) -> T {
        r.unwrap_or_else(std::sync::PoisonError::into_inner)
    }
    let work: Mutex<std::vec::IntoIter<(usize, P)>> =
        Mutex::new(params.into_iter().enumerate().collect::<Vec<_>>().into_iter());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = relock(work.lock()).next();
                match item {
                    Some((i, p)) => {
                        let r = f(p);
                        relock(results.lock())[i] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });

    relock(results.into_inner())
        .into_iter()
        // rim-lint: allow(no-unwrap-in-lib) — every index is written exactly once
        .map(|r| r.expect("worker failed to produce a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |i: i32| i + 1), vec![8]);
    }

    #[test]
    fn heavier_work_is_correct() {
        let out = parallel_map((1..=16u64).collect(), |n| (1..=n).sum::<u64>());
        assert_eq!(out[15], 136);
    }
}
