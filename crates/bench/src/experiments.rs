//! Data generators for every figure/theorem experiment of the paper.
//!
//! Each function regenerates the data series behind one paper artifact
//! (see `DESIGN.md`'s experiment index) and returns [`Row`]s that the
//! `figures` binary prints and exports. The benches in `benches/` reuse
//! the same functions so `cargo bench` exercises identical code paths.

use crate::record::Row;
use crate::sweep::parallel_map;
use rim_core::optimal::{min_interference_topology, SolverLimits};
use rim_core::receiver::{graph_interference, interference_vector};
use rim_core::robustness::arrival_impact;
use rim_core::sender::sender_graph_interference;
use rim_highway::a_apx::ApxChoice;
use rim_highway::a_gen::a_gen_with_spacing;
use rim_highway::bounds::{exponential_chain_lower_bound, optimum_lower_bound};
use rim_highway::exponential::two_chains;
use rim_highway::{a_apx, a_exp, a_gen, exponential_chain, gamma, HighwayInstance};
use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
use rim_topology_control::emst::euclidean_mst;
use rim_topology_control::nnf::nearest_neighbor_forest;
use rim_topology_control::{Baseline, Engine};
use rim_udg::udg::unit_disk_graph;
use rim_udg::{NodeSet, Topology};

/// F1 (Figure 1): robustness of the two interference measures under a
/// single node arrival, as the cluster size grows.
pub fn fig1_robustness(sizes: &[usize], seed: u64) -> Vec<Row> {
    parallel_map(sizes.to_vec(), |n| {
        let (cluster, with) = rim_workloads::fig1_instance(n, 0.1, seed);
        let outlier = with.pos(with.len() - 1);
        let impact = arrival_impact(&cluster, outlier, |ns| {
            let udg = unit_disk_graph(ns);
            euclidean_mst(ns, &udg)
        });
        Row::new("F1", "n", n as f64)
            .col("recv_before", impact.receiver_before as f64)
            .col("recv_after", impact.receiver_after as f64)
            .col("send_before", impact.sender_before as f64)
            .col("send_after", impact.sender_after as f64)
            .col("recv_max_delta", impact.max_receiver_delta as f64)
    })
}

/// F1T: growth trajectory — replay an entire arrival sequence (cluster
/// first, then the outlier, then more cluster nodes) and track both
/// measures after every arrival. The sender-centric curve jumps by
/// `Θ(n)` exactly when the outlier joins; the receiver-centric curve
/// moves by at most a small constant per arrival.
pub fn fig1_growth(n: usize, seed: u64) -> Vec<Row> {
    use rim_core::robustness::growth_trajectory;
    let (_, with_outlier) = rim_workloads::fig1_instance(n, 0.1, seed);
    // Arrival order: all cluster nodes, then the outlier (index n-1),
    // then a few trailing cluster stragglers from a second instance.
    let mut pts: Vec<rim_geom::Point> = with_outlier.points().to_vec();
    let (more, _) = rim_workloads::fig1_instance(8, 0.1, seed.wrapping_add(1));
    pts.extend(more.points().iter().copied());
    let steps = growth_trajectory(&pts, |ns| {
        let udg = unit_disk_graph(ns);
        euclidean_mst(ns, &udg)
    });
    steps
        .into_iter()
        .map(|s| {
            Row::new("F1T", "n", s.n as f64)
                .col("receiver", s.receiver as f64)
                .col("sender", s.sender as f64)
        })
        .collect()
}

/// F2 (Figure 2): the five-node illustration — per-node interference of
/// the sample topology; the distinguished node experiences `I(u) = 2`.
pub fn fig2_sample() -> Vec<Row> {
    let u = rim_geom::Point::new(0.0, 0.0);
    let a = rim_geom::Point::new(-0.2, 0.0);
    let v = rim_geom::Point::new(0.8, 0.0);
    let b = rim_geom::Point::new(1.3, 0.65);
    let c = rim_geom::Point::new(-0.15, 0.08);
    let ns = NodeSet::new(vec![u, a, v, b, c]);
    let t = Topology::from_pairs(ns, &[(0, 1), (2, 3), (1, 4)]);
    let iv = interference_vector(&t);
    iv.into_iter()
        .enumerate()
        .map(|(node, i)| Row::new("F2", "node", node as f64).col("I", i as f64))
        .collect()
}

/// F3–F5 + Theorem 4.1: NNF vs optimal witness on the two-chain
/// construction, sweeping the horizontal-chain length `k`.
pub fn thm41_nnf_vs_witness(ks: &[usize]) -> Vec<Row> {
    parallel_map(ks.to_vec(), |k| {
        let tc = two_chains(k);
        let udg = unit_disk_graph(&tc.nodes);
        let nnf = nearest_neighbor_forest(&tc.nodes, &udg);
        let wit = tc.witness_topology();
        let i_nnf = graph_interference(&nnf) as f64;
        let i_wit = graph_interference(&wit) as f64;
        Row::new("T41", "k", k as f64)
            .col("n", tc.len() as f64)
            .col("I_nnf", i_nnf)
            .col("I_witness", i_wit)
            .col("ratio", i_nnf / i_wit)
    })
}

/// F6–F7: the linearly connected exponential node chain — interference
/// `n − 2`, concentrated at the leftmost node.
pub fn fig7_linear_chain(ns: &[usize]) -> Vec<Row> {
    parallel_map(ns.to_vec(), |n| {
        let c = exponential_chain(n);
        let t = c.linear_topology();
        let iv = interference_vector(&t);
        Row::new("F7", "n", n as f64)
            // rim-lint: allow(no-unwrap-in-lib) — chains have >= 2 nodes, iv non-empty
            .col("I_linear", *iv.iter().max().unwrap() as f64)
            .col("I_leftmost", iv[0] as f64)
            .col("expected", (n - 2) as f64)
    })
}

/// F8 + Theorem 5.1: `A_exp` on the exponential chain vs the `√n` lower
/// bound and the `√(2n)` upper bound.
pub fn fig8_aexp(ns: &[usize]) -> Vec<Row> {
    parallel_map(ns.to_vec(), |n| {
        let c = exponential_chain(n);
        let r = a_exp(&c);
        Row::new("F8", "n", n as f64)
            .col("I_aexp", graph_interference(&r.topology) as f64)
            .col("hubs", r.hubs.len() as f64)
            .col("sqrt_n", exponential_chain_lower_bound(n))
            .col("sqrt_2n_plus_1", (2.0 * n as f64).sqrt() + 1.0)
    })
}

/// Theorem 5.2: exact optimum on small exponential chains vs the `√n`
/// lower bound (and `A_exp` for context).
pub fn thm52_lower_bound(ns: &[usize]) -> Vec<Row> {
    parallel_map(ns.to_vec(), |n| {
        let c = exponential_chain(n);
        let opt = min_interference_topology(&c.node_set(), 1.0, SolverLimits::default());
        let aexp = graph_interference(&a_exp(&c).topology);
        Row::new("T52", "n", n as f64)
            .col("opt", opt.interference as f64)
            .col("optimal_proved", f64::from(u8::from(opt.optimal)))
            .col("sqrt_n", exponential_chain_lower_bound(n))
            .col("a_exp", aexp as f64)
    })
}

/// F9 + Theorem 5.4: `A_gen` over highway families of growing density —
/// interference against `√Δ`.
pub fn fig9_agen(densities: &[usize], seed: u64) -> Vec<Row> {
    parallel_map(densities.to_vec(), |n| {
        let h = rim_workloads::uniform_highway(n, 4.0, seed);
        let delta = h.max_degree();
        let r = a_gen(&h);
        Row::new("F9", "n", n as f64)
            .col("delta", delta as f64)
            .col("I_agen", graph_interference(&r.topology) as f64)
            .col("sqrt_delta", (delta as f64).sqrt())
            .col("hubs", r.hubs.len() as f64)
            .col("segments", r.segments.len() as f64)
    })
}

/// Theorem 5.6 (small-instance branch): exact approximation ratio of
/// `A_apx` against the branch-and-bound optimum.
pub fn thm56_ratio_small(trials: usize, seed: u64) -> Vec<Row> {
    let params: Vec<u64> = (0..trials as u64).map(|t| seed.wrapping_add(t)).collect();
    parallel_map(params, |s| {
        let mut rng = rim_rng::SmallRng::seed_from_u64(s);
        let n = 6 + (s % 3) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0).collect();
        let h = HighwayInstance::new(xs);
        let apx = graph_interference(&a_apx(&h).topology);
        let opt = min_interference_topology(&h.node_set(), 1.0, SolverLimits::default());
        let delta = h.max_degree() as f64;
        Row::new("T56", "seed", s as f64)
            .col("n", n as f64)
            .col("delta", delta)
            .col("gamma", gamma(&h) as f64)
            .col("apx", apx as f64)
            .col("opt", opt.interference as f64)
            .col("ratio", apx as f64 / opt.interference.max(1) as f64)
            .col("delta_qtr", delta.powf(0.25))
    })
}

/// Theorem 5.6 (large-instance branch): `A_apx` against the `√(γ/2)`
/// certificate on instances too large for the exact solver.
pub fn thm56_ratio_large(seed: u64) -> Vec<Row> {
    let instances: Vec<(&'static str, HighwayInstance)> = vec![
        ("uniform", rim_workloads::uniform_highway(400, 8.0, seed)),
        (
            "clustered",
            rim_workloads::clustered_highway(8, 40, 0.05, 1.0, seed),
        ),
        (
            "frag_exp",
            rim_workloads::fragmented_exponential(4, 24, seed),
        ),
        ("exp_chain", exponential_chain(128)),
    ];
    instances
        .into_iter()
        .enumerate()
        .map(|(i, (name, h))| {
            let r = a_apx(&h);
            let apx = graph_interference(&r.topology) as f64;
            let cert = optimum_lower_bound(&h).max(1.0);
            let choice = match r.single_choice() {
                Some(ApxChoice::Linear) => 0.0,
                Some(ApxChoice::Gen) => 1.0,
                None => 2.0,
            };
            println!("  T56L[{name}]");
            Row::new("T56L", "instance", i as f64)
                .col("n", h.len() as f64)
                .col("delta", h.max_degree() as f64)
                .col("gamma", gamma(&h) as f64)
                .col("apx", apx)
                .col("lb_sqrt_gamma_half", cert)
                .col("ratio_vs_lb", apx / cert)
                .col("choice_gen", choice)
        })
        .collect()
}

/// The topology family shared by the simulation experiments S1/S2/X1.
fn sim_topologies() -> Vec<(&'static str, Topology)> {
    let chain = exponential_chain(48);
    let udg = chain.udg();
    let nodes = chain.node_set();
    vec![
        ("linear", chain.linear_topology()),
        ("nnf", nearest_neighbor_forest(&nodes, &udg)),
        ("mst", euclidean_mst(&nodes, &udg)),
        ("a_gen", a_gen(&chain).topology),
        ("a_apx", a_apx(&chain).topology),
        ("a_exp", a_exp(&chain).topology),
    ]
}

/// S1: MAC simulation across topologies — does lower `I` mean fewer
/// collisions, fewer retransmissions, less energy per packet?
/// Averaged over three seeds.
pub fn sim_experiment(seed: u64) -> Vec<Row> {
    let runs: Vec<Vec<Row>> = (0..3)
        .map(|k| {
            let cfg = SimConfig {
                slots: 30_000,
                mac: MacConfig::csma(),
                traffic: TrafficConfig::Cbr {
                    flows: 10,
                    period: 25,
                },
                alpha: 2.0,
                seed: seed.wrapping_add(k),
            };
            parallel_map(sim_topologies(), move |(name, t)| {
                let i = graph_interference(&t);
                let m = Simulator::new(t, cfg).run();
                println!("  S1[{name} seed+{k}]");
                Row::new("S1", "topology", i as f64)
                    .col("I", i as f64)
                    .col("delivery", m.delivery_ratio())
                    .col("collision_rate", m.collision_rate())
                    .col("tx_per_delivery", m.transmissions_per_delivery())
                    .col("energy_per_delivery", m.energy_per_delivery())
                    .col("mean_delay", m.mean_delay())
            })
        })
        .collect();
    crate::stats::mean_rows(&runs)
}

/// S2: CSMA vs collision-free TDMA on the same topologies and traffic —
/// the scheduled MAC turns interference into frame length instead of
/// collisions.
pub fn sim_tdma_vs_csma(seed: u64) -> Vec<Row> {
    let mut jobs: Vec<(&'static str, &'static str, MacConfig, Topology)> = Vec::new();
    for (name, t) in sim_topologies() {
        jobs.push((name, "csma", MacConfig::csma(), t.clone()));
        jobs.push((name, "tdma", MacConfig::Tdma, t));
    }
    parallel_map(jobs, move |(name, mac_name, mac, t)| {
        let i = graph_interference(&t);
        let frame = rim_sim::tdma_schedule(&t).frame_length();
        let cfg = SimConfig {
            slots: 30_000,
            mac,
            traffic: TrafficConfig::Cbr {
                flows: 10,
                period: 25,
            },
            alpha: 2.0,
            seed,
        };
        let m = Simulator::new(t, cfg).run();
        println!("  S2[{name}/{mac_name}]");
        Row::new("S2", "topology", i as f64)
            .col("is_tdma", f64::from(u8::from(mac_name == "tdma")))
            .col("frame", frame as f64)
            .col("delivery", m.delivery_ratio())
            .col("collision_rate", m.collision_rate())
            .col("mean_delay", m.mean_delay())
    })
}

/// X1 extension: TDMA frame length across topologies of the same
/// instance — scheduling is the second physical face of interference
/// (every potential coverer of a receiver is one more link barred from
/// its slot).
pub fn tdma_frames(seed: u64) -> Vec<Row> {
    let chain = exponential_chain(48);
    let udg = chain.udg();
    let nodes = chain.node_set();
    let _ = seed;
    let topologies: Vec<(&'static str, Topology)> = vec![
        ("linear", chain.linear_topology()),
        ("a_exp", a_exp(&chain).topology),
        ("a_gen", a_gen(&chain).topology),
        ("mst", euclidean_mst(&nodes, &udg)),
    ];
    parallel_map(topologies, |(name, t)| {
        let i = graph_interference(&t);
        let s = rim_sim::tdma_schedule(&t);
        assert_eq!(s.verify(&t), None, "invalid schedule for {name}");
        println!("  X1[{name}]");
        Row::new("X1", "I", i as f64)
            .col("links", s.num_links() as f64)
            .col("frame_length", s.frame_length() as f64)
            .col("links_per_slot", s.num_links() as f64 / s.frame_length().max(1) as f64)
    })
}

/// M1: topology control under mobility — rebuild on every random-
/// waypoint snapshot; track interference stability and topology churn
/// (fraction of edges changed between consecutive snapshots).
pub fn mobility(seed: u64) -> Vec<Row> {
    let trace = rim_workloads::random_waypoint_trace(80, 2.2, 0.05, 40, seed);
    let mut rows = Vec::new();
    let mut prev_edges: Option<std::collections::HashSet<(usize, usize)>> = None;
    for (step, snap) in trace.iter().enumerate() {
        let udg = unit_disk_graph(snap);
        let t = euclidean_mst(snap, &udg);
        let edges: std::collections::HashSet<(usize, usize)> =
            t.edges().iter().map(|e| e.pair()).collect();
        let churn = match &prev_edges {
            None => 0.0,
            Some(prev) => {
                let changed = prev.symmetric_difference(&edges).count();
                changed as f64 / prev.len().max(1) as f64
            }
        };
        rows.push(
            Row::new("M1", "step", step as f64)
                .col("I", graph_interference(&t) as f64)
                .col("delta", udg.max_degree() as f64)
                .col("edges", edges.len() as f64)
                .col("churn", churn),
        );
        prev_edges = Some(edges);
    }
    rows
}

/// S3: the per-node claim, empirically — Definition 3.1 says `I(v)` is
/// the number of nodes that can destroy a reception at `v`; under random
/// contention, nodes with higher `I(v)` should therefore see higher
/// receiver-side collision rates. Reports the Pearson correlation of
/// `I(v)` against the observed per-node collision rate.
pub fn per_node_correlation(seed: u64) -> Vec<Row> {
    let configs: Vec<(&'static str, Topology)> = {
        let chain = exponential_chain(48);
        let nodes = rim_workloads::uniform_highway(60, 2.0, seed).node_set();
        let udg = unit_disk_graph(&nodes);
        vec![
            ("exp_linear", chain.linear_topology()),
            ("uniform_mst", euclidean_mst(&nodes, &udg)),
        ]
    };
    configs
        .into_iter()
        .enumerate()
        .map(|(ci, (name, t))| {
            let cfg = SimConfig {
                slots: 60_000,
                mac: MacConfig::SlottedAloha { p: 0.15 },
                traffic: TrafficConfig::Poisson { rate: 0.5 },
                alpha: 2.0,
                seed,
            };
            let sim = Simulator::new(t, cfg);
            let profile = sim.interference_profile();
            let m = sim.run();
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for v in 0..profile.len() {
                if let Some(rate) = m.node_collision_rate(v) {
                    xs.push(profile[v] as f64);
                    ys.push(rate);
                }
            }
            let r = crate::stats::pearson(&xs, &ys).unwrap_or(f64::NAN);
            println!("  S3[{name}]");
            Row::new("S3", "config", ci as f64)
                .col("nodes_observed", xs.len() as f64)
                .col("pearson_r", r)
                .col(
                    "max_I",
                    xs.iter().copied().fold(0.0f64, f64::max),
                )
        })
        .collect()
}

/// P1: localized protocols — rounds and message counts of the
/// distributed XTC / LMST / NNF implementations, with equivalence to
/// their centralized counterparts asserted on the fly.
pub fn protocol_stats(seed: u64) -> Vec<Row> {
    use rim_proto::{lmst_proto::LmstNode, nnf_proto::NnfNode, run_protocol, xtc_proto::XtcNode};
    let nodes = rim_workloads::uniform_square(120, 2.5, seed);
    let udg = unit_disk_graph(&nodes);
    let mut rows = Vec::new();

    let (t, s) = run_protocol::<XtcNode>(&nodes, &udg);
    assert_eq!(
        t.edges(),
        rim_topology_control::xtc::xtc(&nodes, &udg).edges()
    );
    println!("  P1[xtc]");
    rows.push(
        Row::new("P1", "protocol", 0.0)
            .col("rounds", s.rounds as f64)
            .col("messages", s.messages as f64)
            .col("max_node_msgs", s.max_node_messages as f64)
            .col("I", graph_interference(&t) as f64),
    );

    let (t, s) = run_protocol::<LmstNode>(&nodes, &udg);
    assert_eq!(
        t.edges(),
        rim_topology_control::lmst::lmst(
            &nodes,
            &udg,
            rim_topology_control::lmst::LmstVariant::Intersection
        )
        .edges()
    );
    println!("  P1[lmst]");
    rows.push(
        Row::new("P1", "protocol", 1.0)
            .col("rounds", s.rounds as f64)
            .col("messages", s.messages as f64)
            .col("max_node_msgs", s.max_node_messages as f64)
            .col("I", graph_interference(&t) as f64),
    );

    let (t, s) = run_protocol::<NnfNode>(&nodes, &udg);
    assert_eq!(t.edges(), nearest_neighbor_forest(&nodes, &udg).edges());
    println!("  P1[nnf]");
    rows.push(
        Row::new("P1", "protocol", 2.0)
            .col("rounds", s.rounds as f64)
            .col("messages", s.messages as f64)
            .col("max_node_msgs", s.max_node_messages as f64)
            .col("I", graph_interference(&t) as f64),
    );
    rows
}

/// X2 extension: `A_gen2` (the paper's future-work direction — 2-D) vs
/// the 2-D baselines, over growing field density.
pub fn plane_extension(densities: &[usize], seed: u64) -> Vec<Row> {
    parallel_map(densities.to_vec(), |n| {
        let nodes = rim_workloads::uniform_square(n, 3.0, seed);
        let udg = unit_disk_graph(&nodes);
        let delta = udg.max_degree() as f64;
        let gen2 = rim_highway::plane::a_gen_2d(&nodes);
        let mst = euclidean_mst(&nodes, &udg);
        let lmst = rim_topology_control::lmst::lmst(
            &nodes,
            &udg,
            rim_topology_control::lmst::LmstVariant::Intersection,
        );
        assert!(gen2.topology.preserves_connectivity_of(&udg));
        Row::new("X2", "n", n as f64)
            .col("delta", delta)
            .col("sqrt_delta", delta.sqrt())
            .col("I_agen2", graph_interference(&gen2.topology) as f64)
            .col("I_mst", graph_interference(&mst) as f64)
            .col("I_lmst", graph_interference(&lmst) as f64)
            .col("hubs", gen2.hubs.len() as f64)
    })
}

/// A1 ablation: hub spacing in `A_gen` (the paper fixes `⌈√Δ⌉`).
///
/// Two instance families make the tension visible: on *uniform* highways
/// small spacings win (linear-ish is near-optimal there), while on the
/// *exponential chain* dense spacing inherits the linear connection's
/// `Θ(n)` interference — which is exactly why `A_apx` exists.
pub fn ablation_hub_spacing(seed: u64) -> Vec<Row> {
    let families: Vec<(usize, HighwayInstance)> = vec![
        (0, rim_workloads::uniform_highway(300, 3.0, seed)),
        (1, exponential_chain(128)),
    ];
    let mut rows = Vec::new();
    for (fi, h) in families {
        let delta = h.max_degree();
        let sqrt_d = (delta as f64).sqrt().ceil() as usize;
        let mut spacings: Vec<usize> =
            vec![1, 2, sqrt_d / 2, sqrt_d, 2 * sqrt_d, delta / 2, delta];
        spacings.retain(|&s| s >= 1);
        spacings.sort_unstable();
        spacings.dedup();
        rows.extend(parallel_map(spacings, |k| {
            let r = a_gen_with_spacing(&h, k);
            Row::new("A1", "spacing", k as f64)
                .col("family", fi as f64)
                .col("delta", delta as f64)
                .col("sqrt_delta", (delta as f64).sqrt())
                .col("I_agen", graph_interference(&r.topology) as f64)
                .col("hubs", r.hubs.len() as f64)
        }));
    }
    rows
}

/// A2 ablation: the `γ > c·√Δ` switching threshold of `A_apx`
/// (the paper uses `c = 1`).
pub fn ablation_threshold(seed: u64) -> Vec<Row> {
    let families: Vec<(&'static str, HighwayInstance)> = vec![
        ("uniform", rim_workloads::uniform_highway(200, 2.0, seed)),
        (
            "frag_exp",
            rim_workloads::fragmented_exponential(3, 20, seed),
        ),
        ("exp_chain", exponential_chain(64)),
    ];
    let cs = [0.25f64, 0.5, 1.0, 2.0, 4.0];
    let mut rows = Vec::new();
    for (fi, (name, h)) in families.iter().enumerate() {
        let delta = h.max_degree();
        let g = gamma(h);
        for &c in &cs {
            // Re-implement the A_apx decision with threshold multiplier c,
            // using the same building blocks.
            let use_gen = (g as f64) > c * (delta as f64).sqrt();
            let t = if use_gen {
                a_gen(h).topology
            } else {
                h.linear_topology()
            };
            println!("  A2[{name} c={c}]");
            rows.push(
                Row::new("A2", "c", c)
                    .col("family", fi as f64)
                    .col("gamma", g as f64)
                    .col("delta", delta as f64)
                    .col("chose_gen", f64::from(u8::from(use_gen)))
                    .col("I", graph_interference(&t) as f64),
            );
        }
    }
    rows
}

/// Baseline comparison on 2-D fields: every topology-control algorithm's
/// receiver- and sender-centric interference side by side
/// ([`Engine::Auto`] construction).
pub fn baselines_2d(seed: u64) -> Vec<Row> {
    baselines_2d_with(seed, Engine::Auto)
}

/// [`baselines_2d`] with an explicit construction [`Engine`] for the
/// engine-sensitive baselines (the measured interference is
/// engine-invariant; only construction speed differs).
pub fn baselines_2d_with(seed: u64, engine: Engine) -> Vec<Row> {
    let nodes = rim_workloads::uniform_square(150, 3.0, seed);
    let udg = unit_disk_graph(&nodes);
    parallel_map(Baseline::ALL.to_vec(), move |b| {
        let t = b.build_with(&nodes, &udg, engine);
        let bc = rim_graph::biconnectivity::biconnectivity(t.graph());
        let connected = t.preserves_connectivity_of(&udg);
        // Weighted stretch vs the UDG — the implicit "spanner" proxy the
        // first-generation papers optimized (∞ if connectivity broke).
        let stretch = if connected {
            rim_graph::properties::stretch_factor(&udg, t.graph())
        } else {
            f64::INFINITY
        };
        println!("  B2D[{}]", b.name());
        Row::new("B2D", "baseline", b as usize as f64)
            .col("edges", t.num_edges() as f64)
            .col("I_recv", graph_interference(&t) as f64)
            .col("I_send", sender_graph_interference(&t) as f64)
            .col("energy", t.energy(2.0))
            .col("bridges", bc.bridges.len() as f64)
            .col("stretch", stretch)
            .col("connected", f64::from(u8::from(connected)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shows_the_contrast() {
        let rows = fig1_robustness(&[20, 60], 1);
        for r in &rows {
            let n = r.value;
            assert!(r.get("send_after").unwrap() >= n - 2.0, "sender must explode");
            assert!(
                r.get("recv_after").unwrap() <= r.get("recv_before").unwrap() + 3.0,
                "receiver must stay put"
            );
        }
    }

    #[test]
    fn fig2_gives_node_u_interference_two() {
        let rows = fig2_sample();
        assert_eq!(rows[0].get("I"), Some(2.0), "I(u) = 2 as in Figure 2");
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn thm41_ratio_grows() {
        let rows = thm41_nnf_vs_witness(&[6, 12, 24]);
        let ratios: Vec<f64> = rows.iter().map(|r| r.get("ratio").unwrap()).collect();
        assert!(ratios.windows(2).all(|w| w[1] > w[0]), "{ratios:?}");
    }

    #[test]
    fn fig7_matches_formula() {
        for r in fig7_linear_chain(&[8, 16]) {
            assert_eq!(r.get("I_linear"), r.get("expected"));
            assert_eq!(r.get("I_leftmost"), r.get("expected"));
        }
    }

    #[test]
    fn fig8_within_bounds() {
        for r in fig8_aexp(&[16, 64]) {
            let i = r.get("I_aexp").unwrap();
            assert!(i >= r.get("sqrt_n").unwrap().floor());
            assert!(i <= r.get("sqrt_2n_plus_1").unwrap());
        }
    }

    #[test]
    fn thm52_exact_respects_bound() {
        for r in thm52_lower_bound(&[6, 9]) {
            assert_eq!(r.get("optimal_proved"), Some(1.0));
            assert!(r.get("opt").unwrap() >= r.get("sqrt_n").unwrap().floor());
        }
    }

    #[test]
    fn fig9_scales_with_sqrt_delta() {
        for r in fig9_agen(&[100, 300], 3) {
            assert!(r.get("I_agen").unwrap() <= 9.0 * r.get("sqrt_delta").unwrap() + 6.0);
        }
    }

    #[test]
    fn sim_rows_have_sane_ratios() {
        for r in sim_experiment(5) {
            let d = r.get("delivery").unwrap();
            assert!((0.0..=1.0).contains(&d));
            let c = r.get("collision_rate").unwrap();
            assert!((0.0..=1.0).contains(&c));
        }
    }
}
