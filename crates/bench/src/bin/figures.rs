//! Regenerate the data behind every figure/theorem of the paper.
//!
//! ```text
//! cargo run --release -p rim-bench --bin figures            # everything
//! cargo run --release -p rim-bench --bin figures -- F8 S1   # selected ids
//! cargo run --release -p rim-bench --bin figures -- --csv results/
//! cargo run --release -p rim-bench --bin figures -- --svg figures/  # SVG renders
//! ```
//!
//! Experiment ids: F1 F1T F2 T41 F7 F8 T52 F9 T56 T56L S1 S2 S3 X1 X2
//! P1 M1 A1 A2 B2D (see DESIGN.md for the paper artifact each id
//! reproduces).

#![forbid(unsafe_code)]

use rim_bench::experiments as ex;
use rim_bench::record::{render_table, write_csv, Row};
use std::path::{Path, PathBuf};

/// Renders the paper's visual figures as SVG files.
fn write_svgs(dir: &Path) {
    use rim_highway::exponential::two_chains;
    use rim_topology_control::nnf::nearest_neighbor_forest;
    use rim_udg::udg::unit_disk_graph;
    use rim_viz::{render_highway_arcs, render_topology, RenderOptions};

    std::fs::create_dir_all(dir).expect("create svg dir");
    let save = |name: &str, content: String| {
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write svg");
        println!("(wrote {})", path.display());
    };

    // Figure 2: the five-node sample with its interference disks.
    let ns = rim_udg::NodeSet::new(vec![
        rim_geom::Point::new(0.0, 0.0),
        rim_geom::Point::new(-0.2, 0.0),
        rim_geom::Point::new(0.8, 0.0),
        rim_geom::Point::new(1.3, 0.65),
        rim_geom::Point::new(-0.15, 0.08),
    ]);
    let fig2 = rim_udg::Topology::from_pairs(ns, &[(0, 1), (2, 3), (1, 4)]);
    save(
        "fig2_sample.svg",
        render_topology(
            &fig2,
            RenderOptions {
                show_disks: true,
                show_interference: true,
                ..RenderOptions::default()
            },
        ),
    );

    // Figures 3-5: the two-chain construction, NNF vs witness.
    let tc = two_chains(10);
    let udg = unit_disk_graph(&tc.nodes);
    let nnf = nearest_neighbor_forest(&tc.nodes, &udg);
    save("fig4_nnf.svg", render_topology(&nnf, RenderOptions::default()));
    save(
        "fig5_witness.svg",
        render_topology(&tc.witness_topology(), RenderOptions::default()),
    );

    // Figure 7: the linearly connected exponential chain (log axis).
    let chain = rim_highway::exponential_chain(16);
    save(
        "fig7_linear_chain.svg",
        render_highway_arcs(&chain, &chain.linear_topology(), true),
    );

    // Figure 8: A_exp on the exponential chain, arcs + hollow hubs.
    let aexp = rim_highway::a_exp(&chain);
    save(
        "fig8_aexp.svg",
        render_highway_arcs(&chain, &aexp.topology, true),
    );

    // Figure 9: A_gen on a uniform highway (linear axis).
    let h = rim_workloads::uniform_highway(60, 2.5, 17);
    let agen = rim_highway::a_gen(&h);
    save(
        "fig9_agen.svg",
        render_highway_arcs(&h, &agen.topology, false),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<PathBuf> = None;
    let mut svg_dir: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            csv_dir = Some(PathBuf::from(
                it.next().expect("--csv needs a directory"),
            ));
        } else if a == "--svg" {
            svg_dir = Some(PathBuf::from(
                it.next().expect("--svg needs a directory"),
            ));
        } else {
            selected.push(a.to_uppercase());
        }
    }
    if let Some(dir) = &svg_dir {
        write_svgs(dir);
    }
    let want = |id: &str| selected.is_empty() || selected.iter().any(|s| s == id);

    type Experiment = (&'static str, &'static str, fn() -> Vec<Row>);
    let experiments: Vec<Experiment> = vec![
        (
            "F1",
            "Figure 1 — one arrival: sender-centric explodes, receiver-centric stays constant",
            || ex::fig1_robustness(&[10, 20, 50, 100, 200, 400], 99),
        ),
        (
            "F1T",
            "Growth trajectory — both measures over a whole arrival sequence",
            || ex::fig1_growth(40, 99),
        ),
        ("F2", "Figure 2 — five-node sample, I(u) = 2", ex::fig2_sample),
        (
            "T41",
            "Theorem 4.1 / Figures 3-5 — NNF is Ω(n)× worse than the witness tree",
            || ex::thm41_nnf_vs_witness(&[4, 8, 16, 32, 64, 128]),
        ),
        (
            "F7",
            "Figures 6-7 — linear exponential chain: I = n − 2",
            || ex::fig7_linear_chain(&[4, 8, 16, 32, 64, 128, 256]),
        ),
        (
            "F8",
            "Figure 8 / Theorem 5.1 — A_exp: √n ≤ I ≤ √(2n)+1",
            || ex::fig8_aexp(&[9, 16, 36, 64, 100, 196, 400]),
        ),
        (
            "T52",
            "Theorem 5.2 — exact optimum vs √n lower bound (branch & bound)",
            || ex::thm52_lower_bound(&[4, 5, 6, 7, 8, 9, 10]),
        ),
        (
            "F9",
            "Figure 9 / Theorem 5.4 — A_gen: I = O(√Δ) on uniform highways",
            || ex::fig9_agen(&[50, 100, 200, 400, 800, 1600], 17),
        ),
        (
            "T56",
            "Theorem 5.6 — A_apx vs exact optimum (small instances)",
            || ex::thm56_ratio_small(12, 1000),
        ),
        (
            "T56L",
            "Theorem 5.6 — A_apx vs √(γ/2) certificate (large instances)",
            || ex::thm56_ratio_large(7),
        ),
        (
            "S1",
            "Intro claim — MAC simulation: lower I ⇒ fewer collisions/retransmissions",
            || ex::sim_experiment(2025),
        ),
        (
            "S2",
            "Extension — CSMA vs collision-free TDMA on the same traffic",
            || ex::sim_tdma_vs_csma(2025),
        ),
        (
            "X1",
            "Extension — TDMA frame length tracks interference",
            || ex::tdma_frames(0),
        ),
        (
            "S3",
            "Per-node claim — I(v) correlates with observed collision rate at v",
            || ex::per_node_correlation(41),
        ),
        (
            "M1",
            "Mobility — interference stability and churn under random waypoint",
            || ex::mobility(77),
        ),
        (
            "P1",
            "Localized protocols — rounds/messages of distributed XTC/LMST/NNF",
            || ex::protocol_stats(31),
        ),
        (
            "X2",
            "Extension — A_gen2 in the plane (the paper's future work)",
            || ex::plane_extension(&[100, 200, 400, 800], 23),
        ),
        (
            "A1",
            "Ablation — hub spacing in A_gen (paper: ⌈√Δ⌉)",
            || ex::ablation_hub_spacing(11),
        ),
        (
            "A2",
            "Ablation — A_apx switching threshold γ > c·√Δ (paper: c = 1)",
            || ex::ablation_threshold(13),
        ),
        (
            "B2D",
            "Baselines on a 2-D field — receiver vs sender measures",
            || ex::baselines_2d(23),
        ),
    ];

    if selected.iter().any(|s| s == "SVG-ONLY") {
        return;
    }
    for (id, title, run) in experiments {
        if !want(id) {
            continue;
        }
        println!("\n=== {id}: {title} ===");
        let rows = run();
        print!("{}", render_table(&rows));
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = dir.join(format!("{}.csv", id.to_lowercase()));
            write_csv(&path, &rows).expect("write csv");
            println!("(wrote {})", path.display());
        }
    }
}
