//! A2 — ablation: cost of the `A_apx` decision pipeline (γ + Δ + branch)
//! under different switching-threshold multipliers. The interference
//! effect per threshold is reported by `figures -- A2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_bench::experiments::ablation_threshold;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_threshold");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("families_x_thresholds"), |b| {
        b.iter(|| ablation_threshold(13));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
