//! A2 — ablation: cost of the `A_apx` decision pipeline (γ + Δ + branch)
//! under different switching-threshold multipliers. The interference
//! effect per threshold is reported by `figures -- A2`.

use rim_bench::experiments::ablation_threshold;
use rim_bench::timing::Harness;

fn main() {
    let mut h = Harness::new("ablation_threshold");
    h.bench("families_x_thresholds", || ablation_threshold(13));
    h.finish();
}
