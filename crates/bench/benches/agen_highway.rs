//! F9 — Figure 9 / Theorem 5.4: `A_gen` throughput on large highway
//! instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_highway::a_gen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a_gen");
    g.sample_size(10);
    for n in [1_000usize, 5_000, 20_000] {
        let h = rim_workloads::uniform_highway(n, n as f64 / 100.0, 17);
        g.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| a_gen(h));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
