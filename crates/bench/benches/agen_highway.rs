//! F9 — Figure 9 / Theorem 5.4: `A_gen` throughput on large highway
//! instances.

use rim_bench::timing::Harness;
use rim_highway::a_gen;

fn main() {
    let mut harness = Harness::new("a_gen");
    for n in [1_000usize, 5_000, 20_000] {
        let h = rim_workloads::uniform_highway(n, n as f64 / 100.0, 17);
        harness.bench(&format!("{n}"), || a_gen(&h));
    }
    harness.finish();
}
