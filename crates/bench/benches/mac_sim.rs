//! S1 — MAC simulation throughput: slots/second over controlled
//! topologies (the substrate behind the collisions experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
use rim_topology_control::Baseline;
use rim_udg::udg::unit_disk_graph;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("mac_sim");
    g.sample_size(10);
    let nodes = rim_workloads::uniform_square(60, 2.2, 2025);
    let udg = unit_disk_graph(&nodes);
    for baseline in [Baseline::Emst, Baseline::Nnf, Baseline::Life] {
        let t = baseline.build(&nodes, &udg);
        let cfg = SimConfig {
            slots: 5_000,
            mac: MacConfig::csma(),
            traffic: TrafficConfig::Cbr { flows: 12, period: 40 },
            alpha: 2.0,
            seed: 7,
        };
        let sim = Simulator::new(t, cfg);
        g.bench_with_input(
            BenchmarkId::from_parameter(baseline.name()),
            &sim,
            |b, sim| b.iter(|| sim.run()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
