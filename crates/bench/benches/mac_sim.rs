//! S1 — MAC simulation throughput: slots/second over controlled
//! topologies (the substrate behind the collisions experiment).

use rim_bench::timing::Harness;
use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
use rim_topology_control::Baseline;
use rim_udg::udg::unit_disk_graph;

fn main() {
    let mut h = Harness::new("mac_sim");
    let nodes = rim_workloads::uniform_square(60, 2.2, 2025);
    let udg = unit_disk_graph(&nodes);
    for baseline in [Baseline::Emst, Baseline::Nnf, Baseline::Life] {
        let t = baseline.build(&nodes, &udg);
        let cfg = SimConfig {
            slots: 5_000,
            mac: MacConfig::csma(),
            traffic: TrafficConfig::Cbr { flows: 12, period: 40 },
            alpha: 2.0,
            seed: 7,
        };
        let sim = Simulator::new(t, cfg);
        h.bench(baseline.name(), || sim.run());
    }
    h.finish();
}
