//! T41 — Theorem 4.1 / Figures 3–5: NNF and witness interference on the
//! two-chain construction.

use rim_bench::experiments::thm41_nnf_vs_witness;
use rim_bench::timing::Harness;

fn main() {
    let mut h = Harness::new("thm41_nnf_vs_witness");
    for k in [16usize, 64, 128] {
        h.bench(&format!("{k}"), || thm41_nnf_vs_witness(&[k]));
    }
    h.finish();
}
