//! T41 — Theorem 4.1 / Figures 3–5: NNF and witness interference on the
//! two-chain construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_bench::experiments::thm41_nnf_vs_witness;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm41_nnf_vs_witness");
    g.sample_size(10);
    for k in [16usize, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| thm41_nnf_vs_witness(&[k]));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
