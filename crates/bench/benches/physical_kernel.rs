//! Kernel microbench: the SINR physical-model engines of `rim-phys` —
//! naive `O(n²)` oracle vs spatial-index kernels — for both the
//! θ-coverage count and the cutoff-truncated interference sum, on MST
//! instances under a *local* link budget (noise floor one decade below
//! the coverage threshold, so `cutoff ≈ √10·ρ` and the grid can prune).
//!
//! The disk-equivalent parameterisation is deliberately *not* used
//! here: its `10⁻¹²` mW noise floor puts every node inside every
//! cutoff disk, which is the regime the differential tests pin but the
//! worst case for the index. Claims the JSONL should witness: the
//! indexed SINR kernels beat the naive scans from a few thousand nodes
//! up, and the attached `phys.coverage_queries` / `phys.cutoff_queries`
//! counter deltas show the index pruning candidate pairs relative to
//! the `n²` scan.

use rim_bench::timing::Harness;
use rim_core::physical::{
    build_phys_index, coverage_vector_indexed, coverage_vector_naive,
    physical_interference_vector_with, sinr_interference_indexed, sinr_interference_naive,
    PhysModel, PhysParams,
};
use rim_topology_control::emst::euclidean_mst;
use rim_udg::udg::unit_disk_graph;
use rim_udg::Topology;

fn mst_instance(n: usize) -> Topology {
    let nodes = rim_workloads::uniform_square(n, (n as f64).sqrt() / 10.0, 3);
    let udg = unit_disk_graph(&nodes);
    euclidean_mst(&nodes, &udg)
}

/// Path-loss model over the MST disks with a noise floor 10 dB below
/// the coverage threshold: `ρ_u = r_u` exactly (as in the disk limit)
/// but `cutoff_u = √10·r_u`, so interference stays a local sum.
fn local_model(t: &Topology) -> PhysModel {
    let params = PhysParams {
        alpha: 2.0,
        near_field: 1e-6,
        theta_mw: 1.0,
        noise_mw: 0.1,
        beta: 1.0,
        sigma_db: 0.0,
        shadow_seed: 0,
    };
    let power_mw: Vec<f64> = t.radii().iter().map(|&r| r * r).collect();
    PhysModel::with_params(t, params, &power_mw)
}

fn main() {
    let mut h = Harness::new("physical_kernel");
    for n in [512usize, 2_048, 4_096, 8_192] {
        let t = mst_instance(n);
        let m = local_model(&t);
        if n <= 4_096 {
            h.bench(&format!("coverage/naive/{n}"), || coverage_vector_naive(&m));
            h.bench(&format!("sinr/naive/{n}"), || sinr_interference_naive(&m));
        }
        h.bench(&format!("coverage/indexed/{n}"), || {
            let index = build_phys_index(&m);
            coverage_vector_indexed(&m, &index)
        });
        h.bench(&format!("sinr/indexed/{n}"), || {
            let index = build_phys_index(&m);
            sinr_interference_indexed(&m, &index)
        });
        // The engine-level entry point (index build included), as the
        // CLI's `--engine physical-indexed` path exercises it.
        h.bench(&format!("engine/physical-indexed/{n}"), || {
            physical_interference_vector_with(&m, true)
        });
    }
    h.finish();
}
