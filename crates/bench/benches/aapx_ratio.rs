//! T56 — Theorem 5.6: `A_apx` end to end (γ computation + decision +
//! construction) on mixed highway families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_highway::{a_apx, exponential_chain, gamma, HighwayInstance};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a_apx");
    g.sample_size(10);
    let instances: Vec<(&str, HighwayInstance)> = vec![
        ("uniform_1000", rim_workloads::uniform_highway(1000, 10.0, 7)),
        ("frag_exp", rim_workloads::fragmented_exponential(6, 32, 7)),
        ("exp_256", exponential_chain(256)),
    ];
    for (name, h) in &instances {
        g.bench_with_input(BenchmarkId::new("build", name), h, |b, h| {
            b.iter(|| a_apx(h));
        });
        g.bench_with_input(BenchmarkId::new("gamma", name), h, |b, h| {
            b.iter(|| gamma(h));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
