//! T56 — Theorem 5.6: `A_apx` end to end (γ computation + decision +
//! construction) on mixed highway families.

use rim_bench::timing::Harness;
use rim_highway::{a_apx, exponential_chain, gamma, HighwayInstance};

fn main() {
    let mut h = Harness::new("a_apx");
    let instances: Vec<(&str, HighwayInstance)> = vec![
        ("uniform_1000", rim_workloads::uniform_highway(1000, 10.0, 7)),
        ("frag_exp", rim_workloads::fragmented_exponential(6, 32, 7)),
        ("exp_256", exponential_chain(256)),
    ];
    for (name, inst) in &instances {
        h.bench(&format!("build/{name}"), || a_apx(inst));
        h.bench(&format!("gamma/{name}"), || gamma(inst));
    }
    h.finish();
}
