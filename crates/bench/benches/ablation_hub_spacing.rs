//! A1 — ablation: `A_gen` hub spacing (construction cost per spacing;
//! the interference effect is reported by the `figures` binary).

use rim_bench::timing::Harness;
use rim_highway::a_gen::a_gen_with_spacing;

fn main() {
    let mut harness = Harness::new("agen_spacing");
    let h = rim_workloads::uniform_highway(2_000, 20.0, 11);
    let delta = h.max_degree();
    let sqrt_d = (delta as f64).sqrt().ceil() as usize;
    for k in [1usize, sqrt_d, delta.max(1)] {
        harness.bench(&format!("{k}"), || a_gen_with_spacing(&h, k));
    }
    harness.finish();
}
