//! A1 — ablation: `A_gen` hub spacing (construction cost per spacing;
//! the interference effect is reported by the `figures` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_highway::a_gen::a_gen_with_spacing;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("agen_spacing");
    g.sample_size(10);
    let h = rim_workloads::uniform_highway(2_000, 20.0, 11);
    let delta = h.max_degree();
    let sqrt_d = (delta as f64).sqrt().ceil() as usize;
    for k in [1usize, sqrt_d, delta.max(1)] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| a_gen_with_spacing(&h, k));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
