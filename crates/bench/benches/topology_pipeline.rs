//! Construction bench: the topology-control pipeline across engines —
//! brute-force witness scans vs index-backed local queries vs the
//! parallel scatter — for every engine-sensitive baseline at 512–8192
//! uniform nodes.
//!
//! Claims the JSONL should witness: index-backed Gabriel and RNG beat
//! the naive `O(n·m)` witness scans by ≥ 5× at 4096 nodes, and the
//! parallel engine stacks a further multi-core factor on top at the
//! larger sizes. Instances keep constant density (side = √n / 2, about
//! 4 nodes per unit disk-area ⇒ mean degree ≈ 12.5), so per-node
//! neighborhoods — and thus the indexed per-edge work — stay flat while
//! `n` grows.

use rim_bench::timing::Harness;
use rim_core::receiver::Engine;
use rim_topology_control::Baseline;
use rim_udg::udg::unit_disk_graph;

/// The baselines with an engine-sensitive construction stage.
const ALGOS: [Baseline; 5] = [
    Baseline::Gabriel,
    Baseline::Rng,
    Baseline::Lmst,
    Baseline::Xtc,
    Baseline::Yao6,
];

fn main() {
    let mut h = Harness::new("topology_pipeline");
    for n in [512usize, 2_048, 4_096, 8_192] {
        let nodes = rim_workloads::uniform_square(n, (n as f64).sqrt() / 2.0, 3);
        let udg = unit_disk_graph(&nodes);
        for algo in ALGOS {
            for engine in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
                h.bench(&format!("{}/{}/{n}", algo.name(), engine.name()), || {
                    algo.build_with(&nodes, &udg, engine)
                });
            }
        }
    }
    h.finish();
}
