//! F1 — Figure 1: cost of the node-arrival robustness experiment
//! (both interference measures, before/after), per cluster size.

use rim_bench::experiments::fig1_robustness;
use rim_bench::timing::Harness;

fn main() {
    let mut h = Harness::new("fig1_robustness");
    for n in [50usize, 100, 200] {
        h.bench(&format!("{n}"), || fig1_robustness(&[n], 99));
    }
    h.finish();
}
