//! F1 — Figure 1: cost of the node-arrival robustness experiment
//! (both interference measures, before/after), per cluster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_bench::experiments::fig1_robustness;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_robustness");
    g.sample_size(10);
    for n in [50usize, 100, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| fig1_robustness(&[n], 99));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
