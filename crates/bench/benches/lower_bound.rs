//! T52 — Theorem 5.2: the exact branch-and-bound optimum on small
//! exponential chains (the quantity the lower bound is checked against).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_core::optimal::{min_interference_topology, SolverLimits};
use rim_highway::exponential_chain;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_optimum");
    g.sample_size(10);
    for n in [6usize, 8, 9] {
        let nodes = exponential_chain(n).node_set();
        g.bench_with_input(BenchmarkId::from_parameter(n), &nodes, |b, nodes| {
            b.iter(|| min_interference_topology(nodes, 1.0, SolverLimits::default()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
