//! T52 — Theorem 5.2: the exact branch-and-bound optimum on small
//! exponential chains (the quantity the lower bound is checked against).

use rim_bench::timing::Harness;
use rim_core::optimal::{min_interference_topology, SolverLimits};
use rim_highway::exponential_chain;

fn main() {
    let mut h = Harness::new("exact_optimum");
    for n in [6usize, 8, 9] {
        let nodes = exponential_chain(n).node_set();
        h.bench(&format!("{n}"), || {
            min_interference_topology(&nodes, 1.0, SolverLimits::default())
        });
    }
    h.finish();
}
