//! F8 — Figure 8 / Theorem 5.1: `A_exp` on exponential node chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_highway::a_exp::{a_exp, a_exp_reference};
use rim_highway::exponential_chain;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("a_exp");
    g.sample_size(10);
    for n in [64usize, 128, 256] {
        let chain = exponential_chain(n);
        g.bench_with_input(BenchmarkId::new("fast", n), &chain, |b, chain| {
            b.iter(|| a_exp(chain));
        });
        if n <= 128 {
            // The literal O(n³) algorithm, for the speedup headline.
            g.bench_with_input(BenchmarkId::new("reference", n), &chain, |b, chain| {
                b.iter(|| a_exp_reference(chain));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
