//! F8 — Figure 8 / Theorem 5.1: `A_exp` on exponential node chains.

use rim_bench::timing::Harness;
use rim_highway::a_exp::{a_exp, a_exp_reference};
use rim_highway::exponential_chain;

fn main() {
    let mut h = Harness::new("a_exp");
    for n in [64usize, 128, 256] {
        let chain = exponential_chain(n);
        h.bench(&format!("fast/{n}"), || a_exp(&chain));
        if n <= 128 {
            // The literal O(n³) algorithm, for the speedup headline.
            h.bench(&format!("reference/{n}"), || a_exp_reference(&chain));
        }
    }
    h.finish();
}
