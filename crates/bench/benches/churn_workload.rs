//! Long-horizon churn workload bench: seeded traces through the
//! incremental engine, timed **per edit** so the JSONL carries exact
//! p50/p95 per-edit latency — the SLO surface of the dynamic structure.
//!
//! Claims the JSONL should witness:
//!
//! * Per-edit latency stays flat as the horizon grows: the 10⁶-edit
//!   tier's p95 sits in the same band as the 10⁵-edit tier's, because
//!   compaction keeps the engine sized by the live population, not the
//!   edit count.
//! * Memory stays flat over a million edits: the `edits_chunked` case
//!   (which allocates no per-sample buffer proportional to the edit
//!   count) reports a `peak_rss_delta_kb` bounded by the live
//!   population, not the horizon.
//! * The obs counter deltas (`churn.*`, `dynamic.*`) ride along in each
//!   record, so compaction/rebuild counts are machine-readable next to
//!   the latency they explain.
//!
//! The tiers double as a statistical gate: on the uniform family the
//! maintained max interference must stay inside the churn-calibrated
//! √(log n) envelope at the end of every tier (see
//! `crates/churn/tests/replay_differential.rs` for the calibration).

use rim_bench::timing::{CaseMeta, Harness};
use rim_churn::{decode_snapshot, encode_snapshot, ChurnConfig, ChurnSim, Family};

/// `(target population, churn edits)` tiers; the last is the sustained
/// 10⁶-edit run at a service-sized population.
const TIERS: &[(usize, u64)] = &[(1_024, 100_000), (4_096, 1_000_000)];

/// Churn variant of `rim_core::sqrt_log_envelope`: relink ops attach
/// k-th-nearest links (k ≤ 4), lifting the constant above the pure
/// nearest-neighbor band, so the upper edge gets the same calibrated
/// 1.35× allowance the differential suite uses.
fn churn_envelope(live: usize) -> (f64, f64) {
    let (lo, hi) = rim_core::sqrt_log_envelope(live);
    (lo, hi * 1.35)
}

/// A sim bootstrapped to its target population, with `edits` ops of
/// post-bootstrap budget left — so every timed iteration is a steady
/// state churn edit, never a ramp arrival.
fn bootstrapped(cfg: ChurnConfig, edits: u64) -> ChurnSim {
    let mut sim = ChurnSim::new(cfg, edits + cfg.n0 as u64);
    for _ in 0..cfg.n0 {
        sim.step();
    }
    sim
}

fn main() {
    let mut h = Harness::new("churn_workload");
    for &(n0, edits) in TIERS {
        let cfg = ChurnConfig { family: Family::Uniform, n0, seed: 1 };

        // Flat-memory witness first (while the process watermark is
        // low): 10k-edit chunks per iteration, so the harness's own
        // sample buffer stays tiny and `peak_rss_delta_kb` reflects the
        // engine — which compaction keeps sized by the live population.
        let chunk = 10_000u64;
        let mut sim = bootstrapped(cfg, edits);
        h.bench_scaled(
            &format!("edits_chunked/{n0}"),
            CaseMeta::engine_sized("dynamic", n0 as u64),
            0,
            (edits / chunk) as u32,
            || {
                for _ in 0..chunk {
                    sim.step();
                }
                sim.graph_interference()
            },
        );
        let dead = sim.engine().len() - sim.engine().live_count();
        assert!(
            dead <= sim.engine().live_count().max(256),
            "tombstones leaked: {dead} dead vs {} live",
            sim.engine().live_count()
        );

        // Per-edit latency: one timed iteration = one edit, so the
        // JSONL p50/p95 are exact per-edit percentiles over the whole
        // horizon (warmup 0: the sim is already in steady state).
        let mut sim = bootstrapped(cfg, edits);
        h.bench_scaled(
            &format!("edit/{n0}"),
            CaseMeta::engine_sized("dynamic", n0 as u64),
            0,
            edits as u32,
            || sim.step(),
        );
        assert_eq!(sim.remaining(), 0, "budget must be fully consumed");

        // Statistical gate: the maintained maximum must end the tier
        // inside the churn-calibrated √(log n) envelope.
        let (lo, hi) = churn_envelope(sim.live_count());
        let max = sim.graph_interference() as f64;
        assert!(
            (lo..=hi).contains(&max),
            "sqrt(log n) gate violated under churn: n0={n0} edits={edits} \
             live={} max I = {max} outside [{lo:.2}, {hi:.2}]",
            sim.live_count()
        );
        println!(
            "  gate: n0={n0:>6} edits={edits:>8} live={} max I = {max} in [{lo:.2}, {hi:.2}]",
            sim.live_count()
        );

        // Snapshot codec at this population (encode from live state,
        // decode from frozen bytes — the checkpoint/restore cost a
        // long-horizon operator actually pays).
        let bytes = encode_snapshot(&sim);
        h.bench_with(
            &format!("snapshot/encode/{n0}"),
            CaseMeta::sized(n0 as u64),
            || encode_snapshot(&sim),
        );
        h.bench_with(
            &format!("snapshot/decode/{n0}"),
            CaseMeta::sized(n0 as u64),
            || decode_snapshot(&bytes).expect("own snapshot decodes"),
        );
    }
    h.finish();
}
