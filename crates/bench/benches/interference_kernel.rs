//! Kernel microbench: the receiver-centric interference engines —
//! naive `O(n²)` oracle vs indexed vs parallel vs the streaming SoA
//! kernel — plus the incremental structure on single-edge updates and
//! the batched sender-centric measure.
//!
//! Claims the JSONL should witness: the indexed engine beats the naive
//! scan from a few thousand nodes up, a single-edge update through
//! [`DynamicInterference`] beats recomputing from scratch, and the
//! streaming UDG-free path takes a uniform instance from raw
//! coordinates to the full interference vector at 10⁵–10⁷ nodes with a
//! peak-RSS footprint linear in `n` (the `peak_rss_delta_kb` field is
//! the witness that no edge list is ever materialized).
//!
//! The large tiers double as the statistical correctness gate: on
//! unit-density uniform instances the maximum receiver-centric
//! interference under nearest-neighbor radii is Θ(√(log n)) w.h.p.
//! (Devroye–Morin, arXiv:1202.5945), so each tier asserts
//! `max I ∈ [c₁·√(ln n), c₂·√(ln n)]` across three seeds — the regime
//! where the `O(n²)` differential oracle can no longer run.

use rim_bench::timing::{CaseMeta, Harness};
use rim_core::receiver::{interference_vector_naive, interference_vector_with, Engine};
use rim_core::sender::sender_graph_interference;
use rim_core::{sqrt_log_envelope, DynamicInterference, StreamInstance};
use rim_topology_control::emst::euclidean_mst;
use rim_udg::udg::unit_disk_graph;
use rim_udg::Topology;

fn mst_instance(n: usize) -> Topology {
    let nodes = rim_workloads::uniform_square(n, (n as f64).sqrt() / 10.0, 3);
    let udg = unit_disk_graph(&nodes);
    euclidean_mst(&nodes, &udg)
}

/// The large streaming tiers: `(n, warmup, timed iters)`. Iteration
/// counts shrink with `n` so the 10⁷ tier runs each phase exactly once.
const STREAM_TIERS: &[(usize, u32, u32)] = &[(100_000, 1, 3), (1_000_000, 1, 2), (10_000_000, 0, 1)];

/// Seeds the Θ(√(log n)) gate must pass at every tier.
const GATE_SEEDS: &[u64] = &[1, 2, 3];

fn main() {
    let mut h = Harness::new("interference_kernel");
    for n in [512usize, 2_048, 4_096, 8_192] {
        let t = mst_instance(n);
        if n <= 4_096 {
            h.bench_with(
                &format!("naive/{n}"),
                CaseMeta::engine_sized("naive", n as u64),
                || interference_vector_naive(&t),
            );
        }
        h.bench_with(
            &format!("indexed/{n}"),
            CaseMeta::engine_sized("indexed", n as u64),
            || interference_vector_with(&t, Engine::Indexed),
        );
        h.bench_with(
            &format!("parallel/{n}"),
            CaseMeta::engine_sized("parallel", n as u64),
            || interference_vector_with(&t, Engine::Parallel),
        );
        h.bench_with(
            &format!("streaming/{n}"),
            CaseMeta::engine_sized("streaming", n as u64),
            || StreamInstance::from_topology(&t).interference_counts(),
        );
        if n == 512 {
            h.bench_with(&format!("sender/{n}"), CaseMeta::sized(n as u64), || {
                sender_graph_interference(&t)
            });
        }
    }

    // Single-edge update at n = 4096: toggling one MST edge through the
    // incremental structure vs recomputing I(G') with the fastest batch
    // kernel. Both closures answer the same question ("what is I(G')
    // after this update?"); the batch path pays the full scatter.
    let n = 4_096usize;
    let t = mst_instance(n);
    let (eu, ev) = t.edges()[t.num_edges() / 2].pair();
    let mut d = DynamicInterference::from_topology(&t);
    h.bench_with(
        &format!("incremental/edge-update/{n}"),
        CaseMeta::sized(n as u64),
        || {
            d.remove_edge(eu, ev);
            d.insert_edge(eu, ev);
            d.graph_interference()
        },
    );
    h.bench_with(
        &format!("recompute/edge-update/{n}"),
        CaseMeta::engine_sized("indexed", n as u64),
        || rim_core::receiver::graph_interference_with(&t, Engine::Indexed),
    );

    // Million-node tiers: the UDG-free streaming path from raw
    // coordinates (nearest-neighbor radii — pointwise ≤ the MST radii,
    // so the Θ(√(log n)) envelope applies) to the interference vector.
    // `build_nn` times grid construction + NN radius assignment;
    // `count` times the sharded counting kernel alone.
    for &(n, warmup, iters) in STREAM_TIERS {
        let side = (n as f64).sqrt(); // unit density
        let soa = rim_workloads::uniform_soa(n, side, GATE_SEEDS[0]);
        h.bench_scaled(
            &format!("streaming/build_nn/{n}"),
            CaseMeta::engine_sized("streaming", n as u64),
            warmup,
            iters,
            || StreamInstance::with_nn_radii(soa.clone()),
        );
        let inst = StreamInstance::with_nn_radii(soa);
        let threads = rim_core::parallel::num_threads();
        h.bench_scaled(
            &format!("streaming/count/{n}"),
            CaseMeta::engine_sized("streaming", n as u64),
            warmup,
            iters,
            || inst.interference_counts_sharded(threads),
        );

        // Statistical gate: max I must sit inside the √(log n) envelope
        // on every seed. A violation is a correctness bug (or a broken
        // generator), so the bench aborts loudly rather than recording a
        // silently wrong timing.
        let (lo, hi) = sqrt_log_envelope(n);
        for &seed in GATE_SEEDS {
            let max = if seed == GATE_SEEDS[0] {
                f64::from(inst.max_interference())
            } else {
                let soa = rim_workloads::uniform_soa(n, side, seed);
                f64::from(StreamInstance::with_nn_radii(soa).max_interference())
            };
            assert!(
                (lo..=hi).contains(&max),
                "sqrt(log n) gate violated: n={n} seed={seed} max I = {max} outside [{lo:.2}, {hi:.2}]"
            );
            println!("  gate: n={n:>8} seed={seed} max I = {max:>2} in [{lo:.2}, {hi:.2}]");
        }
    }
    h.finish();
}
