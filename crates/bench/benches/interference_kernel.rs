//! Kernel microbench: the receiver-centric interference computation,
//! naive `O(n²)` vs grid-accelerated, plus the sender-centric measure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rim_core::receiver::{interference_vector, interference_vector_naive};
use rim_core::sender::sender_graph_interference;
use rim_topology_control::emst::euclidean_mst;
use rim_udg::udg::unit_disk_graph;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("interference_vector");
    g.sample_size(10);
    for n in [500usize, 2_000] {
        let nodes = rim_workloads::uniform_square(n, (n as f64).sqrt() / 10.0, 3);
        let udg = unit_disk_graph(&nodes);
        let t = euclidean_mst(&nodes, &udg);
        g.bench_with_input(BenchmarkId::new("grid", n), &t, |b, t| {
            b.iter(|| interference_vector(t));
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &t, |b, t| {
            b.iter(|| interference_vector_naive(t));
        });
        if n <= 500 {
            g.bench_with_input(BenchmarkId::new("sender", n), &t, |b, t| {
                b.iter(|| sender_graph_interference(t));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
