//! Kernel microbench: the receiver-centric interference engines —
//! naive `O(n²)` oracle vs indexed vs parallel — plus the incremental
//! structure on single-edge updates (against full recomputation) and
//! the batched sender-centric measure.
//!
//! Claims the JSONL should witness: the indexed engine beats the naive
//! scan from a few thousand nodes up, and a single-edge update through
//! [`DynamicInterference`] beats recomputing the topology from scratch.

use rim_bench::timing::Harness;
use rim_core::receiver::{interference_vector_naive, interference_vector_with, Engine};
use rim_core::sender::sender_graph_interference;
use rim_core::DynamicInterference;
use rim_topology_control::emst::euclidean_mst;
use rim_udg::udg::unit_disk_graph;
use rim_udg::Topology;

fn mst_instance(n: usize) -> Topology {
    let nodes = rim_workloads::uniform_square(n, (n as f64).sqrt() / 10.0, 3);
    let udg = unit_disk_graph(&nodes);
    euclidean_mst(&nodes, &udg)
}

fn main() {
    let mut h = Harness::new("interference_kernel");
    for n in [512usize, 2_048, 4_096, 8_192] {
        let t = mst_instance(n);
        if n <= 4_096 {
            h.bench(&format!("naive/{n}"), || interference_vector_naive(&t));
        }
        h.bench(&format!("indexed/{n}"), || {
            interference_vector_with(&t, Engine::Indexed)
        });
        h.bench(&format!("parallel/{n}"), || {
            interference_vector_with(&t, Engine::Parallel)
        });
        if n == 512 {
            h.bench(&format!("sender/{n}"), || sender_graph_interference(&t));
        }
    }

    // Single-edge update at n = 4096: toggling one MST edge through the
    // incremental structure vs recomputing I(G') with the fastest batch
    // kernel. Both closures answer the same question ("what is I(G')
    // after this update?"); the batch path pays the full scatter.
    let n = 4_096usize;
    let t = mst_instance(n);
    let (eu, ev) = t.edges()[t.num_edges() / 2].pair();
    let mut d = DynamicInterference::from_topology(&t);
    h.bench(&format!("incremental/edge-update/{n}"), || {
        d.remove_edge(eu, ev);
        d.insert_edge(eu, ev);
        d.graph_interference()
    });
    h.bench(&format!("recompute/edge-update/{n}"), || {
        rim_core::receiver::graph_interference_with(&t, Engine::Indexed)
    });
    h.finish();
}
