//! Kernel microbench: the receiver-centric interference computation,
//! naive `O(n²)` vs grid-accelerated, plus the sender-centric measure.

use rim_bench::timing::Harness;
use rim_core::receiver::{interference_vector, interference_vector_naive};
use rim_core::sender::sender_graph_interference;
use rim_topology_control::emst::euclidean_mst;
use rim_udg::udg::unit_disk_graph;

fn main() {
    let mut h = Harness::new("interference_vector");
    for n in [500usize, 2_000] {
        let nodes = rim_workloads::uniform_square(n, (n as f64).sqrt() / 10.0, 3);
        let udg = unit_disk_graph(&nodes);
        let t = euclidean_mst(&nodes, &udg);
        h.bench(&format!("grid/{n}"), || interference_vector(&t));
        h.bench(&format!("naive/{n}"), || interference_vector_naive(&t));
        if n <= 500 {
            h.bench(&format!("sender/{n}"), || sender_graph_interference(&t));
        }
    }
    h.finish();
}
