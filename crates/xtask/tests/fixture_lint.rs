//! End-to-end lint run over the `tests/fixtures/mini` workspace: every
//! rule fires exactly where the fixture plants a violation, the pragma
//! suppresses, and the JSONL output matches the committed snapshot.

use std::path::Path;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

#[test]
fn fixture_fires_every_rule_at_known_sites() {
    let diags = rim_xtask::run_lint(&fixture_root()).expect("fixture lint must run");
    let got: Vec<(&str, &str, u32)> = diags
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    let want = [
        ("external-dependency", "Cargo.toml", 11),
        ("unused-dependency", "Cargo.toml", 11),
        ("bench-target", "Cargo.toml", 13),
        ("forbid-unsafe", "crates/core/src/lib.rs", 1),
        ("undeclared-dependency", "crates/core/src/lib.rs", 1),
        ("dead-pub", "crates/core/src/lib.rs", 8),
        ("pub-doc-coverage", "crates/core/src/lib.rs", 8),
        ("unknown-pragma-rule", "crates/core/src/lib.rs", 10),
        ("float-eq", "src/lib.rs", 5),
        ("squared-distance-mismatch", "src/lib.rs", 10),
        ("no-unwrap-in-lib", "src/lib.rs", 15),
        ("engine-determinism", "src/lib.rs", 32),
        ("power-domain-mismatch", "src/lib.rs", 37),
    ];
    assert_eq!(got, want, "full diagnostics: {diags:#?}");
}

#[test]
fn pragma_suppresses_the_annotated_comparison() {
    // src/lib.rs:21 has `x == 2.0` under a `// rim-lint: allow(float-eq)`
    // pragma; no diagnostic may point there.
    let diags = rim_xtask::run_lint(&fixture_root()).expect("fixture lint must run");
    assert!(
        !diags.iter().any(|d| d.file == "src/lib.rs" && d.line == 21),
        "pragma failed to suppress: {diags:#?}"
    );
}

#[test]
fn jsonl_output_matches_snapshot() {
    let diags = rim_xtask::run_lint(&fixture_root()).expect("fixture lint must run");
    let got: String = diags.iter().map(|d| d.jsonl() + "\n").collect();
    let snapshot_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini.snapshot.jsonl");
    let want = std::fs::read_to_string(&snapshot_path).expect("snapshot file must exist");
    assert_eq!(
        got, want,
        "JSONL output drifted from tests/fixtures/mini.snapshot.jsonl"
    );
}
