//! End-to-end coverage of the `rim-xtask` command line: rule-name
//! validation for `--rule`/`--explain`, the `graph` exporter producing
//! a non-empty JSONL file, the `graph --check` staleness gate, and the
//! `lint --profile` per-rule timing report.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rim-xtask"))
}

fn workspace_root() -> std::path::PathBuf {
    rim_xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the crate dir")
}

#[test]
fn explain_prints_the_registered_explanation() {
    let out = bin().args(["lint", "--explain", "panic-freedom"]).output().expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("panic-freedom:"), "{text}");
    assert!(text.contains("panic-free root set"), "{text}");
}

#[test]
fn unknown_rule_names_are_rejected_up_front() {
    for args in [["lint", "--rule", "no-such-rule"], ["lint", "--explain", "panic_freedom"]] {
        let out = bin().args(args).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        // The error names the offender and lists the catalog.
        assert!(err.contains("unknown rule"), "{err}");
        assert!(err.contains("float-eq") && err.contains("dead-pub"), "{err}");
    }
}

#[test]
fn rule_filter_keeps_the_workspace_clean_run() {
    let out = bin()
        .args(["lint", "--rule", "panic-freedom", "--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("clean"), "{out:?}");
}

#[test]
fn graph_writes_nonempty_jsonl() {
    let dir = std::env::temp_dir().join(format!("rim-xtask-graph-{}", std::process::id()));
    let out_path = dir.join("callgraph.jsonl");
    let out = bin()
        .arg("graph")
        .arg("--root")
        .arg(workspace_root())
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&out_path).expect("graph file written");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(text.lines().count() > 400, "suspiciously small graph export");
    assert!(text.lines().any(|l| l.contains("\"type\":\"fn\"")));
    assert!(text.lines().any(|l| l.contains("\"type\":\"edge\"")));
    assert!(
        text.lines().any(|l| l.contains("interference_vector_naive")),
        "the retained oracle must appear in the export"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("rim-xtask graph:"), "{err}");
}

#[test]
fn graph_check_passes_on_fresh_and_fails_on_stale() {
    let dir = std::env::temp_dir().join(format!("rim-xtask-check-{}", std::process::id()));
    let out_path = dir.join("callgraph.jsonl");
    let write = bin()
        .arg("graph")
        .arg("--root")
        .arg(workspace_root())
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(write.status.success(), "{write:?}");
    // Freshly written file: --check must pass.
    let fresh = bin()
        .args(["graph", "--check", "--root"])
        .arg(workspace_root())
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert!(fresh.status.success(), "{fresh:?}");
    assert!(String::from_utf8_lossy(&fresh.stderr).contains("up to date"), "{fresh:?}");
    // Corrupted file: --check must fail and must not rewrite it.
    std::fs::write(&out_path, "{\"type\":\"fn\"}\n").expect("truncate");
    let stale = bin()
        .args(["graph", "--check", "--root"])
        .arg(workspace_root())
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("spawn");
    assert_eq!(stale.status.code(), Some(1), "{stale:?}");
    assert!(String::from_utf8_lossy(&stale.stderr).contains("stale"), "{stale:?}");
    let after = std::fs::read_to_string(&out_path).expect("file still there");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(after, "{\"type\":\"fn\"}\n", "--check must not rewrite the file");
}

#[test]
fn lint_profile_reports_per_rule_wall_clock() {
    let out = bin()
        .args(["lint", "--profile", "--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("per-rule wall-clock"), "{err}");
    for span in [
        "lint.model_build",
        "lint.flow_analyze",
        "lint.rule.panic_freedom",
        "lint.rule.squared_distance_dataflow",
        "lint.rule.engine_determinism",
        "lint.token_rules",
    ] {
        assert!(err.contains(span), "missing span `{span}` in:\n{err}");
    }
    assert!(err.contains("ms"), "{err}");
    assert!(err.contains("clean"), "profiling must not change the verdict: {err}");
}
