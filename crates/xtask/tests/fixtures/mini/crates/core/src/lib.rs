use demo::check;

/// Returns seven.
pub fn seven() -> u32 {
    7
}

pub fn undocumented() {}

// rim-lint: allow(not-a-rule)
