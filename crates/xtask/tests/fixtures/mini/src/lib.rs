#![forbid(unsafe_code)]

/// Exact equality — deliberately wrong for the fixture.
pub fn check(x: f64) -> bool {
    x == 1.0
}

/// Mixed powers — deliberately wrong for the fixture.
pub fn nearby(d: f64, r: f64) -> bool {
    d * d <= r
}

/// Panics — deliberately wrong for the fixture.
pub fn boom(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// Suppressed by pragma.
pub fn quiet(x: f64) -> bool {
    // rim-lint: allow(float-eq)
    x == 2.0
}

/// Uses the sibling crate.
pub fn ok() -> u32 {
    demo_core::seven()
}

/// Determinism-pinned engine root that reads the wall clock —
/// deliberately wrong for the fixture.
pub fn interference_vector_with(n: u64) -> u64 {
    n + std::time::Instant::now().elapsed().as_nanos() as u64
}

/// Mixed power domains — deliberately wrong for the fixture.
pub fn budget(signal_mw: f64, noise_dbm: f64) -> bool {
    signal_mw < noise_dbm
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture_items_are_exercised() {
        let _ = (super::check(1.0), super::nearby(1.0, 2.0), super::quiet(2.0));
        let _ = (super::boom(Some(3)), super::ok());
        let _ = super::interference_vector_with(1);
        let _ = super::budget(1.0, -90.0);
    }
}
