//! Self-test and fuzz coverage for the expression parser: every `fn`
//! body in the repository must parse with **zero** error nodes and
//! zero skipped bodies, random token soup must never panic, and
//! well-formed expressions must round-trip pretty-print → reparse
//! with identical shape (precedence preserved).

use rim_rng::{prop, prop_ensure, prop_ensure_eq, SmallRng};
use rim_xtask::expr::{self, Expr, ExprKind};
use rim_xtask::lexer;
use rim_xtask::parse::{self, ItemKind};
use std::path::{Path, PathBuf};

/// Every `.rs` file under the repository root, skipping build output
/// and VCS internals — fixture workspaces included: the parser must
/// handle everything we keep in tree.
fn rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" && name != "results" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn workspace_root() -> PathBuf {
    rim_xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the crate dir")
}

#[test]
fn every_workspace_fn_body_parses_with_zero_errors() {
    let files = rs_files(&workspace_root());
    assert!(files.len() > 40, "suspiciously few source files: {}", files.len());
    let (mut bodies, mut opaque) = (0usize, 0usize);
    for path in &files {
        let src = std::fs::read_to_string(path).expect("source file readable");
        let tokens = lexer::lex(&src);
        let tree = parse::parse_items(&tokens);
        let mut fns = Vec::new();
        tree.walk(&mut |item, _| {
            if item.kind == ItemKind::Fn && item.body.1 > item.body.0 {
                fns.push(item.body);
            }
        });
        for body_range in fns {
            let body = expr::parse_fn_body(&tokens, body_range);
            assert_eq!(
                body.errors,
                0,
                "expression parse errors in {} body at tokens {:?}:\n{:#?}",
                path.display(),
                body_range,
                body.block
            );
            bodies += 1;
            opaque += body.opaque_macros;
        }
    }
    // Zero skipped bodies: every parsed `fn` body is accounted for.
    assert!(bodies > 400, "only {bodies} fn bodies parsed; item parser degenerated?");
    // Opaque macro fallbacks must stay the rare exception, not the rule.
    assert!(
        opaque * 50 < bodies,
        "{opaque} opaque macro invocations over {bodies} bodies — the \
         best-effort macro argument parser regressed"
    );
}

/// Vocabulary for token-soup fuzzing: everything the grammar reacts
/// to, plus some it must survive.
const SOUP: &[&str] = &[
    "let", "if", "else", "while", "for", "in", "match", "loop", "return", "break", "continue",
    "move", "fn", "struct", "impl", "const", "unsafe", "mut", "x", "y", "dist", "len", "Some",
    "0", "1", "2.5", "\"s\"", "'a", "(", ")", "[", "]", "{", "}", "+", "-", "*", "/", "%", "=",
    "==", "!=", "<", ">", "<=", ">=", "&&", "||", "&", "|", "^", "!", "?", ".", "..", "..=",
    "::", ",", ";", ":", "->", "=>", "#", "@", "$", "~", "<<", ">>", "+=", "vec",
];

#[test]
fn random_token_soup_never_panics() {
    prop::check(
        "expr-token-soup",
        300,
        |rng: &mut SmallRng| {
            let n = rng.gen_range(0..120usize);
            (0..n).map(|_| SOUP[rng.gen_range(0..SOUP.len())]).collect::<Vec<_>>().join(" ")
        },
        |src| {
            let tokens = lexer::lex(src);
            let body = expr::parse_fn_body(&tokens, (0, tokens.len()));
            // Termination + bounded damage: recovery can't emit more
            // errors than there are tokens.
            prop_ensure!(
                body.errors <= tokens.len() + 1,
                "{} errors from {} tokens",
                body.errors,
                tokens.len()
            );
            Ok(())
        },
    );
}

/// Random well-formed expression ASTs for the round-trip property.
fn gen_expr(rng: &mut SmallRng, depth: usize) -> Expr {
    let e = |kind| Expr { line: 1, kind };
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..4u32) {
            0 => e(ExprKind::Int(rng.gen_range(0..100u32).to_string())),
            1 => e(ExprKind::Path(vec!["x".into()])),
            2 => e(ExprKind::Path(vec!["dist".into()])),
            _ => e(ExprKind::Path(vec!["n".into()])),
        };
    }
    let child = |rng: &mut SmallRng| Box::new(gen_expr(rng, depth - 1));
    match rng.gen_range(0..8u32) {
        0 => {
            let ops = ["+", "-", "*", "/", "==", "<", "<=", "&&", "||", "&", "^", "<<"];
            let op = ops[rng.gen_range(0..ops.len())].to_string();
            e(ExprKind::Binary(op, child(rng), child(rng)))
        }
        1 => {
            let ops = ["-", "!", "*", "&"];
            let op = ops[rng.gen_range(0..ops.len())].to_string();
            e(ExprKind::Unary(op, child(rng)))
        }
        2 => {
            let argc = rng.gen_range(0..3usize);
            let args = (0..argc).map(|_| gen_expr(rng, depth - 1)).collect();
            e(ExprKind::Call(Box::new(e(ExprKind::Path(vec!["f".into()]))), args))
        }
        3 => {
            let argc = rng.gen_range(0..2usize);
            let args = (0..argc).map(|_| gen_expr(rng, depth - 1)).collect();
            e(ExprKind::MethodCall(child(rng), "m".into(), args))
        }
        4 => e(ExprKind::Index(child(rng), child(rng))),
        5 => e(ExprKind::Field(child(rng), "w".into())),
        6 => e(ExprKind::Try(child(rng))),
        _ => e(ExprKind::Assign("=".into(), Box::new(e(ExprKind::Path(vec!["x".into()]))), child(rng))),
    }
}

#[test]
fn pretty_printed_expressions_reparse_with_identical_shape() {
    prop::check(
        "expr-pretty-round-trip",
        400,
        |rng: &mut SmallRng| {
            let depth = rng.gen_range(1..5usize);
            gen_expr(rng, depth)
        },
        |ast| {
            let printed = ast.pretty();
            let body = expr::parse_source_body(&printed);
            prop_ensure!(body.errors == 0, "parse errors reparsing {printed:?}");
            let reparsed = match (&body.block.tail, body.block.stmts.first()) {
                (Some(t), _) => (**t).clone(),
                (None, Some(rim_xtask::expr::Stmt::Expr(e, _))) => e.clone(),
                _ => return Err(format!("no expression found reparsing {printed:?}")),
            };
            prop_ensure_eq!(format!("{} via {printed:?}", ast.sexpr()), format!("{} via {printed:?}", reparsed.sexpr()));
            Ok(())
        },
    );
}
