//! The workspace gates itself: linting the real repository must be
//! clean. Introducing an `f64 ==`, a panicking library path, or an
//! undeclared/external dependency makes this test (and therefore
//! `cargo test -q`) fail.

use std::path::Path;

#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask always sits two levels below the workspace root");
    let diags = rim_xtask::run_lint(root).expect("lint must run on the real workspace");
    let rendered: Vec<String> = diags.iter().map(|d| d.human()).collect();
    assert!(
        diags.is_empty(),
        "workspace lint found {} diagnostic(s):\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
