//! The parser's robustness contract, enforced end-to-end:
//!
//! * **Self-test** — every `.rs` file in this repository must lex and
//!   parse with zero skipped tokens and balanced braces. The item
//!   parser is the foundation of the call graph and every graph-driven
//!   lint, so "parses our own workspace losslessly" is the minimum bar
//!   for trusting its output.
//! * **Fuzz** — seeded property tests feed adversarial token soup
//!   (unbalanced nesting, raw strings, macros, stray punctuation) and
//!   verify the parser never panics, plus a well-formed generator whose
//!   item count the parser must reproduce exactly.

use std::fs;
use std::path::{Path, PathBuf};

use rim_rng::{prop, prop_ensure, prop_ensure_eq, SmallRng};
use rim_xtask::lexer;
use rim_xtask::parse::{parse_items, ItemKind};

/// Collects every `.rs` file under `dir`, skipping build products and
/// VCS internals.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "results") {
                continue;
            }
            rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_file_parses_losslessly() {
    let root = rim_xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let mut files = Vec::new();
    rs_files(&root, &mut files);
    assert!(
        files.len() > 30,
        "suspiciously few .rs files under {}: {}",
        root.display(),
        files.len()
    );
    for path in files {
        let src = fs::read_to_string(&path).expect("readable source");
        let tokens = lexer::lex(&src);
        // Braces must balance in the lexed stream: strings, chars, and
        // comments are single tokens, so every `{`/`}` left is code.
        let open = tokens.iter().filter(|t| t.text == "{").count();
        let close = tokens.iter().filter(|t| t.text == "}").count();
        assert_eq!(open, close, "unbalanced braces in {}", path.display());

        let tree = parse_items(&tokens);
        assert_eq!(
            tree.skipped,
            0,
            "parser dropped {} token(s) in {}",
            tree.skipped,
            path.display()
        );
        // Every parsed span must be a well-formed range into the token
        // vector, with the body inside the item.
        tree.walk(&mut |item, _| {
            let (s0, s1) = item.span;
            let (b0, b1) = item.body;
            assert!(s0 <= s1 && s1 <= tokens.len(), "bad span in {}", path.display());
            assert!(b0 <= b1 && b1 <= s1.max(b1), "bad body in {}", path.display());
        });
    }
}

#[test]
fn workspace_files_contain_the_expected_item_shapes() {
    // Spot-check the parser against known facts of this repository, so
    // a silently-degenerate parse (everything skipped into one opaque
    // span) cannot pass the lossless test above.
    let root = rim_xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let src = fs::read_to_string(root.join("crates/xtask/src/parse.rs")).expect("parse.rs");
    let tree = parse_items(&lexer::lex(&src));
    let mut fns = 0usize;
    let mut impls = 0usize;
    tree.walk(&mut |item, _| match item.kind {
        ItemKind::Fn => fns += 1,
        ItemKind::Impl => impls += 1,
        _ => {}
    });
    assert!(fns >= 10, "parse.rs should define many fns, found {fns}");
    assert!(impls >= 2, "parse.rs should have impl blocks, found {impls}");
}

/// Vocabulary for adversarial token soup: item keywords, every
/// delimiter (deliberately unbalanced), raw strings with braces inside,
/// macros, lifetimes, char literals, comments.
const SOUP: &[&str] = &[
    "fn", "struct", "enum", "impl", "trait", "mod", "pub", "crate", "where", "match", "move",
    "for", "in", "macro_rules", "use", "const", "static", "type", "unsafe", "extern", "dyn",
    "{", "}", "(", ")", "[", "]", "<", ">", "::", ";", ",", "=>", "->", "#", "!", "=", ".", "&",
    "|", "'a", "'x'", "x", "Widget", "0", "1.5", "\"str { not a brace\"", "r#\"raw \" } brace\"#",
    "// line comment\n", "/// doc { comment\n", "/* block } comment */",
];

#[test]
fn parser_never_panics_on_token_soup() {
    prop::check(
        "parser_never_panics_on_token_soup",
        512,
        |rng: &mut SmallRng| {
            let n = rng.gen_range(0usize..150);
            let mut src = String::new();
            for _ in 0..n {
                src.push_str(SOUP[rng.gen_range(0usize..SOUP.len())]);
                src.push(if rng.gen_bool(0.15) { '\n' } else { ' ' });
            }
            src
        },
        |src| {
            let tokens = lexer::lex(src);
            let tree = parse_items(&tokens);
            prop_ensure!(
                tree.skipped <= tokens.len(),
                "skipped {} of {} tokens",
                tree.skipped,
                tokens.len()
            );
            // The walk must terminate and stay within the token vector.
            let mut visited = 0usize;
            tree.walk(&mut |item, _| {
                visited += 1;
                prop_ensure_hold(item.span.1 <= tokens.len());
            });
            prop_ensure!(visited <= tokens.len() + 1, "more items than tokens");
            Ok(())
        },
    );
}

/// `prop_ensure!` cannot early-return from inside the walk closure;
/// panicking there still fails the property with the case report.
fn prop_ensure_hold(cond: bool) {
    assert!(cond, "item span exceeds token vector");
}

#[test]
fn well_formed_nested_items_parse_losslessly() {
    fn gen_items(rng: &mut SmallRng, depth: usize, next: &mut usize, src: &mut String) -> usize {
        let mut count = 0usize;
        for _ in 0..rng.gen_range(1usize..4) {
            let id = *next;
            *next += 1;
            count += 1;
            if depth < 3 && rng.gen_bool(0.35) {
                src.push_str(&format!("mod m{id} {{\n"));
                count += gen_items(rng, depth + 1, next, src);
                src.push_str("}\n");
            } else {
                match rng.gen_range(0usize..5) {
                    0 => src.push_str(&format!(
                        "pub fn f{id}(x: Vec<u32>) -> u32 {{ x[0] + x.len() as u32 }}\n"
                    )),
                    1 => src.push_str(&format!("struct S{id} {{ x: u32, y: Vec<(u8, u8)> }}\n")),
                    2 => src.push_str(&format!("macro_rules! mac{id} {{ () => {{ 0 }}; }}\n")),
                    3 => {
                        // Raw string with braces and quotes inside the body.
                        src.push_str(&format!("fn f{id}() {{ let s = "));
                        src.push_str("r#\"{ not \" a brace }\"#; assert!(!s.is_empty()); }\n");
                    }
                    _ => src.push_str(&format!(
                        "impl Widget {{ fn m{id}(&self) -> &'static str {{ \"w\" }} }}\n"
                    )),
                }
                // The impl arm introduces a nested method item.
                if src.ends_with("\"w\" } }\n") {
                    count += 1;
                }
            }
        }
        count
    }

    prop::check(
        "well_formed_nested_items_parse_losslessly",
        256,
        |rng: &mut SmallRng| {
            let mut src = String::new();
            let mut next = 0usize;
            let expected = gen_items(rng, 0, &mut next, &mut src);
            (src, expected)
        },
        |(src, expected)| {
            let tokens = lexer::lex(src);
            let tree = parse_items(&tokens);
            prop_ensure_eq!(tree.skipped, 0usize);
            let mut visited = 0usize;
            tree.walk(&mut |_, _| visited += 1);
            prop_ensure_eq!(visited, *expected);
            Ok(())
        },
    );
}
