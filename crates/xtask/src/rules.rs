//! Lint rules over the lexed token stream.
//!
//! Every rule is lexical: no type information, no parse tree. Each
//! heuristic is tuned so the *workspace's idioms* stay clean and the
//! mistakes the rules exist to catch (exact float comparison, mixing a
//! squared distance against an unsquared radius, panicking library
//! paths) fire reliably. Intentional violations are silenced in place
//! with `// rim-lint: allow(<rule>)` pragmas, which keeps every
//! exception visible at the site that needs it.

use crate::lexer::{lex, Kind, Token};
use crate::Diagnostic;

/// The rule registry: every diagnostic name the workspace can emit,
/// with a one-line explanation. Shared by pragma validation (an
/// `allow(...)` naming an unknown rule is itself a finding), the CLI's
/// `--rule` filter, and `--explain`.
pub const RULE_CATALOG: &[(&str, &str)] = &[
    (
        "float-eq",
        "`==`/`!=` on a floating-point quantity; use an ordering predicate, \
         `total_cmp`, or an explicit tolerance",
    ),
    (
        "squared-distance-mismatch",
        "a comparison or add/sub mixes a squared quantity with an unsquared \
         distance or radius; both sides must live at the same metric power \
         (checked by the units-of-measure dataflow pass and a legacy token \
         scanner kept in agreement)",
    ),
    (
        "power-domain-mismatch",
        "a comparison or add/sub mixes linear milliwatts (`*_mw`) with \
         log-domain dBm/dB (`*_dbm`, `*_db`); convert through \
         `dbm_to_mw`/`db_to_linear` before combining (checked by the \
         units-of-measure dataflow pass)",
    ),
    (
        "engine-determinism",
        "a function reachable from a determinism-pinned root (the \
         interference kernel, pipeline stages, the topology builders) \
         performs an atomic read-modify-write, RNG draw, wall-clock read, or \
         observability-sink installation; thread-count invariance requires \
         bitwise-deterministic results",
    ),
    (
        "no-unwrap-in-lib",
        "`.unwrap()`, `.expect()`, or a panicking macro in non-test library \
         code; propagate the error or justify with a pragma",
    ),
    (
        "forbid-unsafe",
        "a crate root is missing `#![forbid(unsafe_code)]`",
    ),
    (
        "pub-doc-coverage",
        "a public item of the model crates (rim-core, rim-highway) has no \
         doc comment",
    ),
    (
        "panic-freedom",
        "a function reachable from the panic-free root set (the interference \
         kernel, dynamic updates, the parallel executor, pipeline stages) \
         contains a panicking construct: `panic!`-family macros, \
         `.unwrap()`/`.expect()`, slice indexing, or unchecked length \
         subtraction",
    ),
    (
        "atomic-ordering",
        "an `Ordering::Relaxed`/`Ordering::SeqCst` use in rim-par/rim-obs \
         lacks a one-line soundness justification comment naming the ordering",
    ),
    (
        "lock-discipline",
        "a `.lock()` guard is held across `par_map_ranges`/`parallel_map`, or \
         the same lock is taken twice in one scope",
    ),
    (
        "dead-pub",
        "a `pub` item has zero references anywhere in the workspace (tests \
         and benches included); demote it or remove it",
    ),
    (
        "unknown-pragma-rule",
        "a `// rim-lint: allow(...)` pragma names a rule that is not in the \
         registry, so it suppresses nothing",
    ),
    (
        "external-dependency",
        "a manifest declares a dependency that is neither a workspace crate \
         nor on the (empty) external allowlist; the build must stay hermetic",
    ),
    (
        "unused-dependency",
        "a declared dependency is never referenced in the crate's sources",
    ),
    (
        "undeclared-dependency",
        "sources reference a crate the manifest does not declare",
    ),
    (
        "bench-target",
        "a `[[bench]]` entry and `benches/*.rs` are out of sync, or a bench \
         target is missing `harness = false`",
    ),
    (
        "naive-oracle-retained",
        "a retained brute-force oracle is no longer reachable from any test; \
         the differential suites must keep exercising the naive references",
    ),
    (
        "obs-no-op-default",
        "library code installs an observability recorder; only the CLI and \
         the bench harness may enable a sink",
    ),
    (
        "stage-timing-e2e-retained",
        "a retained CLI end-to-end test for per-stage timing/`--obs` output \
         is gone",
    ),
];

/// Is `name` a registered rule?
pub fn rule_known(name: &str) -> bool {
    RULE_CATALOG.iter().any(|(n, _)| *n == name)
}

/// The registry explanation for `name`, if registered.
pub fn rule_explanation(name: &str) -> Option<&'static str> {
    RULE_CATALOG.iter().find(|(n, _)| *n == name).map(|(_, e)| *e)
}

/// Identifiers that suggest a comparison operand is floating-point.
/// Domain-specific names (`dist`, `radius`, `weight`, …) are included
/// because this workspace stores every one of them as `f64`.
const FLOAT_HINT_IDENTS: &[&str] = &[
    "f64",
    "f32",
    "dist",
    "dist_sq",
    "distance",
    "weight",
    "radius",
    "norm",
    "norm_sq",
    "INFINITY",
    "NEG_INFINITY",
    "NAN",
    "EPSILON",
    "MIN_POSITIVE",
];

/// Identifiers that denote an *unsquared* metric quantity. Kept as an
/// explicit list (rather than every power-1 name the unit inferencer
/// knows) because the token scanner has no dataflow to rule out
/// loop-variable shorthands like `d`; the dataflow pass in
/// [`crate::flow`] covers the wider net.
const PLAIN_DIST_IDENTS: &[&str] = &["dist", "distance", "radius", "r"];

/// Counter-evidence that a comparison is on integers after all: an
/// integer-typed name or literal in the window (`dist[v] == usize::MAX`
/// is the BFS hop-count idiom, not a float comparison).
const INT_HINT_IDENTS: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
    "len", "count",
];

/// Parsed suppression pragmas for one file.
pub struct Pragmas {
    /// `(rule, line)` pairs: suppress `rule` on `line` and `line + 1`.
    line_allows: Vec<(String, u32)>,
    /// Rules suppressed for the whole file.
    file_allows: Vec<String>,
    /// `(name, line)` of pragma arguments that are not registered rules.
    unknown: Vec<(String, u32)>,
}

impl Pragmas {
    /// Extracts pragmas from comment tokens. Grammar:
    /// `// rim-lint: allow(rule-a, rule-b)` (same + next line) and
    /// `// rim-lint: allow-file(rule-a)` (whole file).
    pub fn parse(tokens: &[Token]) -> Pragmas {
        let mut line_allows = Vec::new();
        let mut file_allows = Vec::new();
        let mut unknown = Vec::new();
        for t in tokens {
            // Plain line comments only: doc comments *describe* the
            // pragma grammar (`allow(<rule>)` in rustdoc examples) and
            // must neither suppress nor trip `unknown-pragma-rule`.
            if t.kind != Kind::Comment {
                continue;
            }
            let Some(rest) = t.text.find("rim-lint:").map(|p| &t.text[p + 9..]) else {
                continue;
            };
            let rest = rest.trim_start();
            let (file_scope, args) = if let Some(a) = rest.strip_prefix("allow-file(") {
                (true, a)
            } else if let Some(a) = rest.strip_prefix("allow(") {
                (false, a)
            } else {
                continue;
            };
            let Some(end) = args.find(')') else { continue };
            for rule in args[..end].split(',') {
                let rule = rule.trim().to_string();
                if rule.is_empty() {
                    continue;
                }
                // An unregistered name suppresses nothing; record it so
                // `unknown-pragma-rule` can flag the typo.
                if !rule_known(&rule) {
                    unknown.push((rule, t.line));
                    continue;
                }
                if file_scope {
                    file_allows.push(rule);
                } else {
                    line_allows.push((rule, t.line));
                }
            }
        }
        Pragmas { line_allows, file_allows, unknown }
    }

    /// Pragma arguments that named unregistered rules.
    pub fn unknown_rules(&self) -> &[(String, u32)] {
        &self.unknown
    }

    /// Is `rule` suppressed at `line`?
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.file_allows.iter().any(|r| r == rule)
            || self
                .line_allows
                .iter()
                .any(|(r, l)| r == rule && (line == *l || line == *l + 1))
    }
}

/// Context handed to each rule: one file, lexed once.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    /// Token stream (comments included).
    pub tokens: &'a [Token],
    /// Suppression pragmas.
    pub pragmas: &'a Pragmas,
    /// Token-index ranges covered by `#[cfg(test)] mod … { … }`.
    pub test_mod_ranges: &'a [(usize, usize)],
}

impl FileCtx<'_> {
    fn emit(&self, out: &mut Vec<Diagnostic>, rule: &'static str, line: u32, message: String) {
        if self.pragmas.allows(rule, line) {
            return;
        }
        out.push(Diagnostic {
            rule,
            file: self.path.to_string(),
            line,
            message,
        });
    }

    fn in_test_mod(&self, idx: usize) -> bool {
        self.test_mod_ranges.iter().any(|&(a, b)| idx >= a && idx < b)
    }
}

/// Lexes a file and computes everything the rules need.
pub fn prepare(src: &str) -> (Vec<Token>, Vec<(usize, usize)>) {
    let tokens = lex(src);
    let ranges = test_mod_ranges(&tokens);
    (tokens, ranges)
}

/// Finds token-index ranges of `#[cfg(test)] mod name { … }` bodies by
/// brace matching, so library rules can skip inline test code.
fn test_mod_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        // Match `# [ cfg ( test ) ]` allowing extra args like
        // `cfg(all(test, …))` by just requiring `test` within the group.
        if code[i].1.text == "#"
            && i + 2 < code.len()
            && code[i + 1].1.text == "["
            && code[i + 2].1.text == "cfg"
        {
            // Find the closing `]` of the attribute.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut saw_test = false;
            while j < code.len() {
                match code[j].1.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_test && j + 1 < code.len() && code[j + 1].1.text == "mod" {
                // Skip to the opening brace, then to its match.
                let mut k = j + 1;
                while k < code.len() && code[k].1.text != "{" && code[k].1.text != ";" {
                    k += 1;
                }
                if k < code.len() && code[k].1.text == "{" {
                    let mut bd = 0i32;
                    let mut m = k;
                    while m < code.len() {
                        match code[m].1.text.as_str() {
                            "{" => bd += 1,
                            "}" => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    let end = if m < code.len() { code[m].0 + 1 } else { tokens.len() };
                    ranges.push((code[i].0, end));
                    i = code.len().min(m + 1);
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Tokens that delimit a comparison operand at nesting depth 0.
fn is_window_stop(text: &str) -> bool {
    matches!(
        text,
        "," | ";" | "{" | "}" | "&&" | "||" | "=" | "=>" | "return" | "if" | "while" | "assert"
            | "debug_assert" | "<" | "<=" | ">" | ">=" | "==" | "!="
    )
}

/// Collects the operand window on one side of the comparison at token
/// index `op`, skipping comments and balancing `()`/`[]` so method
/// calls and index expressions stay inside the window. `dir` is `-1`
/// for the left operand, `+1` for the right.
fn operand_window<'a>(tokens: &'a [Token], op: usize, dir: i64) -> Vec<&'a Token> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut i = op as i64 + dir;
    let mut steps = 0;
    while i >= 0 && (i as usize) < tokens.len() && steps < 40 {
        let t = &tokens[i as usize];
        i += dir;
        if matches!(t.kind, Kind::Comment | Kind::DocComment) {
            continue;
        }
        steps += 1;
        let (open, close) = if dir < 0 { (")", "(") } else { ("(", ")") };
        let (bopen, bclose) = if dir < 0 { ("]", "[") } else { ("[", "]") };
        if t.text == open || t.text == bopen {
            depth += 1;
            out.push(t);
            continue;
        }
        if t.text == close || t.text == bclose {
            if depth == 0 {
                break; // enclosing group: operand ends here
            }
            depth -= 1;
            out.push(t);
            continue;
        }
        if depth == 0 && t.kind == Kind::Punct && is_window_stop(&t.text) {
            break;
        }
        if depth == 0 && t.kind == Kind::Ident && is_window_stop(&t.text) {
            break;
        }
        out.push(t);
    }
    if dir < 0 {
        // Collected right-to-left; restore source order so sequence
        // checks (`powi ( 2 )`) see the tokens as written.
        out.reverse();
    }
    out
}

/// `float-eq`: `==` / `!=` where an operand looks floating-point.
///
/// Def 3.1's closed predicate is `dist(u,v) <= r_u` — *ordering*
/// comparisons on distances are the model; exact *equality* on floats
/// is almost always a bug (ties must go through `total_cmp` or an
/// explicit epsilon, and say so with a pragma).
pub fn float_eq(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let declared = declared_float_idents(ctx.tokens);
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != Kind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let mut window = operand_window(ctx.tokens, i, -1);
        window.extend(operand_window(ctx.tokens, i, 1));
        let literal = window.iter().find(|w| w.kind == Kind::Float);
        let ident_hint = window.iter().find(|w| {
            w.kind == Kind::Ident
                && (FLOAT_HINT_IDENTS.contains(&w.text.as_str()) || declared.contains(&w.text))
        });
        // A name-based hint yields to integer counter-evidence; a float
        // literal is unambiguous.
        let int_evidence = window.iter().any(|w| {
            w.kind == Kind::Int
                || (w.kind == Kind::Ident && INT_HINT_IDENTS.contains(&w.text.as_str()))
        });
        let hint = literal.or(if int_evidence { None } else { ident_hint });
        if let Some(h) = hint {
            ctx.emit(
                out,
                "float-eq",
                t.line,
                format!(
                    "`{}` on a floating-point quantity (saw `{}`); use an ordering \
                     predicate, `total_cmp`, or an explicit tolerance — or annotate \
                     with `// rim-lint: allow(float-eq)` if exact equality is intended",
                    t.text, h.text
                ),
            );
        }
    }
}

/// Collects identifiers the file *declares* as floating-point:
/// `name: f64` / `name: &f64` ascriptions (params, fields, lets) and
/// `let name = <float literal>` bindings. Lets `float-eq` catch
/// comparisons of plainly-named floats whose type annotation sits
/// outside the operand window.
fn declared_float_idents(tokens: &[Token]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .collect();
    let is_float_ty = |t: &Token| t.kind == Kind::Ident && (t.text == "f64" || t.text == "f32");
    for w in code.windows(4) {
        // name : f64   |   name : & f64
        if w[0].kind == Kind::Ident
            && w[1].text == ":"
            && (is_float_ty(w[2]) || (w[2].text == "&" && is_float_ty(w[3])))
        {
            out.insert(w[0].text.clone());
        }
        // let name = <float literal>
        if w[0].text == "let" && w[1].kind == Kind::Ident && w[2].text == "=" && w[3].kind == Kind::Float
        {
            out.insert(w[1].text.clone());
        }
    }
    // let mut name = <float literal>
    for w in code.windows(5) {
        if w[0].text == "let"
            && w[1].text == "mut"
            && w[2].kind == Kind::Ident
            && w[3].text == "="
            && w[4].kind == Kind::Float
        {
            out.insert(w[2].text.clone());
        }
    }
    out
}

/// Is this operand window "squared"? True for idents the shared unit
/// inferencer classifies at power 2 (`dist_sq`, `norm2`, `r2`, …),
/// `powi(2)`, and self-multiplications like `r * r`.
fn window_is_squared(window: &[&Token]) -> bool {
    for (i, t) in window.iter().enumerate() {
        if t.kind == Kind::Ident && crate::flow::ident_unit(&t.text).power() == Some(2) {
            return true;
        }
        if t.kind == Kind::Ident && t.text == "powi" {
            // …powi ( 2 )
            let rest: Vec<&&Token> = window[i + 1..].iter().take(3).collect();
            if rest.len() == 3 && rest[0].text == "(" && rest[1].text == "2" && rest[2].text == ")"
            {
                return true;
            }
        }
        if t.kind == Kind::Punct && t.text == "*" {
            // ident * ident with equal names (allowing a leading `.`-path tail).
            let left = window[..i].iter().rev().find(|w| w.kind == Kind::Ident);
            let right = window[i + 1..].iter().find(|w| w.kind == Kind::Ident);
            if let (Some(l), Some(r)) = (left, right) {
                if l.text == r.text {
                    return true;
                }
            }
        }
    }
    false
}

/// Is this operand window a *plain* (unsquared) metric quantity?
fn window_is_plain_dist(window: &[&Token]) -> bool {
    window
        .iter()
        .any(|t| t.kind == Kind::Ident && PLAIN_DIST_IDENTS.contains(&t.text.as_str()))
}

/// `squared-distance-mismatch`: a comparison with exactly one squared
/// side and one plain-distance side. Comparing `dist_sq(u,v)` against
/// `r` (or `dist` against `r * r`) silently changes which boundary
/// points satisfy Def 3.1's closed predicate and breaks the scale of
/// the comparison; both sides must live at the same power.
pub fn squared_distance_mismatch(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != Kind::Punct
            || !matches!(t.text.as_str(), "<" | "<=" | ">" | ">=" | "==" | "!=")
        {
            continue;
        }
        let left = operand_window(ctx.tokens, i, -1);
        let right = operand_window(ctx.tokens, i, 1);
        let lsq = window_is_squared(&left);
        let rsq = window_is_squared(&right);
        let lpl = !lsq && window_is_plain_dist(&left);
        let rpl = !rsq && window_is_plain_dist(&right);
        if (lsq && rpl) || (rsq && lpl) {
            ctx.emit(
                out,
                "squared-distance-mismatch",
                t.line,
                format!(
                    "comparison `{}` mixes a squared quantity with an unsquared \
                     distance/radius; compare both at the same power (the workspace \
                     convention is distance-level, matching Def 3.1's closed predicate)",
                    t.text
                ),
            );
        }
    }
}

/// `no-unwrap-in-lib`: `.unwrap()`, `.expect(…)`, and `panic!` in
/// non-test library code. Library paths must return `Result`/`Option`
/// or document why panicking is correct via a pragma.
pub fn no_unwrap_in_lib(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let code: Vec<(usize, &Token)> = ctx
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .collect();
    for w in code.windows(3) {
        let (idx, a) = w[0];
        let b = w[1].1;
        let c = w[2].1;
        if ctx.in_test_mod(idx) {
            continue;
        }
        let fire = |name: &str| -> Option<String> {
            Some(format!(
                "`{name}` in library code; propagate the error (`Result`/`Option`) or \
                 annotate with `// rim-lint: allow(no-unwrap-in-lib)` stating why it \
                 cannot fail"
            ))
        };
        let msg = if a.text == "." && b.kind == Kind::Ident && c.text == "(" {
            match b.text.as_str() {
                "unwrap" => fire(".unwrap()"),
                "expect" => fire(".expect()"),
                _ => None,
            }
        } else if a.kind == Kind::Ident
            && b.text == "!"
            && matches!(c.text.as_str(), "(" | "{" | "[")
        {
            // All three macro delimiters: `panic!("…")`, `panic!{"…"}`,
            // and `panic!["…"]` panic identically.
            match a.text.as_str() {
                "panic" => fire("panic!"),
                "unreachable" => fire("unreachable!"),
                "todo" => fire("todo!"),
                "unimplemented" => fire("unimplemented!"),
                _ => None,
            }
        } else {
            None
        };
        if let Some(m) = msg {
            ctx.emit(out, "no-unwrap-in-lib", b.line, m);
        }
    }
}

/// `unknown-pragma-rule`: every rule name in a `// rim-lint:` pragma
/// must exist in [`RULE_CATALOG`]. A typo'd pragma suppresses nothing,
/// which is worse than no pragma: the author believes the site is
/// justified while the gate still fires — or, for a rule that was
/// renamed away, never fires again.
pub fn unknown_pragma_rule(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (name, line) in ctx.pragmas.unknown_rules() {
        ctx.emit(
            out,
            "unknown-pragma-rule",
            *line,
            format!(
                "pragma names `{name}`, which is not a registered rule; see \
                 `cargo run -p rim-xtask -- lint --explain <rule>` for the catalog"
            ),
        );
    }
}

/// `forbid-unsafe`: the crate root must carry `#![forbid(unsafe_code)]`.
/// Only meaningful on crate-root files; the caller gates on path.
pub fn forbid_unsafe(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let code: Vec<&Token> = ctx
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .collect();
    let want = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let found = code
        .windows(want.len())
        .any(|w| w.iter().zip(want.iter()).all(|(t, s)| t.text == *s));
    if !found {
        ctx.emit(
            out,
            "forbid-unsafe",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// Item keywords whose `pub` form must be documented.
const DOC_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
];

/// `pub-doc-coverage`: every public item in the model crates needs a
/// doc comment. The caller restricts this rule to `rim-core` and
/// `rim-highway` sources — the crates that encode the paper's
/// definitions, where an undocumented export is an unexplained claim.
pub fn pub_doc_coverage(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != Kind::Ident || t.text != "pub" {
            continue;
        }
        if ctx.in_test_mod(i) {
            continue;
        }
        // Find what follows `pub`: skip a `(crate)`/`(super)` visibility
        // qualifier (restricted visibility is not public API — skip the
        // item entirely), then an optional `unsafe`/`async`/`extern`.
        let mut j = i + 1;
        let skip_trivia = |k: &mut usize| {
            while *k < ctx.tokens.len()
                && matches!(ctx.tokens[*k].kind, Kind::Comment | Kind::DocComment)
            {
                *k += 1;
            }
        };
        skip_trivia(&mut j);
        if j < ctx.tokens.len() && ctx.tokens[j].text == "(" {
            continue; // pub(crate) / pub(super): not public API
        }
        while j < ctx.tokens.len()
            && matches!(ctx.tokens[j].text.as_str(), "unsafe" | "async" | "extern")
        {
            j += 1;
            skip_trivia(&mut j);
        }
        if j >= ctx.tokens.len() {
            continue;
        }
        let kw = &ctx.tokens[j];
        if kw.kind != Kind::Ident || !DOC_ITEM_KEYWORDS.contains(&kw.text.as_str()) {
            continue; // pub use, pub in a pattern, …
        }
        let name = ctx
            .tokens
            .get(j + 1)
            .map(|n| n.text.clone())
            .unwrap_or_default();
        // Walk backwards over attributes (`#[…]`) to the token before
        // the item; documented iff that token is a doc comment.
        let mut k = i as i64 - 1;
        let documented = loop {
            if k < 0 {
                break false;
            }
            let prev = &ctx.tokens[k as usize];
            match prev.kind {
                Kind::DocComment => break true,
                Kind::Comment => {
                    k -= 1;
                }
                _ if prev.text == "]" => {
                    // Skip the attribute group `#[ … ]`.
                    let mut depth = 0i32;
                    while k >= 0 {
                        match ctx.tokens[k as usize].text.as_str() {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k -= 1;
                    }
                    k -= 1; // the `#`
                    if k >= 0 && ctx.tokens[k as usize].text == "#" {
                        k -= 1;
                    }
                }
                _ => break false,
            }
        };
        if !documented {
            ctx.emit(
                out,
                "pub-doc-coverage",
                t.line,
                format!("public item `{} {}` has no doc comment", kw.text, name),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: fn(&FileCtx, &mut Vec<Diagnostic>), src: &str) -> Vec<Diagnostic> {
        let (tokens, ranges) = prepare(src);
        let pragmas = Pragmas::parse(&tokens);
        let ctx = FileCtx {
            path: "test.rs",
            tokens: &tokens,
            pragmas: &pragmas,
            test_mod_ranges: &ranges,
        };
        let mut out = Vec::new();
        rule(&ctx, &mut out);
        out
    }

    // ---- float-eq ----

    #[test]
    fn float_eq_fires_on_literal_and_hint_idents() {
        assert_eq!(run(float_eq, "if x == 1.0 { }").len(), 1);
        assert_eq!(run(float_eq, "if a.dist(b) == c { }").len(), 1);
        assert_eq!(run(float_eq, "if radius != other { }").len(), 1);
        assert_eq!(run(float_eq, "if w == f64::INFINITY { }").len(), 1);
    }

    #[test]
    fn float_eq_clean_on_ints_strings_comments() {
        assert_eq!(run(float_eq, "if n == 3 { }").len(), 0);
        assert_eq!(run(float_eq, "let s = \"x == 1.0\";").len(), 0);
        assert_eq!(run(float_eq, "// x == 1.0\nlet y = 2;").len(), 0);
        assert_eq!(run(float_eq, "if name == \"radius\" { }").len(), 0);
    }

    #[test]
    fn float_eq_window_stops_at_statement_boundaries() {
        // The float on the previous statement must not leak into the
        // window of the integer comparison.
        assert_eq!(run(float_eq, "let a = 1.0; if n == 3 { }").len(), 0);
        assert_eq!(run(float_eq, "f(1.0, n == 3)").len(), 0);
    }

    #[test]
    fn float_eq_sees_file_local_float_declarations() {
        // The type annotation sits outside the operand window; the
        // file-level declaration pass still catches the comparison.
        assert_eq!(run(float_eq, "fn f(x: f64, y: f64) -> bool { x == y }").len(), 1);
        assert_eq!(run(float_eq, "fn f() { let a = 0.5; g(); if a == b { } }").len(), 1);
        assert_eq!(run(float_eq, "fn f(p: &f64) -> bool { *p == q }").len(), 1);
        // Same names, integer types: clean.
        assert_eq!(run(float_eq, "fn f(x: u32, y: u32) -> bool { x == y }").len(), 0);
    }

    #[test]
    fn float_eq_yields_to_integer_counter_evidence() {
        // BFS hop counts reuse metric-sounding names at integer type.
        assert_eq!(run(float_eq, "if dist[v] == usize::MAX { }").len(), 0);
        assert_eq!(run(float_eq, "if dist[v] == dist[u] + 1 { }").len(), 0);
        // A float literal overrides the counter-evidence.
        assert_eq!(run(float_eq, "if dist[v] == 1.0 + (n as f64) { }").len(), 1);
    }

    #[test]
    fn float_eq_pragma_suppresses() {
        let src = "// rim-lint: allow(float-eq)\nif x == 1.0 { }";
        assert_eq!(run(float_eq, src).len(), 0);
        let trailing = "if x == 1.0 { } // rim-lint: allow(float-eq)";
        assert_eq!(run(float_eq, trailing).len(), 0);
        let file = "// rim-lint: allow-file(float-eq)\nfn f() { }\nfn g() { let _ = x == 1.0; }";
        assert_eq!(run(float_eq, file).len(), 0);
        // The wrong rule name does not suppress.
        let wrong = "// rim-lint: allow(no-unwrap-in-lib)\nif x == 1.0 { }";
        assert_eq!(run(float_eq, wrong).len(), 1);
    }

    // ---- squared-distance-mismatch ----

    #[test]
    fn sq_mismatch_fires_on_mixed_powers() {
        assert_eq!(run(squared_distance_mismatch, "if a.dist_sq(b) <= r { }").len(), 1);
        assert_eq!(run(squared_distance_mismatch, "if dist < r * r { }").len(), 1);
        assert_eq!(run(squared_distance_mismatch, "if d.powi(2) <= radius { }").len(), 1);
    }

    #[test]
    fn sq_mismatch_clean_on_consistent_powers() {
        assert_eq!(run(squared_distance_mismatch, "if a.dist(b) <= r { }").len(), 0);
        assert_eq!(run(squared_distance_mismatch, "if a.dist_sq(b) <= r * r { }").len(), 0);
        assert_eq!(
            run(squared_distance_mismatch, "if a.dist_sq(b) <= r_sq { }").len(),
            0
        );
        assert_eq!(run(squared_distance_mismatch, "if n < m { }").len(), 0);
    }

    // ---- no-unwrap-in-lib ----

    #[test]
    fn unwrap_fires_outside_tests_only() {
        assert_eq!(run(no_unwrap_in_lib, "fn f() { x.unwrap(); }").len(), 1);
        assert_eq!(run(no_unwrap_in_lib, "fn f() { x.expect(\"m\"); }").len(), 1);
        assert_eq!(run(no_unwrap_in_lib, "fn f() { panic!(\"m\"); }").len(), 1);
        assert_eq!(run(no_unwrap_in_lib, "fn f() { unreachable!() }").len(), 1);
        let test_mod = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); panic!(); }\n}";
        assert_eq!(run(no_unwrap_in_lib, test_mod).len(), 0);
        // Code after the test mod is scanned again.
        let after = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }\nfn g() { y.unwrap(); }";
        assert_eq!(run(no_unwrap_in_lib, after).len(), 1);
    }

    #[test]
    fn unwrap_clean_on_lookalikes() {
        assert_eq!(run(no_unwrap_in_lib, "fn f() { x.unwrap_or(0); }").len(), 0);
        assert_eq!(run(no_unwrap_in_lib, "fn f() { x.unwrap_or_else(g); }").len(), 0);
        assert_eq!(run(no_unwrap_in_lib, "fn f() { x.expect_err(\"m\"); }").len(), 0);
        assert_eq!(run(no_unwrap_in_lib, "// x.unwrap()\nfn f() { }").len(), 0);
    }

    // ---- forbid-unsafe ----

    #[test]
    fn forbid_unsafe_checks_the_attribute() {
        assert_eq!(run(forbid_unsafe, "#![forbid(unsafe_code)]\nfn f() {}").len(), 0);
        assert_eq!(run(forbid_unsafe, "//! docs\n#![forbid(unsafe_code)]").len(), 0);
        assert_eq!(run(forbid_unsafe, "fn f() {}").len(), 1);
        // A comment mentioning it does not count.
        assert_eq!(run(forbid_unsafe, "// #![forbid(unsafe_code)]\nfn f() {}").len(), 1);
    }

    // ---- pub-doc-coverage ----

    #[test]
    fn doc_coverage_requires_doc_comments() {
        assert_eq!(run(pub_doc_coverage, "/// Documented.\npub fn f() {}").len(), 0);
        assert_eq!(run(pub_doc_coverage, "pub fn f() {}").len(), 1);
        // Attributes between the doc comment and the item are fine.
        let attr = "/// Doc.\n#[derive(Debug)]\npub struct S;";
        assert_eq!(run(pub_doc_coverage, attr).len(), 0);
        // pub(crate) is not public API.
        assert_eq!(run(pub_doc_coverage, "pub(crate) fn f() {}").len(), 0);
        // pub use re-exports are exempt.
        assert_eq!(run(pub_doc_coverage, "pub use crate::x::Y;").len(), 0);
        // Undocumented method inside an impl fires too.
        let m = "/// S.\npub struct S;\nimpl S {\n pub fn f(&self) {}\n}";
        assert_eq!(run(pub_doc_coverage, m).len(), 1);
    }

    #[test]
    fn doc_coverage_skips_test_mods() {
        let src = "#[cfg(test)]\nmod tests { pub fn helper() {} }";
        assert_eq!(run(pub_doc_coverage, src).len(), 0);
    }

    #[test]
    fn unwrap_fires_on_brace_and_bracket_macro_delimiters() {
        assert_eq!(run(no_unwrap_in_lib, "fn f() { panic!{\"m\"} }").len(), 1);
        assert_eq!(run(no_unwrap_in_lib, "fn f() { todo![] }").len(), 1);
        assert_eq!(run(no_unwrap_in_lib, "fn f() { unreachable!{} }").len(), 1);
    }

    // ---- registry + unknown-pragma-rule ----

    #[test]
    fn rule_registry_lookup() {
        for rule in ["panic-freedom", "atomic-ordering", "lock-discipline", "dead-pub"] {
            assert!(rule_known(rule), "{rule} missing from the catalog");
            assert!(rule_explanation(rule).is_some());
        }
        assert!(!rule_known("panic_freedom"));
        assert!(rule_explanation("no-such-rule").is_none());
    }

    #[test]
    fn unknown_pragma_rule_flags_typos() {
        let out = run(unknown_pragma_rule, "// rim-lint: allow(flaot-eq)\nfn f() {}");
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("flaot-eq"));
        assert_eq!(run(unknown_pragma_rule, "// rim-lint: allow(float-eq)\nfn f() {}").len(), 0);
        // allow-file with a bad name is flagged and suppresses nothing.
        assert_eq!(run(unknown_pragma_rule, "// rim-lint: allow-file(no-such)\n").len(), 1);
        let (tokens, _) = prepare("// rim-lint: allow-file(no-such)\n");
        assert!(!Pragmas::parse(&tokens).allows("no-such", 5));
    }

    // ---- pragmas ----

    #[test]
    fn pragma_parsing_handles_lists_and_scopes() {
        let (tokens, _) = prepare(
            "// rim-lint: allow(float-eq, no-unwrap-in-lib)\n// rim-lint: allow-file(forbid-unsafe)\n",
        );
        let p = Pragmas::parse(&tokens);
        assert!(p.allows("float-eq", 1));
        assert!(p.allows("float-eq", 2));
        assert!(!p.allows("float-eq", 3));
        assert!(p.allows("no-unwrap-in-lib", 1));
        assert!(p.allows("forbid-unsafe", 999));
        assert!(!p.allows("pub-doc-coverage", 1));
    }
}
