//! Expression-level parser: opens the opaque `fn` body token ranges of
//! [`crate::parse`] into statement/expression trees.
//!
//! [`parse_fn_body`] takes the same token vector the item parser
//! indexed and a body range strictly inside the braces, and returns a
//! [`Body`]: a [`Block`] of [`Stmt`]s whose expressions carry enough
//! structure for the dataflow passes in [`crate::flow`] — lets with
//! extracted binding names, calls, method chains, comparisons,
//! indexing, loops with recognised `0..len`-style headers, and macro
//! invocations with best-effort argument parsing (`vec![x; n]` is
//! special-cased as [`ExprKind::Repeat`] inside the macro).
//!
//! Three properties the rest of the linter depends on:
//!
//! * **Error recovery, not rejection.** Unknown constructs consume at
//!   least one token, count one error, and resynchronise at `;`/`}`.
//!   The self-test in `tests/expr_selftest.rs` asserts every `fn` body
//!   in the workspace parses with **zero** errors, so recovery exists
//!   only for fuzz inputs and future syntax.
//! * **No panics on arbitrary token soup** (fuzzed via `rim_rng::prop`;
//!   recursion is depth-capped, every loop makes progress).
//! * **Faithful precedence**: the pretty-printer [`Expr::pretty`]
//!   emits minimal parentheses, and a round-trip property test checks
//!   `parse(pretty(e))` has the same shape as `e`.
//!
//! Patterns stay opaque on purpose: a pattern is scanned to its
//! terminator (`=`, `in`, `=>`) and only the *bound identifiers* are
//! kept — that is all the unit/bounds lattices need. Types are
//! likewise consumed and dropped (with `<`/`>>`-aware angle
//! balancing), so `Vec<Vec<u8>>` in a `let` ascription or a cast does
//! not confuse the operator grammar.

use crate::lexer::{Kind, Token};

/// One expression with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// 1-based line of the expression's first token.
    pub line: u32,
    /// The expression's shape.
    pub kind: ExprKind,
}

/// Expression shapes. Operators are kept as their source text (`"+"`,
/// `"<="`, …) — the parser has already fixed the precedence, so
/// consumers only ever match on the string.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal (raw text, `1_000` uncleaned).
    Int(String),
    /// Float literal.
    Float(String),
    /// String/char/byte literal.
    Lit,
    /// `true`/`false`.
    Bool(bool),
    /// Path: `x`, `self.x` is Field, `a::b::c` — segments without
    /// turbofish arguments.
    Path(Vec<String>),
    /// Prefix operator: `-`, `!`, `*`, `&`, `&mut`.
    Unary(String, Box<Expr>),
    /// Binary operator (arithmetic, comparison, logical, bit, range
    /// excluded — see [`ExprKind::Range`]).
    Binary(String, Box<Expr>, Box<Expr>),
    /// `lhs = rhs` and compound assignments (`+=`, …; op keeps its
    /// text).
    Assign(String, Box<Expr>, Box<Expr>),
    /// `callee(args…)`.
    Call(Box<Expr>, Vec<Expr>),
    /// `recv.name(args…)`.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    /// `recv.field` / `tuple.0`.
    Field(Box<Expr>, String),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `e as T` (type dropped).
    Cast(Box<Expr>),
    /// `a..b`, `a..=b`, with either side optional; bool = inclusive.
    Range(Option<Box<Expr>>, Option<Box<Expr>>, bool),
    /// `e?`.
    Try(Box<Expr>),
    /// `|params| body` (param names only; types dropped).
    Closure(Vec<String>, Box<Expr>),
    /// `if cond { … } else …` — the else is a [`ExprKind::Block`] or a
    /// chained `if`.
    If(Box<Expr>, Block, Option<Box<Expr>>),
    /// `if let PAT = expr { … } else …` (pattern kept as bound idents).
    IfLet(Vec<String>, Box<Expr>, Block, Option<Box<Expr>>),
    /// `while cond { … }`.
    While(Box<Expr>, Block),
    /// `while let PAT = expr { … }`.
    WhileLet(Vec<String>, Box<Expr>, Block),
    /// `loop { … }`.
    Loop(Block),
    /// `for PAT in iter { … }` (pattern kept as bound idents, in
    /// order — `(i, x)` yields `["i", "x"]`).
    For(Vec<String>, Box<Expr>, Block),
    /// `match scrutinee { arms… }`.
    Match(Box<Expr>, Vec<Arm>),
    /// Block expression (incl. `unsafe { … }`).
    Block(Block),
    /// `(a, b, …)`; a 1-tuple `(e,)` or plain parenthesisation
    /// collapses to the inner expression.
    Tuple(Vec<Expr>),
    /// `[a, b, …]`.
    Array(Vec<Expr>),
    /// `[elem; count]` — also produced for `vec![elem; count]` args.
    Repeat(Box<Expr>, Box<Expr>),
    /// `Path { field: expr, … , ..base }`.
    StructLit(Vec<String>, Vec<(String, Expr)>, Option<Box<Expr>>),
    /// `name!(args…)`: best-effort parsed arguments; `opaque` is true
    /// when the delimiter contents did not parse as a comma-separated
    /// expression list, in which case `raw` keeps the unparsed code
    /// tokens (text, line) for conservative token-level fallbacks.
    MacroCall {
        /// Macro name (`vec`, `assert`, …; path macros keep the last
        /// segment).
        name: String,
        /// Parsed arguments (empty when opaque).
        args: Vec<Expr>,
        /// True when the argument tokens did not parse cleanly.
        opaque: bool,
        /// Raw code tokens of an opaque invocation (text, line).
        raw: Vec<(String, u32)>,
    },
    /// `return e?`.
    Return(Option<Box<Expr>>),
    /// `break 'label? e?`.
    Break(Option<Box<Expr>>),
    /// `continue 'label?`.
    Continue,
    /// Recovery placeholder; each one counted in [`Body::errors`].
    Err,
}

/// One `match` arm: opaque pattern (bound idents only), optional
/// guard, body.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// 1-based line of the pattern's first token.
    pub line: u32,
    /// Identifiers the pattern binds (heuristic: lowercase idents not
    /// followed by `::` / `(` / `{` / `!`).
    pub pat_idents: Vec<String>,
    /// `if guard` expression, when present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// A `{ … }` body: statements plus an optional tail expression.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
    /// Trailing expression without `;`, if any.
    pub tail: Option<Box<Expr>>,
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let PAT (: T)? (= init (else { … })?)? ;`
    Let {
        /// 1-based line of the `let`.
        line: u32,
        /// `Some(name)` when the pattern is a plain `[mut] name`.
        name: Option<String>,
        /// All identifiers the pattern binds (see [`Arm::pat_idents`]).
        pat_idents: Vec<String>,
        /// Initialiser, when present.
        init: Option<Expr>,
        /// `let … else { … }` diverging block, when present.
        els: Option<Block>,
    },
    /// Expression statement; `semi` records the trailing `;`.
    Expr(Expr, bool),
    /// A nested item. For nested `fn` items the body is parsed
    /// recursively so dataflow walks see their expressions too.
    Item(Option<Block>),
}

/// Result of parsing one `fn` body.
#[derive(Debug, Clone, Default)]
pub struct Body {
    /// The statements/tail of the body braces.
    pub block: Block,
    /// Number of [`ExprKind::Err`] recovery nodes produced.
    pub errors: usize,
    /// Number of macro invocations whose arguments stayed opaque.
    pub opaque_macros: usize,
}

/// Parses the token range strictly inside a `fn` body's braces (the
/// convention of [`crate::parse::Item::body`]). Comments are filtered
/// out; the parse never panics and always terminates.
pub fn parse_fn_body(tokens: &[Token], (b0, b1): (usize, usize)) -> Body {
    let code: Vec<&Token> = tokens[b0.min(tokens.len())..b1.min(tokens.len())]
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .collect();
    let mut p = Parser { code: &code, pos: 0, depth: 0, errors: 0, opaque_macros: 0 };
    let block = p.parse_block_inner(usize::MAX);
    Body { block, errors: p.errors, opaque_macros: p.opaque_macros }
}

/// Convenience for tests: lexes `src` and parses the whole token
/// stream as a body.
pub fn parse_source_body(src: &str) -> Body {
    let tokens = crate::lexer::lex(src);
    parse_fn_body(&tokens, (0, tokens.len()))
}

/// Maximum expression nesting before the parser bails out with an
/// error node instead of recursing (fuzz inputs like `((((((…`).
const MAX_DEPTH: usize = 200;

/// Item-introducing keywords that start a nested item statement.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "impl", "trait", "mod", "union", "use", "type", "static", "extern",
    "macro_rules", "const",
];

struct Parser<'a> {
    code: &'a [&'a Token],
    pos: usize,
    depth: usize,
    errors: usize,
    opaque_macros: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.code.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.code.get(self.pos + off).copied()
    }

    fn text(&self) -> &'a str {
        self.peek().map(|t| t.text.as_str()).unwrap_or("")
    }

    fn text_at(&self, off: usize) -> &'a str {
        self.peek_at(off).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn line(&self) -> u32 {
        self.peek().map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.peek();
        self.pos += 1;
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.text() == text {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err_expr(&mut self) -> Expr {
        self.errors += 1;
        Expr { line: self.line(), kind: ExprKind::Err }
    }

    /// Skips tokens until the matching close of the delimiter at the
    /// current position (which must be an opener) — inclusive.
    fn skip_group(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// Skips to just past the next `;` at delimiter depth 0 (or EOF).
    fn skip_to_semi(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return,
                _ => {}
            }
        }
    }

    // ----- blocks and statements ---------------------------------------

    /// Parses statements until a `}` at depth 0 (consumed by the
    /// caller) or `end`/EOF. `usize::MAX` means "to EOF".
    fn parse_block_inner(&mut self, end: usize) -> Block {
        let mut block = Block::default();
        loop {
            if self.pos >= self.code.len() || self.pos >= end || self.text() == "}" {
                break;
            }
            let before = self.pos;
            self.parse_stmt(&mut block);
            if self.pos == before {
                // Hard progress guarantee for fuzz inputs.
                self.bump();
                self.errors += 1;
            }
        }
        block
    }

    /// Parses a braced block: consumes `{`, the statements, and `}`.
    fn parse_block(&mut self) -> Block {
        if !self.eat("{") {
            self.errors += 1;
            return Block::default();
        }
        let block = self.parse_block_inner(usize::MAX);
        if !self.eat("}") {
            self.errors += 1;
        }
        block
    }

    fn parse_stmt(&mut self, block: &mut Block) {
        // Outer attributes on statements/items.
        while self.text() == "#" && (self.text_at(1) == "[" || self.text_at(1) == "!") {
            self.bump(); // '#'
            if self.text() == "!" {
                self.bump();
            }
            if self.text() == "[" {
                self.skip_group();
            }
        }
        let Some(t) = self.peek() else { return };
        match t.text.as_str() {
            ";" => {
                self.bump();
            }
            "let" => {
                let stmt = self.parse_let();
                block.stmts.push(stmt);
            }
            "}" => {}
            kw if t.kind == Kind::Ident
                && ITEM_KEYWORDS.contains(&kw)
                && self.starts_item(kw) =>
            {
                let body = self.skip_item(kw);
                block.stmts.push(Stmt::Item(body));
            }
            _ => {
                let e = self.parse_expr(0, false);
                let semi = self.eat(";");
                let block_like = is_block_like(&e);
                if !semi && self.pos >= self.code.len() || !semi && self.text() == "}" {
                    block.tail = Some(Box::new(e));
                } else if semi || block_like {
                    block.stmts.push(Stmt::Expr(e, semi));
                } else {
                    // Non-block expression not followed by `;` or `}`:
                    // record the expr, count a recovery error.
                    self.errors += 1;
                    block.stmts.push(Stmt::Expr(e, false));
                }
            }
        }
    }

    /// Is the keyword at the current position really introducing an
    /// item (vs. `const`-less false positives)? `const` in statement
    /// position is an item (`const N: usize = …;`); other keywords are
    /// unambiguous at statement start.
    fn starts_item(&self, kw: &str) -> bool {
        match kw {
            // `unsafe` blocks are handled by the expression grammar.
            "const" => self.peek_at(1).is_some_and(|t| t.kind == Kind::Ident || t.text == "_"),
            _ => true,
        }
    }

    /// Skips one nested item. For `fn` items the body block is parsed
    /// recursively and returned so dataflow walks cover it.
    fn skip_item(&mut self, kw: &str) -> Option<Block> {
        match kw {
            "use" | "type" | "static" | "extern" | "const" => {
                self.skip_to_semi();
                None
            }
            "macro_rules" => {
                self.bump(); // macro_rules
                self.eat("!");
                self.bump(); // name
                if matches!(self.text(), "(" | "[" | "{") {
                    self.skip_group();
                }
                self.eat(";");
                None
            }
            "fn" => {
                // Scan to the body `{` at delimiter depth 0, then parse
                // the body recursively.
                let mut depth = 0usize;
                while let Some(t) = self.peek() {
                    match t.text.as_str() {
                        "(" | "[" => {
                            self.skip_group();
                            continue;
                        }
                        "{" if depth == 0 => break,
                        ";" if depth == 0 => {
                            self.bump();
                            return None;
                        }
                        "<" => depth += 1,
                        ">" => depth = depth.saturating_sub(1),
                        "<<" => depth += 2,
                        ">>" => depth = depth.saturating_sub(2),
                        _ => {}
                    }
                    self.bump();
                }
                if self.text() == "{" {
                    Some(self.parse_block())
                } else {
                    None
                }
            }
            _ => {
                // struct/enum/impl/trait/mod/union: `{ … }` group or `;`.
                let mut guard = 0usize;
                while let Some(t) = self.peek() {
                    guard += 1;
                    if guard > self.code.len() {
                        break;
                    }
                    match t.text.as_str() {
                        "(" | "[" => {
                            self.skip_group();
                            // Tuple struct: `struct S(u32);`.
                            if self.eat(";") {
                                return None;
                            }
                            continue;
                        }
                        "{" => {
                            self.skip_group();
                            return None;
                        }
                        ";" => {
                            self.bump();
                            return None;
                        }
                        _ => {
                            self.bump();
                        }
                    }
                }
                None
            }
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // let
        let (name, pat_idents) = self.parse_pattern(&["=", ";", ":"]);
        if self.eat(":") {
            self.skip_type(&["=", ";"]);
        }
        let mut init = None;
        let mut els = None;
        if self.eat("=") {
            init = Some(self.parse_expr(0, false));
            if self.eat("else") {
                els = Some(self.parse_block());
            }
        }
        self.eat(";");
        Stmt::Let { line, name, pat_idents, init, els }
    }

    /// Scans an opaque pattern up to one of `stops` at delimiter depth
    /// 0, returning (plain-binding name, all bound idents). Lowercase
    /// identifiers not followed by `::`/`(`/`{`/`!`/`:` count as
    /// bindings; `mut`/`ref`/`box`/`_` are skipped.
    fn parse_pattern(&mut self, stops: &[&str]) -> (Option<String>, Vec<String>) {
        let mut idents = Vec::new();
        let mut tokens_seen = 0usize;
        let mut only = None;
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && stops.contains(&t.text.as_str()) {
                break;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "mut" | "ref" | "box" | "_" | "&" => {}
                _ if t.kind == Kind::Ident => {
                    let binds = t.text.chars().next().is_some_and(|c| c.is_lowercase())
                        && !matches!(self.text_at(1), "::" | "(" | "{" | "!");
                    if binds {
                        idents.push(t.text.clone());
                    }
                    tokens_seen += 1;
                    if tokens_seen == 1 && depth == 0 && binds {
                        only = Some(t.text.clone());
                    } else {
                        only = None;
                    }
                    self.bump();
                    continue;
                }
                _ => {
                    only = None;
                }
            }
            if !matches!(t.text.as_str(), "mut" | "ref") {
                tokens_seen += 1;
                if tokens_seen > 1 {
                    only = None;
                }
            }
            self.bump();
        }
        (only, idents)
    }

    /// Consumes a type up to one of `stops` at depth 0, balancing
    /// `()`/`[]` and `<`/`<<`/`>`/`>>` angles.
    fn skip_type(&mut self, stops: &[&str]) {
        let mut angle = 0isize;
        let mut delim = 0usize;
        while let Some(t) = self.peek() {
            if angle <= 0 && delim == 0 && stops.contains(&t.text.as_str()) {
                return;
            }
            match t.text.as_str() {
                "(" | "[" => delim += 1,
                ")" | "]" => {
                    if delim == 0 {
                        return;
                    }
                    delim -= 1;
                }
                "{" | "}" => return,
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                _ => {}
            }
            self.bump();
        }
    }

    // ----- expressions -------------------------------------------------

    fn parse_expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            let e = self.err_expr();
            self.bump();
            return e;
        }
        self.depth += 1;
        let e = self.parse_expr_inner(min_bp, no_struct);
        self.depth -= 1;
        e
    }

    fn parse_expr_inner(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(no_struct);
        loop {
            let Some(t) = self.peek() else { break };
            let op = t.text.as_str();
            // Postfix: `.`, `?`, call, index.
            match op {
                "." => {
                    lhs = self.parse_dot(lhs);
                    continue;
                }
                "?" => {
                    self.bump();
                    lhs = Expr { line: lhs.line, kind: ExprKind::Try(Box::new(lhs)) };
                    continue;
                }
                "(" if 27 >= min_bp => {
                    let args = self.parse_args("(", ")");
                    lhs = Expr { line: lhs.line, kind: ExprKind::Call(Box::new(lhs), args) };
                    continue;
                }
                "[" if 27 >= min_bp => {
                    self.bump();
                    let idx = self.parse_expr(0, false);
                    if !self.eat("]") {
                        self.errors += 1;
                        self.recover_in_group("]");
                    }
                    lhs = Expr {
                        line: lhs.line,
                        kind: ExprKind::Index(Box::new(lhs), Box::new(idx)),
                    };
                    continue;
                }
                "as" if 25 >= min_bp => {
                    self.bump();
                    self.skip_type(&[
                        ";", ",", ")", "]", "}", "{", "=", "==", "!=", "<=", ">=", "&&", "||",
                        "+", "-", "*", "/", "%", "?", ".", "..", "..=", "as",
                    ]);
                    lhs = Expr { line: lhs.line, kind: ExprKind::Cast(Box::new(lhs)) };
                    continue;
                }
                ".." | "..=" if 5 >= min_bp => {
                    let inclusive = op == "..=";
                    self.bump();
                    let rhs = if self.starts_expr(no_struct) {
                        Some(Box::new(self.parse_expr(6, no_struct)))
                    } else {
                        None
                    };
                    lhs = Expr {
                        line: lhs.line,
                        kind: ExprKind::Range(Some(Box::new(lhs)), rhs, inclusive),
                    };
                    continue;
                }
                _ => {}
            }
            if let Some((lbp, rbp)) = assign_bp(op) {
                if lbp < min_bp {
                    break;
                }
                let opx = op.to_string();
                self.bump();
                let rhs = self.parse_expr(rbp, no_struct);
                lhs = Expr {
                    line: lhs.line,
                    kind: ExprKind::Assign(opx, Box::new(lhs), Box::new(rhs)),
                };
                continue;
            }
            if let Some((lbp, rbp)) = infix_bp(op) {
                if lbp < min_bp {
                    break;
                }
                let opx = op.to_string();
                self.bump();
                let rhs = self.parse_expr(rbp, no_struct);
                lhs = Expr {
                    line: lhs.line,
                    kind: ExprKind::Binary(opx, Box::new(lhs), Box::new(rhs)),
                };
                continue;
            }
            break;
        }
        lhs
    }

    /// Can the current token start an expression? Used for optional
    /// operands (`return`, `break`, open ranges).
    fn starts_expr(&self, _no_struct: bool) -> bool {
        let Some(t) = self.peek() else { return false };
        match t.kind {
            Kind::Int | Kind::Float | Kind::Str => true,
            Kind::Lifetime => true,
            Kind::Ident => !matches!(t.text.as_str(), "in" | "else" | "where"),
            Kind::Punct | Kind::Comment | Kind::DocComment => matches!(
                t.text.as_str(),
                "(" | "[" | "{" | "-" | "!" | "*" | "&" | "&&" | "|" | "||" | ".." | "..=" | "<"
            ),
        }
    }

    fn parse_prefix(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.peek() else {
            return self.err_expr();
        };
        let line = t.line;
        match t.kind {
            Kind::Int => {
                self.bump();
                Expr { line, kind: ExprKind::Int(t.text.clone()) }
            }
            Kind::Float => {
                self.bump();
                Expr { line, kind: ExprKind::Float(t.text.clone()) }
            }
            Kind::Str => {
                self.bump();
                Expr { line, kind: ExprKind::Lit }
            }
            Kind::Lifetime => {
                // Label: `'a: loop { … }`, or `'a` inside `break 'a`.
                self.bump();
                self.eat(":");
                self.parse_prefix(no_struct)
            }
            // Byte literal: the lexer keeps `b` (Ident) and `'x'`
            // (Str) separate; glue them back into one literal.
            Kind::Ident if t.text == "b" && self.peek_at(1).is_some_and(|n| n.kind == Kind::Str) =>
            {
                self.bump();
                self.bump();
                Expr { line, kind: ExprKind::Lit }
            }
            Kind::Ident => self.parse_ident_prefix(no_struct),
            _ => match t.text.as_str() {
                "(" => {
                    let mut items = self.parse_args("(", ")");
                    if items.len() == 1 {
                        items.pop().expect("len checked") // rim-lint: allow(no-unwrap-in-lib) — guarded by `items.len() == 1`
                    } else {
                        Expr { line, kind: ExprKind::Tuple(items) }
                    }
                }
                "[" => {
                    self.bump();
                    let first = if self.text() == "]" {
                        None
                    } else {
                        Some(self.parse_expr(0, false))
                    };
                    if let Some(first) = first {
                        if self.eat(";") {
                            let count = self.parse_expr(0, false);
                            if !self.eat("]") {
                                self.errors += 1;
                                self.recover_in_group("]");
                            }
                            return Expr {
                                line,
                                kind: ExprKind::Repeat(Box::new(first), Box::new(count)),
                            };
                        }
                        let mut items = vec![first];
                        while self.eat(",") {
                            if self.text() == "]" {
                                break;
                            }
                            items.push(self.parse_expr(0, false));
                        }
                        if !self.eat("]") {
                            self.errors += 1;
                            self.recover_in_group("]");
                        }
                        Expr { line, kind: ExprKind::Array(items) }
                    } else {
                        self.eat("]");
                        Expr { line, kind: ExprKind::Array(Vec::new()) }
                    }
                }
                "{" => {
                    let b = self.parse_block();
                    Expr { line, kind: ExprKind::Block(b) }
                }
                "-" | "!" | "*" => {
                    let op = t.text.clone();
                    self.bump();
                    let inner = self.parse_expr(25, no_struct);
                    Expr { line, kind: ExprKind::Unary(op, Box::new(inner)) }
                }
                "&" | "&&" => {
                    let double = t.text == "&&";
                    self.bump();
                    let op = if self.eat("mut") { "&mut" } else { "&" };
                    let inner = self.parse_expr(25, no_struct);
                    let e = Expr { line, kind: ExprKind::Unary(op.to_string(), Box::new(inner)) };
                    if double {
                        Expr { line, kind: ExprKind::Unary("&".to_string(), Box::new(e)) }
                    } else {
                        e
                    }
                }
                "|" | "||" => self.parse_closure(false),
                ".." | "..=" => {
                    let inclusive = t.text == "..=";
                    self.bump();
                    let rhs = if self.starts_expr(no_struct) {
                        Some(Box::new(self.parse_expr(6, no_struct)))
                    } else {
                        None
                    };
                    Expr { line, kind: ExprKind::Range(None, rhs, inclusive) }
                }
                "<" => {
                    // Qualified path: `<T as Trait>::name(…)`.
                    self.skip_qualified_angles();
                    let mut segs = vec!["<qualified>".to_string()];
                    while self.text() == "::" {
                        self.bump();
                        if self.text() == "<" {
                            self.skip_generic_args();
                            continue;
                        }
                        if self.peek().is_some_and(|t| t.kind == Kind::Ident) {
                            segs.push(self.bump().expect("ident peeked").text.clone()); // rim-lint: allow(no-unwrap-in-lib) — peeked Ident above
                        } else {
                            break;
                        }
                    }
                    Expr { line, kind: ExprKind::Path(segs) }
                }
                "#" => {
                    // Expression attribute: `#[cfg(…)] expr`.
                    self.bump();
                    if self.text() == "[" {
                        self.skip_group();
                    }
                    self.parse_expr(27, no_struct)
                }
                _ => {
                    let e = self.err_expr();
                    self.bump();
                    e
                }
            },
        }
    }

    fn parse_ident_prefix(&mut self, no_struct: bool) -> Expr {
        let t = self.peek().expect("caller checked ident"); // rim-lint: allow(no-unwrap-in-lib) — caller dispatched on Ident
        let line = t.line;
        match t.text.as_str() {
            "true" | "false" => {
                let b = t.text == "true";
                self.bump();
                Expr { line, kind: ExprKind::Bool(b) }
            }
            "if" => self.parse_if(),
            "while" => {
                self.bump();
                if self.eat("let") {
                    let (_, idents) = self.parse_pattern(&["="]);
                    self.eat("=");
                    let scrut = self.parse_expr(0, true);
                    let body = self.parse_block();
                    Expr { line, kind: ExprKind::WhileLet(idents, Box::new(scrut), body) }
                } else {
                    let cond = self.parse_expr(0, true);
                    let body = self.parse_block();
                    Expr { line, kind: ExprKind::While(Box::new(cond), body) }
                }
            }
            "loop" => {
                self.bump();
                let body = self.parse_block();
                Expr { line, kind: ExprKind::Loop(body) }
            }
            "for" => {
                self.bump();
                let (_, idents) = self.parse_pattern(&["in"]);
                self.eat("in");
                let iter = self.parse_expr(0, true);
                let body = self.parse_block();
                Expr { line, kind: ExprKind::For(idents, Box::new(iter), body) }
            }
            "match" => self.parse_match(),
            "unsafe" => {
                self.bump();
                let b = self.parse_block();
                Expr { line, kind: ExprKind::Block(b) }
            }
            "return" => {
                self.bump();
                let inner = if self.starts_expr(no_struct) {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                Expr { line, kind: ExprKind::Return(inner) }
            }
            "break" => {
                self.bump();
                if self.peek().is_some_and(|t| t.kind == Kind::Lifetime) {
                    self.bump();
                }
                let inner = if self.starts_expr(no_struct) && self.text() != "{" {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                Expr { line, kind: ExprKind::Break(inner) }
            }
            "continue" => {
                self.bump();
                if self.peek().is_some_and(|t| t.kind == Kind::Lifetime) {
                    self.bump();
                }
                Expr { line, kind: ExprKind::Continue }
            }
            "move" => {
                self.bump();
                self.parse_closure(true)
            }
            _ => {
                // Path: segments separated by `::`, with turbofish.
                let mut segs = vec![self.bump().expect("ident peeked").text.clone()]; // rim-lint: allow(no-unwrap-in-lib) — peeked Ident above
                loop {
                    if self.text() == "::" {
                        match self.text_at(1) {
                            "<" => {
                                self.bump();
                                self.skip_generic_args();
                            }
                            _ if self.peek_at(1).is_some_and(|t| t.kind == Kind::Ident) => {
                                self.bump();
                                segs.push(self.bump().expect("ident peeked").text.clone()); // rim-lint: allow(no-unwrap-in-lib) — peeked Ident above
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                if self.text() == "!" && matches!(self.text_at(1), "(" | "[" | "{") {
                    return self.parse_macro_call(segs, line);
                }
                if self.text() == "{" && !no_struct {
                    return self.parse_struct_lit(segs, line);
                }
                Expr { line, kind: ExprKind::Path(segs) }
            }
        }
    }

    fn parse_if(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // if
        if self.eat("let") {
            let (_, idents) = self.parse_pattern(&["="]);
            self.eat("=");
            let scrut = self.parse_expr(0, true);
            let then = self.parse_block();
            let els = self.parse_else();
            return Expr { line, kind: ExprKind::IfLet(idents, Box::new(scrut), then, els) };
        }
        let cond = self.parse_expr(0, true);
        let then = self.parse_block();
        let els = self.parse_else();
        Expr { line, kind: ExprKind::If(Box::new(cond), then, els) }
    }

    fn parse_else(&mut self) -> Option<Box<Expr>> {
        if !self.eat("else") {
            return None;
        }
        if self.text() == "if" {
            Some(Box::new(self.parse_if()))
        } else {
            let line = self.line();
            let b = self.parse_block();
            Some(Box::new(Expr { line, kind: ExprKind::Block(b) }))
        }
    }

    fn parse_match(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // match
        let scrut = self.parse_expr(0, true);
        let mut arms = Vec::new();
        if !self.eat("{") {
            self.errors += 1;
            return Expr { line, kind: ExprKind::Match(Box::new(scrut), arms) };
        }
        while self.pos < self.code.len() && self.text() != "}" {
            let before = self.pos;
            let arm_line = self.line();
            // `|` alternations may lead the pattern.
            self.eat("|");
            let (_, pat_idents) = self.parse_pattern(&["=>", "if"]);
            let guard = if self.eat("if") { Some(self.parse_expr(0, true)) } else { None };
            if !self.eat("=>") {
                self.errors += 1;
                // Resync: skip to the next `,` or `}` at depth 0. The
                // stop token is not consumed, so force progress when
                // recovery stalled on an unbalanced close.
                self.recover_in_group(",");
                if self.pos == before && self.text() != "}" {
                    self.bump();
                }
                continue;
            }
            let body = self.parse_arm_body();
            self.eat(",");
            arms.push(Arm { line: arm_line, pat_idents, guard, body });
            if self.pos == before {
                self.bump();
                self.errors += 1;
            }
        }
        self.eat("}");
        Expr { line, kind: ExprKind::Match(Box::new(scrut), arms) }
    }

    /// A block-like arm body ends the arm at its closing brace: in
    /// `_ => {} [.., a] => …` the `[` starts the next arm's slice
    /// pattern, so the Pratt postfix loop must not turn it into an
    /// index of the block. Non-block bodies still parse as full
    /// expressions up to the separating comma.
    fn parse_arm_body(&mut self) -> Expr {
        let block_like = self.peek().is_some_and(|t| {
            (t.kind == Kind::Ident
                && matches!(t.text.as_str(), "if" | "match" | "loop" | "while" | "for"))
                || t.text == "{"
        });
        if block_like {
            self.parse_prefix(false)
        } else {
            self.parse_expr(0, false)
        }
    }

    fn parse_struct_lit(&mut self, path: Vec<String>, line: u32) -> Expr {
        self.bump(); // {
        let mut fields = Vec::new();
        let mut base = None;
        while self.pos < self.code.len() && self.text() != "}" {
            let before = self.pos;
            if self.eat("..") {
                if self.text() != "}" {
                    base = Some(Box::new(self.parse_expr(0, false)));
                }
                break;
            }
            let Some(name_tok) = self.peek() else { break };
            if name_tok.kind != Kind::Ident && name_tok.kind != Kind::Int {
                self.errors += 1;
                self.recover_in_group(",");
                // The stop token is not consumed: eat a `,` to move to
                // the next field, otherwise force progress.
                if self.pos == before && !self.eat(",") && self.text() != "}" {
                    self.bump();
                }
                continue;
            }
            let name = name_tok.text.clone();
            self.bump();
            let value = if self.eat(":") {
                self.parse_expr(0, false)
            } else {
                // Field shorthand: `Foo { x }`.
                Expr { line: self.line(), kind: ExprKind::Path(vec![name.clone()]) }
            };
            fields.push((name, value));
            self.eat(",");
            if self.pos == before {
                self.bump();
                self.errors += 1;
            }
        }
        if !self.eat("}") {
            self.errors += 1;
        }
        Expr { line, kind: ExprKind::StructLit(path, fields, base) }
    }

    /// Parses `name!(…)` / `name![…]` / `name!{…}` with best-effort
    /// argument parsing. `vec![x; n]` yields a single
    /// [`ExprKind::Repeat`] argument. If the contents fail to parse as
    /// comma/semicolon-separated expressions, the invocation is marked
    /// opaque and the raw code tokens are kept.
    fn parse_macro_call(&mut self, segs: Vec<String>, line: u32) -> Expr {
        let name = segs.last().cloned().unwrap_or_default();
        self.bump(); // !
        let open = self.text().to_string();
        let _close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => {
                self.errors += 1;
                return Expr { line, kind: ExprKind::Err };
            }
        };
        // Find the matching close up front so a failed parse can fall
        // back to the raw token range.
        let start = self.pos;
        self.skip_group();
        let end = self.pos; // one past the close
        let inner: Vec<&Token> = self.code[start + 1..end.saturating_sub(1).max(start + 1)].to_vec();
        let mut sub =
            Parser { code: &inner, pos: 0, depth: self.depth, errors: 0, opaque_macros: 0 };
        let mut args = Vec::new();
        let mut ok = true;
        while sub.pos < sub.code.len() {
            let before = sub.pos;
            let e = sub.parse_expr(0, false);
            if matches!(e.kind, ExprKind::Err) || sub.errors > 0 {
                ok = false;
                break;
            }
            if sub.eat(";") {
                // `vec![elem; count]` repeat form.
                let count = sub.parse_expr(0, false);
                if sub.errors > 0 {
                    ok = false;
                    break;
                }
                args.push(Expr {
                    line: e.line,
                    kind: ExprKind::Repeat(Box::new(e), Box::new(count)),
                });
                continue;
            }
            args.push(e);
            if sub.pos < sub.code.len() && !sub.eat(",") {
                ok = false;
                break;
            }
            if sub.pos == before {
                ok = false;
                break;
            }
        }
        self.opaque_macros += sub.opaque_macros;
        if ok {
            Expr { line, kind: ExprKind::MacroCall { name, args, opaque: false, raw: Vec::new() } }
        } else {
            self.opaque_macros += 1;
            let raw = inner.iter().map(|t| (t.text.clone(), t.line)).collect();
            Expr { line, kind: ExprKind::MacroCall { name, args: Vec::new(), opaque: true, raw } }
        }
    }

    fn parse_closure(&mut self, _is_move: bool) -> Expr {
        let line = self.line();
        let mut params = Vec::new();
        if self.eat("||") {
            // No parameters.
        } else if self.eat("|") {
            let mut depth = 0usize;
            let mut expect_name = true;
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "|" if depth == 0 => {
                        self.bump();
                        break;
                    }
                    "(" | "[" | "<" => depth += 1,
                    "<<" => depth += 2,
                    ")" | "]" | ">" => depth = depth.saturating_sub(1),
                    ">>" => depth = depth.saturating_sub(2),
                    "," if depth == 0 => expect_name = true,
                    ":" if depth == 0 => expect_name = false,
                    "mut" | "ref" | "&" | "_" => {}
                    _ if t.kind == Kind::Ident && depth == 0 && expect_name => {
                        params.push(t.text.clone());
                        expect_name = false;
                    }
                    _ => {}
                }
                self.bump();
            }
        } else {
            self.errors += 1;
            return Expr { line, kind: ExprKind::Err };
        }
        if self.eat("->") {
            self.skip_type(&["{"]);
            let b = self.parse_block();
            let body = Expr { line, kind: ExprKind::Block(b) };
            return Expr { line, kind: ExprKind::Closure(params, Box::new(body)) };
        }
        let body = self.parse_expr(2, false);
        Expr { line, kind: ExprKind::Closure(params, Box::new(body)) }
    }

    /// Postfix `.`: method call, field access, or tuple index. The
    /// lexer glues `x.0.1` into `x . 0.1` (a Float token), so a Float
    /// after `.` splits into two tuple-index accesses.
    fn parse_dot(&mut self, recv: Expr) -> Expr {
        self.bump(); // .
        let Some(t) = self.peek() else {
            self.errors += 1;
            return recv;
        };
        let line = recv.line;
        match t.kind {
            Kind::Int => {
                let name = t.text.clone();
                self.bump();
                Expr { line, kind: ExprKind::Field(Box::new(recv), name) }
            }
            Kind::Float => {
                // `x.0.1`: Float "0.1" — two tuple-field hops.
                let parts = t.text.clone();
                self.bump();
                let mut e = recv;
                for part in parts.split('.') {
                    e = Expr { line, kind: ExprKind::Field(Box::new(e), part.to_string()) };
                }
                e
            }
            Kind::Ident => {
                let name = t.text.clone();
                self.bump();
                if self.text() == "::" && self.text_at(1) == "<" {
                    self.bump();
                    self.skip_generic_args();
                }
                if self.text() == "(" {
                    let args = self.parse_args("(", ")");
                    Expr { line, kind: ExprKind::MethodCall(Box::new(recv), name, args) }
                } else {
                    Expr { line, kind: ExprKind::Field(Box::new(recv), name) }
                }
            }
            _ => {
                self.errors += 1;
                self.bump();
                recv
            }
        }
    }

    /// Parses a delimited, comma-separated argument list (consumes
    /// both delimiters).
    fn parse_args(&mut self, open: &str, close: &str) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat(open) {
            self.errors += 1;
            return args;
        }
        while self.pos < self.code.len() && self.text() != close {
            let before = self.pos;
            args.push(self.parse_expr(0, false));
            self.eat(",");
            if self.pos == before {
                self.bump();
                self.errors += 1;
            }
        }
        if !self.eat(close) {
            self.errors += 1;
        }
        args
    }

    /// After an error inside a delimited context: skip to `stop`, a
    /// closing delimiter, or `;` at depth 0 — without consuming it.
    fn recover_in_group(&mut self, stop: &str) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                s if depth == 0 && (s == stop || s == ";") => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Consumes a `<…>` group starting at the current `<`, with
    /// `<<`/`>>` counting double — used for turbofish and qualified
    /// paths.
    fn skip_generic_args(&mut self) {
        let mut angle = 0isize;
        let mut guard = 0usize;
        while let Some(t) = self.peek() {
            guard += 1;
            if guard > self.code.len() + 1 {
                return;
            }
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "(" | "[" => {
                    self.skip_group();
                    continue;
                }
                ";" | "{" | "}" => return,
                _ => {}
            }
            self.bump();
            if angle <= 0 {
                return;
            }
        }
    }

    fn skip_qualified_angles(&mut self) {
        self.skip_generic_args();
    }
}

/// Does this expression form carry its own block (and therefore
/// terminate a statement without `;`)?
fn is_block_like(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::If(..)
            | ExprKind::IfLet(..)
            | ExprKind::While(..)
            | ExprKind::WhileLet(..)
            | ExprKind::Loop(..)
            | ExprKind::For(..)
            | ExprKind::Match(..)
            | ExprKind::Block(..)
    ) || matches!(&e.kind, ExprKind::MacroCall { .. })
}

/// Compound and plain assignment operators: right-associative, lowest
/// precedence.
fn assign_bp(op: &str) -> Option<(u8, u8)> {
    matches!(op, "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=")
        .then_some((2, 1))
}

/// Binary operator binding powers (left-assoc pairs), matching the
/// Rust reference precedence table.
fn infix_bp(op: &str) -> Option<(u8, u8)> {
    Some(match op {
        "||" => (7, 8),
        "&&" => (9, 10),
        "==" | "!=" | "<" | ">" | "<=" | ">=" => (11, 12),
        "|" => (13, 14),
        "^" => (15, 16),
        "&" => (17, 18),
        "<<" | ">>" => (19, 20),
        "+" | "-" => (21, 22),
        "*" | "/" | "%" => (23, 24),
        _ => return None,
    })
}

impl Expr {
    /// Canonical fully-parenthesised form, line numbers excluded —
    /// the equality domain for the round-trip property test.
    pub fn sexpr(&self) -> String {
        match &self.kind {
            ExprKind::Int(s) => format!("i:{s}"),
            ExprKind::Float(s) => format!("f:{s}"),
            ExprKind::Lit => "lit".to_string(),
            ExprKind::Bool(b) => format!("b:{b}"),
            ExprKind::Path(segs) => format!("p:{}", segs.join("::")),
            ExprKind::Unary(op, e) => format!("({op} {})", e.sexpr()),
            ExprKind::Binary(op, l, r) => format!("({op} {} {})", l.sexpr(), r.sexpr()),
            ExprKind::Assign(op, l, r) => format!("({op} {} {})", l.sexpr(), r.sexpr()),
            ExprKind::Call(f, args) => {
                format!("(call {} [{}])", f.sexpr(), sexpr_list(args))
            }
            ExprKind::MethodCall(r, name, args) => {
                format!("(. {} {name} [{}])", r.sexpr(), sexpr_list(args))
            }
            ExprKind::Field(r, name) => format!("(field {} {name})", r.sexpr()),
            ExprKind::Index(b, i) => format!("(index {} {})", b.sexpr(), i.sexpr()),
            ExprKind::Cast(e) => format!("(as {})", e.sexpr()),
            ExprKind::Range(l, r, incl) => format!(
                "(range{} {} {})",
                if *incl { "=" } else { "" },
                l.as_ref().map(|e| e.sexpr()).unwrap_or_default(),
                r.as_ref().map(|e| e.sexpr()).unwrap_or_default()
            ),
            ExprKind::Try(e) => format!("(? {})", e.sexpr()),
            ExprKind::Closure(params, body) => {
                format!("(closure [{}] {})", params.join(","), body.sexpr())
            }
            ExprKind::Tuple(items) => format!("(tuple [{}])", sexpr_list(items)),
            ExprKind::Array(items) => format!("(array [{}])", sexpr_list(items)),
            ExprKind::Repeat(e, n) => format!("(repeat {} {})", e.sexpr(), n.sexpr()),
            ExprKind::MacroCall { name, args, opaque, .. } => {
                format!("(macro {name}{} [{}])", if *opaque { "?" } else { "" }, sexpr_list(args))
            }
            ExprKind::Return(e) => {
                format!("(return {})", e.as_ref().map(|e| e.sexpr()).unwrap_or_default())
            }
            ExprKind::Break(e) => {
                format!("(break {})", e.as_ref().map(|e| e.sexpr()).unwrap_or_default())
            }
            ExprKind::Continue => "(continue)".to_string(),
            ExprKind::Err => "(err)".to_string(),
            ExprKind::If(..)
            | ExprKind::IfLet(..)
            | ExprKind::While(..)
            | ExprKind::WhileLet(..)
            | ExprKind::Loop(..)
            | ExprKind::For(..)
            | ExprKind::Match(..)
            | ExprKind::Block(..)
            | ExprKind::StructLit(..) => format!("(opaque:{:?})", std::mem::discriminant(&self.kind)),
        }
    }

    /// Pretty-prints with minimal parentheses; `parse(pretty(e))` has
    /// the same [`Expr::sexpr`] as `e` for the operator/atom subset the
    /// round-trip test generates.
    pub fn pretty(&self) -> String {
        self.pretty_bp(0)
    }

    /// Precedence of this node when it appears as a subexpression
    /// (atoms bind tightest).
    fn prec(&self) -> u8 {
        match &self.kind {
            ExprKind::Assign(..) => 2,
            ExprKind::Range(..) => 5,
            ExprKind::Binary(op, ..) => infix_bp(op).map(|(l, _)| l).unwrap_or(99),
            ExprKind::Cast(..) => 25,
            ExprKind::Unary(..) => 25,
            ExprKind::Call(..)
            | ExprKind::MethodCall(..)
            | ExprKind::Field(..)
            | ExprKind::Index(..)
            | ExprKind::Try(..) => 27,
            ExprKind::Closure(..) => 2,
            _ => 99,
        }
    }

    fn pretty_bp(&self, min_bp: u8) -> String {
        let body = match &self.kind {
            ExprKind::Int(s) | ExprKind::Float(s) => s.clone(),
            ExprKind::Lit => "\"s\"".to_string(),
            ExprKind::Bool(b) => b.to_string(),
            ExprKind::Path(segs) => segs.join(" :: "),
            ExprKind::Unary(op, e) => format!("{op} {}", e.pretty_bp(25)),
            ExprKind::Binary(op, l, r) => {
                let (lbp, rbp) = infix_bp(op).unwrap_or((11, 12));
                format!("{} {op} {}", l.pretty_bp(lbp), r.pretty_bp(rbp))
            }
            ExprKind::Assign(op, l, r) => {
                format!("{} {op} {}", l.pretty_bp(3), r.pretty_bp(1))
            }
            ExprKind::Call(f, args) => format!("{} ({})", f.pretty_bp(27), pretty_list(args)),
            ExprKind::MethodCall(r, name, args) => {
                format!("{} . {name} ({})", r.pretty_bp(27), pretty_list(args))
            }
            ExprKind::Field(r, name) => format!("{} . {name}", r.pretty_bp(27)),
            ExprKind::Index(b, i) => format!("{} [ {} ]", b.pretty_bp(27), i.pretty_bp(0)),
            ExprKind::Try(e) => format!("{} ?", e.pretty_bp(27)),
            ExprKind::Range(l, r, incl) => format!(
                "{} {} {}",
                l.as_ref().map(|e| e.pretty_bp(6)).unwrap_or_default(),
                if *incl { "..=" } else { ".." },
                r.as_ref().map(|e| e.pretty_bp(6)).unwrap_or_default()
            ),
            ExprKind::Tuple(items) => {
                if items.len() == 1 {
                    format!("( {} , )", items[0].pretty_bp(0))
                } else {
                    format!("( {} )", pretty_list(items))
                }
            }
            ExprKind::Array(items) => format!("[ {} ]", pretty_list(items)),
            ExprKind::Repeat(e, n) => format!("[ {} ; {} ]", e.pretty_bp(0), n.pretty_bp(0)),
            ExprKind::Closure(params, body) => {
                format!("| {} | {}", params.join(" , "), body.pretty_bp(2))
            }
            other => format!("/*unprintable {:?}*/ 0", std::mem::discriminant(other)),
        };
        if self.prec() < min_bp {
            format!("( {body} )")
        } else {
            body
        }
    }
}

fn sexpr_list(items: &[Expr]) -> String {
    items.iter().map(Expr::sexpr).collect::<Vec<_>>().join(", ")
}

fn pretty_list(items: &[Expr]) -> String {
    items.iter().map(|e| e.pretty_bp(0)).collect::<Vec<_>>().join(" , ")
}

/// Walks every expression in a block, depth-first, calling `f` on each
/// — including loop/branch bodies, closure bodies, match guards/arms,
/// struct-literal fields, macro arguments, and nested `fn` bodies.
pub fn walk_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = els {
                    walk_block(b, f);
                }
            }
            Stmt::Expr(e, _) => walk_expr(e, f),
            Stmt::Item(Some(b)) => walk_block(b, f),
            Stmt::Item(None) => {}
        }
    }
    if let Some(tail) = &block.tail {
        walk_expr(tail, f);
    }
}

/// Depth-first expression walk (see [`walk_block`]).
pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary(_, a) | ExprKind::Cast(a) | ExprKind::Try(a) => walk_expr(a, f),
        ExprKind::Binary(_, a, b) | ExprKind::Assign(_, a, b) | ExprKind::Index(a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        ExprKind::Repeat(a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        ExprKind::Call(callee, args) => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall(recv, _, args) => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Field(a, _) => walk_expr(a, f),
        ExprKind::Range(a, b, _) => {
            if let Some(a) = a {
                walk_expr(a, f);
            }
            if let Some(b) = b {
                walk_expr(b, f);
            }
        }
        ExprKind::Closure(_, body) => walk_expr(body, f),
        ExprKind::If(cond, then, els) => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::IfLet(_, scrut, then, els) => {
            walk_expr(scrut, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::While(cond, body) => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        ExprKind::WhileLet(_, scrut, body) => {
            walk_expr(scrut, f);
            walk_block(body, f);
        }
        ExprKind::Loop(body) => walk_block(body, f),
        ExprKind::For(_, iter, body) => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        ExprKind::Match(scrut, arms) => {
            walk_expr(scrut, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::Block(b) => walk_block(b, f),
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for e in items {
                walk_expr(e, f);
            }
        }
        ExprKind::StructLit(_, fields, base) => {
            for (_, e) in fields {
                walk_expr(e, f);
            }
            if let Some(b) = base {
                walk_expr(b, f);
            }
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Return(a) | ExprKind::Break(a) => {
            if let Some(a) = a {
                walk_expr(a, f);
            }
        }
        ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Lit
        | ExprKind::Bool(_)
        | ExprKind::Path(_)
        | ExprKind::Continue
        | ExprKind::Err => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        let body = parse_source_body(src);
        assert_eq!(body.errors, 0, "parse errors in {src:?}: {body:#?}");
        match body.block.tail {
            Some(e) => *e,
            None => match body.block.stmts.into_iter().next() {
                Some(Stmt::Expr(e, _)) => e,
                other => panic!("no expression statement in {src:?}: {other:?}"),
            },
        }
    }

    #[test]
    fn block_bodied_arm_followed_by_slice_pattern_arm() {
        // `} [` between arms is the next arm's slice pattern, not an
        // index into the block body of the previous arm.
        for src in [
            "match s { _ => {} [.., b] => { f(2); } }",
            "match s { [.., a] if a == 1 => { f(1); } [.., b] => { f(2); } _ => {} }",
            "match s { A(x) => if x { g(); } [.., b] => { f(2); } _ => {} }",
            "match s { _ => match t { _ => {} } [.., b] => { f(2); } }",
        ] {
            let body = parse_source_body(src);
            assert_eq!(body.errors, 0, "parse errors in {src:?}: {body:#?}");
            let ExprKind::Match(_, arms) = expr(src).kind else {
                panic!("not a match: {src:?}")
            };
            assert!(
                arms.iter().any(|a| a.pat_idents.contains(&"b".to_string())),
                "slice-pattern arm lost in {src:?}"
            );
        }
        // Non-block arm bodies still take postfix operators.
        let ExprKind::Match(_, arms) = expr("match s { _ => v[i], }").kind else {
            panic!("not a match")
        };
        assert_eq!(arms.len(), 1);
        assert_eq!(arms[0].body.sexpr(), "(index p:v p:i)");
    }

    #[test]
    fn precedence_shapes() {
        assert_eq!(expr("a + b * c").sexpr(), "(+ p:a (* p:b p:c))");
        assert_eq!(expr("(a + b) * c").sexpr(), "(* (+ p:a p:b) p:c)");
        assert_eq!(expr("a < b && c >= d").sexpr(), "(&& (< p:a p:b) (>= p:c p:d))");
        assert_eq!(expr("- a . dist ( b )").sexpr(), "(- (. p:a dist [p:b]))");
        assert_eq!(expr("a = b = c").sexpr(), "(= p:a (= p:b p:c))");
        assert_eq!(expr("a - b - c").sexpr(), "(- (- p:a p:b) p:c)");
    }

    #[test]
    fn postfix_chains_and_indexing() {
        assert_eq!(expr("v[i].x").sexpr(), "(field (index p:v p:i) x)");
        assert_eq!(
            expr("p.dist_sq(q).sqrt()").sexpr(),
            "(. (. p:p dist_sq [p:q]) sqrt [])"
        );
        assert_eq!(expr("t.0.1").sexpr(), "(field (field p:t 0) 1)");
        assert_eq!(expr("f()?").sexpr(), "(? (call p:f []))");
        assert_eq!(expr("x.parse::<f64>()").sexpr(), "(. p:x parse [])");
    }

    #[test]
    fn ranges_casts_and_refs() {
        assert_eq!(expr("0..n").sexpr(), "(range i:0 p:n)");
        assert_eq!(expr("0..=n - 1").sexpr(), "(range= i:0 (- p:n i:1))");
        assert_eq!(expr("&v[..]").sexpr(), "(& (index p:v (range  )))");
        assert_eq!(expr("n as f64 + 1.0").sexpr(), "(+ (as p:n) f:1.0)");
        assert_eq!(expr("&&x").sexpr(), "(& (& p:x))");
        assert_eq!(expr("&mut buf").sexpr(), "(&mut p:buf)");
    }

    #[test]
    fn macros_and_repeat() {
        assert_eq!(expr("vec![0.0; n]").sexpr(), "(macro vec [(repeat f:0.0 p:n)])");
        assert_eq!(
            expr("assert!(i < v.len(), \"oob\")").sexpr(),
            "(macro assert [(< p:i (. p:v len [])), lit])"
        );
        // Pattern-only macro args that cannot be read as an expression
        // list degrade to opaque, never to a parse error.
        let body = parse_source_body("matches!(x, Some(v) if v > 0)");
        assert_eq!(body.errors, 0);
        assert_eq!(body.opaque_macros, 1);
        // …while expression-shaped args parse structurally.
        let body = parse_source_body("matches!(x, Foo { .. })");
        assert_eq!(body.errors, 0);
        assert_eq!(body.opaque_macros, 0);
    }

    #[test]
    fn control_flow_statements() {
        let body = parse_source_body(
            "let mut acc = 0.0;\n\
             for (i, p) in pts.iter().enumerate() {\n\
                 if dist(p, q) <= r { acc += w[i]; } else { acc -= 1.0; }\n\
             }\n\
             match acc { x if x > 0.0 => x, _ => 0.0 }",
        );
        assert_eq!(body.errors, 0, "{body:#?}");
        assert_eq!(body.block.stmts.len(), 2);
        assert!(body.block.tail.is_some());
        let Stmt::Let { name, .. } = &body.block.stmts[0] else { panic!() };
        assert_eq!(name.as_deref(), Some("acc"));
        let Stmt::Expr(for_expr, _) = &body.block.stmts[1] else { panic!() };
        let ExprKind::For(pat, _, _) = &for_expr.kind else { panic!("{for_expr:?}") };
        assert_eq!(pat, &["i", "p"]);
    }

    #[test]
    fn let_else_and_while_let() {
        let body = parse_source_body(
            "let Some(d) = maybe else { return None; };\n\
             while let Some(x) = stack.pop() { total += x; }",
        );
        assert_eq!(body.errors, 0, "{body:#?}");
        let Stmt::Let { pat_idents, els, .. } = &body.block.stmts[0] else { panic!() };
        assert_eq!(pat_idents, &["d"]);
        assert!(els.is_some());
    }

    #[test]
    fn struct_literals_and_condition_restriction() {
        let e = expr("Point { x: 1.0, y }");
        let ExprKind::StructLit(path, fields, _) = &e.kind else { panic!("{e:?}") };
        assert_eq!(path, &["Point"]);
        assert_eq!(fields.len(), 2);
        // `if x { … }` must parse `x` as a path and `{ … }` as the
        // then-block, not as a struct literal.
        let body = parse_source_body("if x { y() } z");
        assert_eq!(body.errors, 0, "{body:#?}");
        assert_eq!(body.block.stmts.len(), 1);
    }

    #[test]
    fn closures_and_labels() {
        let e = expr("pts.iter().map(|p| p.dist(q)).sum::<f64>()");
        assert!(e.sexpr().contains("(closure [p]"), "{}", e.sexpr());
        let body = parse_source_body("'scan: while i < n { if stop { break 'scan; } i += 1; }");
        assert_eq!(body.errors, 0, "{body:#?}");
    }

    #[test]
    fn nested_items_are_parsed_recursively() {
        let body = parse_source_body(
            "fn helper(v: &[f64]) -> f64 { v[0] }\n\
             const K: usize = 4;\n\
             helper(&xs)",
        );
        assert_eq!(body.errors, 0, "{body:#?}");
        let Stmt::Item(Some(inner)) = &body.block.stmts[0] else { panic!("{body:#?}") };
        assert!(inner.tail.is_some(), "nested fn body must be parsed");
        let Stmt::Item(None) = &body.block.stmts[1] else { panic!("{body:#?}") };
    }

    #[test]
    fn error_recovery_counts_and_terminates() {
        let body = parse_source_body("let x = ; ; @ @ @ let y = 1;");
        assert!(body.errors > 0);
        // The well-formed tail statement still parses.
        assert!(body
            .block
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::Let { name: Some(n), .. } if n == "y")));
    }

    #[test]
    fn walk_visits_nested_expressions() {
        let body = parse_source_body("if a { f(b[i]) } else { g(c) }");
        let mut paths = Vec::new();
        walk_block(&body.block, &mut |e| {
            if let ExprKind::Path(p) = &e.kind {
                paths.push(p.join("::"));
            }
        });
        for want in ["a", "f", "b", "i", "g", "c"] {
            assert!(paths.iter().any(|p| p == want), "missing {want} in {paths:?}");
        }
    }

    #[test]
    fn pretty_round_trips_handwritten_cases() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "a * (b + c) * d",
            "- (a + b)",
            "a . m (b , c) [i] . f",
            "a < b && ! c",
            "x = y + 1",
            "a .. b + 1",
        ] {
            let e = expr(src);
            let printed = e.pretty();
            let reparsed = expr(&printed);
            assert_eq!(e.sexpr(), reparsed.sexpr(), "round-trip of {src:?} via {printed:?}");
        }
    }
}
