//! Expression-level dataflow over the [`crate::expr`] trees: a
//! units-of-measure lattice, a purity/determinism analysis, and
//! const-bounds propagation for panic-freedom discharge.
//!
//! Three analyses share the parsed bodies collected by [`analyze`]:
//!
//! 1. **Units of measure** ([`Unit`], [`ident_unit`]). Metric
//!    quantities carry a *power*: `Distance`/`Radius` live at power 1,
//!    `DistanceSq`/`RadiusSq` at power 2. Multiplying two power-1
//!    quantities squares (`r * r`), `sqrt()` unsquares, `powi(2)`
//!    squares, and per-function return units are inferred
//!    interprocedurally over the PR-6 call graph (a small fixpoint:
//!    `fn dist_sq` seeds from its name, a caller binding its result
//!    picks up `DistanceSq` regardless of what the binding is called).
//!    The dataflow `squared-distance-mismatch`
//!    ([`check_unit_mismatch`]) flags any comparison or add/sub whose
//!    sides live at different powers.
//! 2. **Determinism** ([`audit_engine_determinism`]). Functions pinned
//!    by the differential/thread-invariance test layers
//!    ([`DETERMINISM_ROOTS`]) must not reach atomic read-modify-write
//!    ops, RNG draws, wall-clock reads, or observability-sink
//!    installation without a justified
//!    `// rim-lint: allow(engine-determinism)` pragma.
//! 3. **Const bounds** ([`audit_indexing`]). Facts like "`buf` has
//!    length `n`" (from `vec![0.0; n]`) and "`i < v.len()`" (from
//!    `for i in 0..v.len()`, `enumerate`, `assert!`, diverging guards,
//!    `min(len - 1)`) discharge slice-indexing obligations, so
//!    `panic-freedom` only reports indexing it cannot prove in bounds.
//!
//! **Soundness caveats** (deliberate, documented in DESIGN.md §10):
//! name resolution is the PR-6 heuristic resolver (any same-named fn
//! in the dependency closure may be the callee), patterns and types
//! are opaque, and aliasing through `&mut` is approximated by killing
//! facts whenever a binding is reassigned, hit by a length-changing
//! method, or passed by `&mut`. The passes are linters, not
//! verifiers: they never panic and prefer `Unknown`/"unproven" over
//! guessing.

use crate::expr::{self, Arm, Block, Body, Expr, ExprKind, Stmt};
use crate::lexer::{Kind, Token};
use crate::model::Workspace;
use crate::rules::Pragmas;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------
// Units of measure
// ---------------------------------------------------------------------

/// The units-of-measure lattice. `Unknown` is the conservative top:
/// joins of conflicting units land there, and no rule ever fires on
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A Euclidean distance (power 1).
    Distance,
    /// A squared distance (power 2).
    DistanceSq,
    /// A transmission radius (power 1).
    Radius,
    /// A squared radius (power 2).
    RadiusSq,
    /// A cardinality (`len()`, counts).
    Count,
    /// A container index.
    Index,
    /// Wall-clock seconds / durations.
    Seconds,
    /// A linear power in milliwatts (`_mw` convention, `rim-phys`).
    PowerMw,
    /// A logarithmic power level or gain in dBm/dB (`_dbm`/`_db`).
    PowerDbm,
    /// No information (top).
    Unknown,
}

impl Unit {
    /// Metric power: 1 for plain distances/radii, 2 for their squares,
    /// `None` for non-metric units.
    pub fn power(self) -> Option<u8> {
        match self {
            Unit::Distance | Unit::Radius => Some(1),
            Unit::DistanceSq | Unit::RadiusSq => Some(2),
            _ => None,
        }
    }

    /// The unit of `x * x` for a power-1 `x`; `Unknown` squares to the
    /// generic `DistanceSq` (callers only apply this on actual
    /// squaring evidence — `powi(2)` or a self-multiplication).
    pub fn squared(self) -> Unit {
        match self {
            Unit::Distance => Unit::DistanceSq,
            Unit::Radius => Unit::RadiusSq,
            Unit::Unknown => Unit::DistanceSq,
            _ => Unit::Unknown,
        }
    }

    /// The unit of `x.sqrt()` for a power-2 `x`.
    pub fn unsquared(self) -> Unit {
        match self {
            Unit::DistanceSq => Unit::Distance,
            Unit::RadiusSq => Unit::Radius,
            _ => Unit::Unknown,
        }
    }

    /// Lattice join: equal units survive; distances and radii merge at
    /// equal power (both are lengths); anything else is `Unknown`.
    pub fn join(self, other: Unit) -> Unit {
        if self == other {
            return self;
        }
        match (self.power(), other.power()) {
            (Some(1), Some(1)) => Unit::Distance,
            (Some(2), Some(2)) => Unit::DistanceSq,
            _ => Unit::Unknown,
        }
    }
}

/// Classifies an identifier (binding, field, parameter, or function
/// name) into the unit lattice. This is the **single** naming
/// convention table: the legacy token-window scanner in
/// [`crate::rules`] and the dataflow pass both call it, so
/// `norm2`/`r2`-style names are classified once.
pub fn ident_unit(name: &str) -> Unit {
    let lower = name.to_ascii_lowercase();
    let base = lower
        .strip_suffix("_squared")
        .or_else(|| lower.strip_suffix("_sq"))
        .or_else(|| lower.strip_suffix("sq"))
        .or_else(|| lower.strip_suffix('2'));
    if let Some(base) = base {
        let base = base.trim_end_matches('_');
        if is_distance_base(base) {
            return Unit::DistanceSq;
        }
        if is_radius_base(base) {
            return Unit::RadiusSq;
        }
    }
    let base = lower.as_str();
    if is_distance_base(base) {
        return Unit::Distance;
    }
    if is_radius_base(base) {
        return Unit::Radius;
    }
    if base == "len" || base == "count" || base == "cnt" || base.starts_with("num_") {
        return Unit::Count;
    }
    if base == "idx" || base == "index" || base.ends_with("_idx") || base.ends_with("_index") {
        return Unit::Index;
    }
    if base == "secs"
        || base == "seconds"
        || base == "elapsed"
        || base == "duration"
        || base.ends_with("_secs")
    {
        return Unit::Seconds;
    }
    // Power domains (rim-phys): suffix-keyed only — a bare `power` stays
    // Unknown so generic names (and this very method) are not captured.
    if base == "mw" || base.ends_with("_mw") {
        return Unit::PowerMw;
    }
    if base == "dbm" || base.ends_with("_dbm") || base == "db" || base.ends_with("_db") {
        return Unit::PowerDbm;
    }
    Unit::Unknown
}

/// Distance-flavoured identifier bases: `dist`, `distance`, `norm`,
/// `d`, plus compounds (`min_dist`, `dists`).
fn is_distance_base(base: &str) -> bool {
    base == "d" || base == "norm" || base.contains("dist") || base.starts_with("norm")
}

/// Radius-flavoured identifier bases: `r`, `radius`, `radii`, plus the
/// physical model's derived radii `rho` (coverage) and `cutoff`
/// (noise-floor range). `rho` is matched as a word, not a substring, so
/// names like `threshold` stay unclassified.
fn is_radius_base(base: &str) -> bool {
    base == "r"
        || base.contains("radius")
        || base.contains("radii")
        || base == "rho"
        || base.starts_with("rho_")
        || base.ends_with("_rho")
        || base.contains("cutoff")
}

// ---------------------------------------------------------------------
// Workspace analysis: parsed bodies + inferred signatures
// ---------------------------------------------------------------------

/// The shared dataflow context: one parsed body and inferred unit
/// signature per [`Workspace::fns`] entry.
pub struct Flow {
    /// Parsed body per fn (`None` for bodiless declarations).
    pub bodies: Vec<Option<Body>>,
    /// Inferred return unit per fn.
    pub ret_units: Vec<Unit>,
    /// Parameter `(name, unit)` pairs per fn, from the signature
    /// tokens.
    pub param_units: Vec<Vec<(String, Unit)>>,
    /// Total expression-parser error nodes across all bodies (the
    /// self-test pins this to zero for the workspace).
    pub parse_errors: usize,
}

/// Parses every fn body and runs the interprocedural unit-signature
/// fixpoint (name-seeded, capped at 6 rounds).
pub fn analyze(ws: &Workspace) -> Flow {
    let mut bodies = Vec::with_capacity(ws.fns.len());
    let mut param_units = Vec::with_capacity(ws.fns.len());
    let mut parse_errors = 0usize;
    for f in &ws.fns {
        let tokens = ws.files[f.file_idx].tokens;
        if f.body.1 > f.body.0 {
            let body = expr::parse_fn_body(tokens, f.body);
            parse_errors += body.errors;
            bodies.push(Some(body));
        } else {
            bodies.push(None);
        }
        param_units.push(signature_params(tokens, f.sig, &f.name));
    }
    // Seed return units from the function's own name (`fn dist_sq`
    // returns a squared distance until the body proves otherwise).
    let mut ret_units: Vec<Unit> = ws.fns.iter().map(|f| ident_unit(&f.name)).collect();
    for _round in 0..6 {
        let mut changed = false;
        for (i, body) in bodies.iter().enumerate() {
            let Some(body) = body else { continue };
            let mut env: BTreeMap<String, Unit> = param_units[i]
                .iter()
                .filter(|(_, u)| *u != Unit::Unknown)
                .cloned()
                .collect();
            let ctx = UnitCtx { ws, ret_units: &ret_units };
            let mut ret = ret_unit_of_body(&body.block, &mut env, &ctx);
            if ret == Unit::Unknown {
                ret = ident_unit(&ws.fns[i].name);
            }
            if ret != ret_units[i] {
                ret_units[i] = ret;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Flow { bodies, ret_units, param_units, parse_errors }
}

/// Extracts `(name, unit)` parameter pairs from a fn signature token
/// range: idents directly followed by `:` at parenthesis depth 1,
/// generics skipped.
fn signature_params(tokens: &[Token], (s0, s1): (usize, usize), fn_name: &str) -> Vec<(String, Unit)> {
    let code: Vec<&Token> = tokens[s0.min(tokens.len())..s1.min(tokens.len())]
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .collect();
    // Find `fn <name>`, skip its generics, stop at the opening `(`.
    let mut i = 0usize;
    while i + 1 < code.len() {
        if code[i].text == "fn" && code[i + 1].text == fn_name {
            break;
        }
        i += 1;
    }
    let mut j = i + 2;
    let mut angle = 0isize;
    while j < code.len() {
        match code[j].text.as_str() {
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "(" if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    while j < code.len() {
        match code[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            ":" if depth == 1 => {
                if j > 0 && code[j - 1].kind == Kind::Ident {
                    let name = code[j - 1].text.clone();
                    out.push((name.clone(), ident_unit(&name)));
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Interprocedural lookup context for [`unit_of`].
struct UnitCtx<'w, 'a> {
    ws: &'w Workspace<'a>,
    ret_units: &'w [Unit],
}

impl UnitCtx<'_, '_> {
    /// Joined return unit of every workspace definition named `name`
    /// (`methods_only` restricts to impl-qualified fns).
    fn callee_unit(&self, name: &str, methods_only: bool) -> Unit {
        let mut joined: Option<Unit> = None;
        for &i in self.ws.defs_named(name) {
            if methods_only && self.ws.fns[i].qual.is_none() {
                continue;
            }
            let u = self.ret_units[i];
            joined = Some(match joined {
                None => u,
                Some(j) => j.join(u),
            });
        }
        match joined {
            Some(u) if u != Unit::Unknown => u,
            _ => ident_unit(name),
        }
    }
}

/// Evaluates a body: folds its statements into `env` and joins the
/// units of all `return` expressions with the tail expression.
fn ret_unit_of_body(
    block: &Block,
    env: &mut BTreeMap<String, Unit>,
    ctx: &UnitCtx,
) -> Unit {
    let mut ret = Unit::Unknown;
    let mut seen_return = false;
    walk_units_block(block, env, ctx, &mut |e, env| {
        if let ExprKind::Return(Some(inner)) = &e.kind {
            let u = unit_of(inner, env, ctx);
            ret = if seen_return { ret.join(u) } else { u };
            seen_return = true;
        }
    });
    let tail = block.tail.as_ref().map(|t| unit_of(t, env, ctx)).unwrap_or(Unit::Unknown);
    match (seen_return, tail) {
        (false, t) => t,
        (true, Unit::Unknown) => ret,
        (true, t) => ret.join(t),
    }
}

/// Walks a block in statement order, maintaining the unit environment
/// and invoking `f` on every expression with the env as of that
/// point. Nested scopes inherit a clone of the environment.
fn walk_units_block(
    block: &Block,
    env: &mut BTreeMap<String, Unit>,
    ctx: &UnitCtx,
    f: &mut impl FnMut(&Expr, &BTreeMap<String, Unit>),
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { name, pat_idents, init, els, .. } => {
                if let Some(init) = init {
                    walk_units_expr(init, env, ctx, f);
                }
                if let Some(els) = els {
                    let mut inner = env.clone();
                    walk_units_block(els, &mut inner, ctx, f);
                }
                if let (Some(n), Some(init)) = (name, init.as_ref()) {
                    let u = unit_of(init, env, ctx);
                    let u = if u == Unit::Unknown { ident_unit(n) } else { u };
                    env.insert(n.clone(), u);
                } else {
                    for id in pat_idents {
                        env.insert(id.clone(), ident_unit(id));
                    }
                }
            }
            Stmt::Expr(e, _) => {
                walk_units_expr(e, env, ctx, f);
                if let ExprKind::Assign(op, lhs, rhs) = &e.kind {
                    if op == "=" {
                        if let ExprKind::Path(segs) = &lhs.kind {
                            if let [n] = segs.as_slice() {
                                let u = unit_of(rhs, env, ctx);
                                if u != Unit::Unknown {
                                    env.insert(n.clone(), u);
                                }
                            }
                        }
                    }
                }
            }
            Stmt::Item(Some(b)) => {
                let mut inner = BTreeMap::new();
                walk_units_block(b, &mut inner, ctx, f);
            }
            Stmt::Item(None) => {}
        }
    }
    if let Some(tail) = &block.tail {
        walk_units_expr(tail, env, ctx, f);
    }
}

/// Expression-level recursion for [`walk_units_block`]: loop, branch,
/// and closure bodies get cloned environments with their bound names
/// installed.
fn walk_units_expr(
    e: &Expr,
    env: &BTreeMap<String, Unit>,
    ctx: &UnitCtx,
    f: &mut impl FnMut(&Expr, &BTreeMap<String, Unit>),
) {
    f(e, env);
    match &e.kind {
        ExprKind::If(cond, then, els) => {
            walk_units_expr(cond, env, ctx, f);
            let mut inner = env.clone();
            walk_units_block(then, &mut inner, ctx, f);
            if let Some(els) = els {
                walk_units_expr(els, env, ctx, f);
            }
        }
        ExprKind::IfLet(idents, scrut, then, els) => {
            walk_units_expr(scrut, env, ctx, f);
            let mut inner = env.clone();
            let su = unit_of(scrut, env, ctx);
            for id in idents {
                let u = if su == Unit::Unknown { ident_unit(id) } else { su };
                inner.insert(id.clone(), u);
            }
            walk_units_block(then, &mut inner, ctx, f);
            if let Some(els) = els {
                walk_units_expr(els, env, ctx, f);
            }
        }
        ExprKind::While(cond, body) => {
            walk_units_expr(cond, env, ctx, f);
            let mut inner = env.clone();
            walk_units_block(body, &mut inner, ctx, f);
        }
        ExprKind::WhileLet(idents, scrut, body) => {
            walk_units_expr(scrut, env, ctx, f);
            let mut inner = env.clone();
            for id in idents {
                inner.insert(id.clone(), ident_unit(id));
            }
            walk_units_block(body, &mut inner, ctx, f);
        }
        ExprKind::Loop(body) | ExprKind::Block(body) => {
            let mut inner = env.clone();
            walk_units_block(body, &mut inner, ctx, f);
        }
        ExprKind::For(idents, iter, body) => {
            walk_units_expr(iter, env, ctx, f);
            let mut inner = env.clone();
            let elem = element_unit(iter, env, ctx);
            match idents.as_slice() {
                [single] => {
                    let u = if elem == Unit::Unknown { ident_unit(single) } else { elem };
                    inner.insert(single.clone(), u);
                }
                many => {
                    for id in many {
                        inner.insert(id.clone(), ident_unit(id));
                    }
                }
            }
            walk_units_block(body, &mut inner, ctx, f);
        }
        ExprKind::Match(scrut, arms) => {
            walk_units_expr(scrut, env, ctx, f);
            for arm in arms {
                let mut inner = env.clone();
                for id in &arm.pat_idents {
                    inner.insert(id.clone(), ident_unit(id));
                }
                if let Some(g) = &arm.guard {
                    walk_units_expr(g, &inner, ctx, f);
                }
                walk_units_expr(&arm.body, &inner, ctx, f);
            }
        }
        ExprKind::Closure(params, body) => {
            let mut inner = env.clone();
            for p in params {
                inner.insert(p.clone(), ident_unit(p));
            }
            walk_units_expr(body, &inner, ctx, f);
        }
        ExprKind::Unary(_, a) | ExprKind::Cast(a) | ExprKind::Try(a) | ExprKind::Field(a, _) => {
            walk_units_expr(a, env, ctx, f)
        }
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(_, a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Repeat(a, b) => {
            walk_units_expr(a, env, ctx, f);
            walk_units_expr(b, env, ctx, f);
        }
        ExprKind::Call(callee, args) => {
            walk_units_expr(callee, env, ctx, f);
            for a in args {
                walk_units_expr(a, env, ctx, f);
            }
        }
        ExprKind::MethodCall(recv, _, args) => {
            walk_units_expr(recv, env, ctx, f);
            for a in args {
                walk_units_expr(a, env, ctx, f);
            }
        }
        ExprKind::Range(a, b, _) => {
            if let Some(a) = a {
                walk_units_expr(a, env, ctx, f);
            }
            if let Some(b) = b {
                walk_units_expr(b, env, ctx, f);
            }
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for item in items {
                walk_units_expr(item, env, ctx, f);
            }
        }
        ExprKind::StructLit(_, fields, base) => {
            for (_, v) in fields {
                walk_units_expr(v, env, ctx, f);
            }
            if let Some(b) = base {
                walk_units_expr(b, env, ctx, f);
            }
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                walk_units_expr(a, env, ctx, f);
            }
        }
        ExprKind::Return(a) | ExprKind::Break(a) => {
            if let Some(a) = a {
                walk_units_expr(a, env, ctx, f);
            }
        }
        _ => {}
    }
}

/// Element unit of an iterated expression: iterator adaptors that
/// preserve elements are transparent, so `for d in dists.iter()` gives
/// `d` the unit of `dists`; plain ranges yield indices.
fn element_unit(iter: &Expr, env: &BTreeMap<String, Unit>, ctx: &UnitCtx) -> Unit {
    match &iter.kind {
        ExprKind::MethodCall(recv, name, _)
            if matches!(name.as_str(), "iter" | "iter_mut" | "into_iter" | "copied" | "cloned") =>
        {
            element_unit(recv, env, ctx)
        }
        ExprKind::Unary(_, inner) => element_unit(inner, env, ctx),
        ExprKind::Range(..) => Unit::Index,
        _ => unit_of(iter, env, ctx),
    }
}

/// The unit of one expression under `env`. Never panics; prefers
/// `Unknown` to guessing.
fn unit_of(e: &Expr, env: &BTreeMap<String, Unit>, ctx: &UnitCtx) -> Unit {
    match &e.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [single] => env.get(single).copied().unwrap_or_else(|| ident_unit(single)),
            [.., last] => ident_unit(last),
            [] => Unit::Unknown,
        },
        ExprKind::Field(_, name) => ident_unit(name),
        ExprKind::Unary(_, inner) | ExprKind::Cast(inner) | ExprKind::Try(inner) => {
            unit_of(inner, env, ctx)
        }
        ExprKind::Index(base, _) => unit_of(base, env, ctx),
        ExprKind::Binary(op, l, r) => {
            let (ul, ur) = (unit_of(l, env, ctx), unit_of(r, env, ctx));
            match op.as_str() {
                "*" => match (ul.power(), ur.power()) {
                    (Some(1), Some(1)) => ul.join(ur).squared(),
                    // Structural self-multiplication is squaring
                    // evidence even with an unknown operand (`w * w`).
                    _ if l.sexpr() == r.sexpr()
                        && !matches!(ul, Unit::Count | Unit::Index | Unit::Seconds) =>
                    {
                        ul.squared()
                    }
                    _ => Unit::Unknown,
                },
                "/" => match (ul.power(), ur.power()) {
                    (Some(2), Some(1)) => ul.unsquared(),
                    _ => Unit::Unknown,
                },
                "+" | "-" => ul.join(ur),
                _ => Unit::Unknown,
            }
        }
        ExprKind::MethodCall(recv, name, args) => {
            let ru = unit_of(recv, env, ctx);
            match name.as_str() {
                "sqrt" => ru.unsquared(),
                "powi" | "powf" => match args.first().map(|a| &a.kind) {
                    Some(ExprKind::Int(n)) if n == "2" => ru.squared(),
                    Some(ExprKind::Float(n)) if n == "2.0" => ru.squared(),
                    _ => Unit::Unknown,
                },
                "min" | "max" | "clamp" => {
                    args.iter().fold(ru, |acc, a| acc.join(unit_of(a, env, ctx)))
                }
                "abs" | "floor" | "ceil" | "round" | "clone" | "to_owned" | "copied" => ru,
                "unwrap" | "expect" | "unwrap_or" | "unwrap_or_default" => ru,
                "len" | "count" => Unit::Count,
                "hypot" => Unit::Distance,
                _ => ctx.callee_unit(name, true),
            }
        }
        ExprKind::Call(callee, _) => match &callee.kind {
            ExprKind::Path(segs) => match segs.last() {
                Some(last) => ctx.callee_unit(last, false),
                None => Unit::Unknown,
            },
            _ => Unit::Unknown,
        },
        ExprKind::If(_, then, els) => {
            let mut inner = env.clone();
            let t = tail_unit(then, &mut inner, ctx);
            match els {
                Some(e) => t.join(unit_of(e, env, ctx)),
                None => Unit::Unknown,
            }
        }
        ExprKind::Block(b) => {
            let mut inner = env.clone();
            tail_unit(b, &mut inner, ctx)
        }
        ExprKind::Match(_, arms) => {
            let mut joined: Option<Unit> = None;
            for arm in arms {
                let u = unit_of(&arm.body, env, ctx);
                joined = Some(match joined {
                    None => u,
                    Some(j) => j.join(u),
                });
            }
            joined.unwrap_or(Unit::Unknown)
        }
        _ => Unit::Unknown,
    }
}

/// Tail unit of a block after folding its simple lets into a scratch
/// env — for block/if expressions in value position.
fn tail_unit(block: &Block, env: &mut BTreeMap<String, Unit>, ctx: &UnitCtx) -> Unit {
    for stmt in &block.stmts {
        if let Stmt::Let { name: Some(n), init: Some(init), .. } = stmt {
            let u = unit_of(init, env, ctx);
            let u = if u == Unit::Unknown { ident_unit(n) } else { u };
            env.insert(n.clone(), u);
        }
    }
    block.tail.as_ref().map(|t| unit_of(t, env, ctx)).unwrap_or(Unit::Unknown)
}

/// The dataflow `squared-distance-mismatch`: flags comparisons and
/// add/sub (including `+=`/`-=`) whose operands live at different
/// metric powers. The same walk also carries `power-domain-mismatch`:
/// linear milliwatts (`_mw`) meeting log-domain dBm/dB (`_dbm`/`_db`)
/// in a comparison or addition — the classic link-budget bug the
/// `rim-phys` naming convention exists to prevent. Pragmas are accepted
/// at the site or on the `fn` line, the same contract as the legacy
/// token scanner it upgrades.
pub fn check_unit_mismatch(
    ws: &Workspace,
    flow: &Flow,
    pragmas: &BTreeMap<String, Pragmas>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, f) in ws.fns.iter().enumerate() {
        let Some(body) = &flow.bodies[i] else { continue };
        let ctx = UnitCtx { ws, ret_units: &flow.ret_units };
        let mut env: BTreeMap<String, Unit> = flow.param_units[i]
            .iter()
            .filter(|(_, u)| *u != Unit::Unknown)
            .cloned()
            .collect();
        let file = &ws.files[f.file_idx];
        let mut findings: Vec<(&'static str, u32, String, Unit, Unit)> = Vec::new();
        walk_units_block(&body.block, &mut env, &ctx, &mut |e, env| {
            let (op, l, r) = match &e.kind {
                ExprKind::Binary(op, l, r)
                    if matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=" | "+" | "-") =>
                {
                    (op, l, r)
                }
                ExprKind::Assign(op, l, r) if matches!(op.as_str(), "+=" | "-=") => (op, l, r),
                _ => return,
            };
            let (ul, ur) = (unit_of(l, env, &ctx), unit_of(r, env, &ctx));
            if let (Some(pl), Some(pr)) = (ul.power(), ur.power()) {
                if pl != pr {
                    findings.push(("squared-distance-mismatch", e.line, op.clone(), ul, ur));
                }
            }
            if matches!(
                (ul, ur),
                (Unit::PowerMw, Unit::PowerDbm) | (Unit::PowerDbm, Unit::PowerMw)
            ) {
                findings.push(("power-domain-mismatch", e.line, op.clone(), ul, ur));
            }
        });
        for (rule, line, op, ul, ur) in findings {
            let allowed = pragmas
                .get(file.rel)
                .is_some_and(|p| p.allows(rule, line) || p.allows(rule, f.line));
            if allowed {
                continue;
            }
            let message = if rule == "power-domain-mismatch" {
                format!(
                    "`{}` mixes power domains in `{op}`: left is {ul:?}, right is {ur:?}; \
                     convert through dbm_to_mw/db_to_linear before combining — adding dBm to \
                     mW is the classic link-budget bug",
                    f.path(),
                )
            } else {
                format!(
                    "`{}` mixes metric powers in `{op}`: left is {ul:?} (power {}), right is \
                     {ur:?} (power {}); compare both at the same power — the kernel convention \
                     is squared-space (Def. 3.1's disk predicate without the sqrt)",
                    f.path(),
                    ul.power().unwrap_or(0),
                    ur.power().unwrap_or(0),
                )
            };
            out.push(Diagnostic { rule, file: file.rel.to_string(), line, message });
        }
    }
}

// ---------------------------------------------------------------------
// Determinism analysis
// ---------------------------------------------------------------------

/// Functions pinned by the differential and thread-count-invariance
/// test layers: their call closure must be bitwise deterministic for a
/// fixed input, independent of thread count and wall clock.
pub const DETERMINISM_ROOTS: &[&str] = &[
    "interference_vector_with",
    "filter_edges",
    "lmst_with",
    "xtc_with",
    "yao_graph_with",
    "gabriel_graph_with",
    "physical_interference_vector_with",
    "sinr_interference_with",
    "interference_counts_sharded",
    "par_scatter_u32",
    "remove_node",
    "apply_edit",
    "encode_snapshot",
];

/// Atomic read-modify-write methods (order-sensitive cross-thread
/// state).
const ATOMIC_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// RNG draw methods of `rim_rng::SmallRng`.
const RNG_DRAWS: &[&str] =
    &["gen_range", "gen_bool", "next_u32", "next_u64", "fill_bytes", "sample"];

/// Nondeterminism sites inside one body: `(line, description)`.
pub fn nondet_sites(body: &Body) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    expr::walk_block(&body.block, &mut |e| match &e.kind {
        ExprKind::MethodCall(_, name, _) => {
            if ATOMIC_RMW.contains(&name.as_str()) {
                out.push((e.line, format!("an atomic read-modify-write (`{name}`)")));
            } else if RNG_DRAWS.contains(&name.as_str()) {
                out.push((e.line, format!("an RNG draw (`{name}`)")));
            }
        }
        ExprKind::Call(callee, _) => {
            if let ExprKind::Path(segs) = &callee.kind {
                match segs.as_slice() {
                    [.., ty, m] if m == "now" && (ty == "Instant" || ty == "SystemTime") => {
                        out.push((e.line, format!("a wall-clock read (`{ty}::now`)")));
                    }
                    [.., m] if m == "install_recorder" || m == "install_sink" => {
                        out.push((e.line, format!("observability-sink installation (`{m}`)")));
                    }
                    [.., m] if m == "from_entropy" || m == "thread_rng" => {
                        out.push((e.line, format!("entropy-based RNG seeding (`{m}`)")));
                    }
                    _ => {}
                }
            }
        }
        _ => {}
    });
    out.sort();
    out.dedup();
    out
}

/// `engine-determinism`: no function reachable from
/// [`DETERMINISM_ROOTS`] may contain a nondeterminism site without a
/// `// rim-lint: allow(engine-determinism)` pragma at the site or on
/// the `fn` line. The justified exceptions are exactly the ones the
/// thread-invariance tests rely on being benign: the rim-par work
/// cursor (order-free work claiming) and the rim-obs counters/span
/// clocks (flow into observability output, never into results).
pub fn audit_engine_determinism(
    ws: &Workspace,
    flow: &Flow,
    pragmas: &BTreeMap<String, Pragmas>,
    out: &mut Vec<Diagnostic>,
) {
    let masks: Vec<(&str, Vec<bool>)> = DETERMINISM_ROOTS
        .iter()
        .map(|root| {
            let seeds: Vec<usize> = ws
                .defs_named(root)
                .iter()
                .copied()
                .filter(|&i| !ws.fns[i].in_test)
                .collect();
            (*root, ws.reachable_from(seeds))
        })
        .collect();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some((root, _)) = masks.iter().find(|(_, m)| m[i]) else { continue };
        let Some(body) = &flow.bodies[i] else { continue };
        let file = &ws.files[f.file_idx];
        for (line, what) in nondet_sites(body) {
            let allowed = pragmas.get(file.rel).is_some_and(|p| {
                p.allows("engine-determinism", line) || p.allows("engine-determinism", f.line)
            });
            if allowed {
                continue;
            }
            out.push(Diagnostic {
                rule: "engine-determinism",
                file: file.rel.to_string(),
                line,
                message: format!(
                    "`{}` is reachable from determinism-pinned root `{root}` but performs \
                     {what}; thread-count invariance and the differential oracles require \
                     bitwise-deterministic results — remove it or justify with \
                     `// rim-lint: allow(engine-determinism)` at the site or on the `fn` line",
                    f.path(),
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Const-bounds propagation / indexing discharge
// ---------------------------------------------------------------------

/// A strict upper bound on an integer binding.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Bound {
    /// `var < key.len()`.
    Len(String),
    /// `var < n` for a symbolic ident `n`.
    Sym(String),
    /// `var < k`.
    Const(u64),
}

/// What is known about a container's length.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LenFact {
    /// Length is at least `k` (exact for `vec![x; k]`, at-least for
    /// `windows(k)` elements and `chunks` tails).
    AtLeast(u64),
    /// Length equals the value of ident `n` (e.g. `vec![x; n]`).
    Sym(String),
    /// Length equals `other`'s length (clones, reborrows).
    LenOf(String),
}

/// The bounds environment at one program point.
#[derive(Debug, Clone, Default)]
struct BoundsEnv {
    /// Strict upper bounds per integer binding.
    lt: BTreeMap<String, Bound>,
    /// Length facts per container key.
    len: BTreeMap<String, LenFact>,
    /// `n` holds the (unchanged-since) value of `key.len()`.
    is_len_of: BTreeMap<String, String>,
}

impl BoundsEnv {
    /// Removes every fact about `name` — as a binding, a container,
    /// or a bound referenced by other facts. Because references are
    /// erased on kill, the `LenOf` relation stays acyclic.
    fn kill(&mut self, name: &str) {
        self.lt.remove(name);
        self.len.remove(name);
        self.is_len_of.remove(name);
        self.lt.retain(|_, b| !matches!(b, Bound::Len(v) | Bound::Sym(v) if v == name));
        self.len
            .retain(|_, fact| !matches!(fact, LenFact::Sym(v) | LenFact::LenOf(v) if v == name));
        self.is_len_of.retain(|_, v| v != name);
    }

    /// Does `len(of_key) > k` hold?
    fn len_exceeds(&self, of_key: &str, k: u64) -> bool {
        match self.len.get(of_key) {
            Some(LenFact::AtLeast(c)) => *c > k,
            Some(LenFact::LenOf(other)) => self.len_exceeds(other, k),
            _ => false,
        }
    }

    /// Do `a` and `b` have provably equal lengths?
    fn len_equal(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        // Resolve one level of aliasing: `LenOf` and `Sym`-backed-by-
        // `is_len_of` both normalise to "length of container X".
        let resolve = |k: &str| -> Option<String> {
            match self.len.get(k) {
                Some(LenFact::LenOf(other)) => Some(format!("len:{other}")),
                Some(LenFact::Sym(n)) => Some(match self.is_len_of.get(n) {
                    Some(v) => format!("len:{v}"),
                    None => format!("sym:{n}"),
                }),
                _ => None,
            }
        };
        let (ra, rb) = (resolve(a), resolve(b));
        if let (Some(x), Some(y)) = (&ra, &rb) {
            if x == y {
                return true;
            }
        }
        ra.as_deref() == Some(&format!("len:{b}")[..])
            || rb.as_deref() == Some(&format!("len:{a}")[..])
    }

    /// Is `idx < key.len()` provable?
    fn proves(&self, key: &str, idx: &Expr) -> bool {
        match &idx.kind {
            ExprKind::Int(text) => {
                let Ok(k) = text.replace('_', "").parse::<u64>() else { return false };
                self.len_exceeds(key, k)
            }
            ExprKind::Path(segs) => {
                let [name] = segs.as_slice() else { return false };
                match self.lt.get(name) {
                    Some(Bound::Len(b)) => self.len_equal(key, b),
                    Some(Bound::Sym(n)) => {
                        // idx < n: provable when key.len() == n, or n
                        // is a live snapshot of some v.len() with
                        // len(key) == len(v).
                        matches!(self.len.get(key), Some(LenFact::Sym(m)) if m == n)
                            || matches!(self.is_len_of.get(n), Some(v) if self.len_equal(key, v))
                    }
                    Some(Bound::Const(k)) => *k > 0 && self.len_exceeds(key, k - 1),
                    None => false,
                }
            }
            ExprKind::Cast(inner) => self.proves(key, inner),
            _ => false,
        }
    }
}

/// Stable key for an indexable place: `v`, `self.field`, references
/// and derefs collapsed. `None` means "not trackable".
fn place_key(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [single] => Some(single.clone()),
            _ => None,
        },
        ExprKind::Field(recv, name) => Some(format!("{}.{name}", place_key(recv)?)),
        ExprKind::Unary(op, inner) if matches!(op.as_str(), "&" | "&mut" | "*") => {
            place_key(inner)
        }
        _ => None,
    }
}

/// Methods that may change a container's length.
const LEN_MUTATORS: &[&str] = &[
    "push", "pop", "insert", "remove", "clear", "truncate", "resize", "extend", "append",
    "drain", "retain", "swap_remove", "dedup", "split_off",
];

/// Collects every place mutated inside `e`: assignment targets,
/// receivers of length-changing methods, and `&mut` arguments.
fn mutated_places(e: &Expr, out: &mut BTreeSet<String>) {
    expr::walk_expr(e, &mut |e| match &e.kind {
        ExprKind::Assign(_, lhs, _) => {
            // Assignment through an index (`v[i] = x`) cannot change a
            // length; only whole-place assignment kills facts.
            if let Some(k) = place_key(lhs) {
                out.insert(k);
            }
        }
        ExprKind::MethodCall(recv, name, args) => {
            if LEN_MUTATORS.contains(&name.as_str()) {
                if let Some(k) = place_key(recv) {
                    out.insert(k);
                }
            }
            for a in args {
                if let ExprKind::Unary(op, inner) = &a.kind {
                    if op == "&mut" {
                        if let Some(k) = place_key(inner) {
                            out.insert(k);
                        }
                    }
                }
            }
        }
        ExprKind::Call(_, args) => {
            for a in args {
                if let ExprKind::Unary(op, inner) = &a.kind {
                    if op == "&mut" {
                        if let Some(k) = place_key(inner) {
                            out.insert(k);
                        }
                    }
                }
            }
        }
        _ => {}
    });
}

/// [`mutated_places`] over every expression in a block.
fn mutated_in_block(b: &Block, out: &mut BTreeSet<String>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init, els, .. } => {
                if let Some(e) = init {
                    mutated_places(e, out);
                }
                if let Some(inner) = els {
                    mutated_in_block(inner, out);
                }
            }
            Stmt::Expr(e, _) => mutated_places(e, out),
            Stmt::Item(Some(inner)) => mutated_in_block(inner, out),
            Stmt::Item(None) => {}
        }
    }
    if let Some(t) = &b.tail {
        mutated_places(t, out);
    }
}

/// One slice-indexing obligation.
#[derive(Debug, Clone)]
pub struct IndexObligation {
    /// 1-based line of the indexing expression.
    pub line: u32,
    /// True when the bounds pass proved the index in range.
    pub proven: bool,
}

/// Result of the bounds pass over one body.
#[derive(Debug, Clone, Default)]
pub struct IndexAudit {
    /// Every indexing obligation, sorted by line.
    pub obligations: Vec<IndexObligation>,
}

impl IndexAudit {
    /// First obligation the pass could not discharge.
    pub fn first_unproven(&self) -> Option<u32> {
        self.obligations.iter().find(|o| !o.proven).map(|o| o.line)
    }

    /// `(discharged, total)` obligation counts.
    pub fn counts(&self) -> (usize, usize) {
        let proven = self.obligations.iter().filter(|o| o.proven).count();
        (proven, self.obligations.len())
    }
}

/// Runs const-bounds propagation over a body and reports every
/// indexing obligation with its proof status.
pub fn audit_indexing(body: &Body) -> IndexAudit {
    let mut audit = IndexAudit::default();
    let mut env = BoundsEnv::default();
    bounds_block(&body.block, &mut env, &mut audit);
    audit.obligations.sort_by_key(|o| o.line);
    audit
}

/// Strict upper bound implied by an expression used as an exclusive
/// range end or the RHS of `<`.
fn strict_bound(e: &Expr, env: &BoundsEnv) -> Option<Bound> {
    match &e.kind {
        ExprKind::MethodCall(recv, name, args) if name == "len" && args.is_empty() => {
            place_key(recv).map(Bound::Len)
        }
        ExprKind::Path(segs) => {
            let [name] = segs.as_slice() else { return None };
            Some(match env.is_len_of.get(name) {
                Some(v) => Bound::Len(v.clone()),
                None => Bound::Sym(name.clone()),
            })
        }
        ExprKind::Int(text) => text.replace('_', "").parse().ok().map(Bound::Const),
        // `i < x - k` implies `i < x`.
        ExprKind::Binary(op, l, _) if op == "-" => strict_bound(l, env),
        ExprKind::MethodCall(recv, name, args) if name == "min" => args
            .iter()
            .find_map(|a| strict_bound(a, env))
            .or_else(|| strict_bound(recv, env)),
        ExprKind::Cast(inner) => strict_bound(inner, env),
        _ => None,
    }
}

/// Strict upper bound implied by an *inclusive* comparison (`<= e`).
fn inclusive_bound(e: &Expr, env: &BoundsEnv) -> Option<Bound> {
    match &e.kind {
        // `i <= x - k` for k >= 1 implies `i < x`.
        ExprKind::Binary(op, l, r) if op == "-" => match &r.kind {
            ExprKind::Int(text)
                if text.replace('_', "").parse::<u64>().map_or(false, |k| k >= 1) =>
            {
                strict_bound(l, env)
            }
            _ => None,
        },
        ExprKind::Int(text) => {
            text.replace('_', "").parse::<u64>().ok().map(|k| Bound::Const(k + 1))
        }
        ExprKind::MethodCall(recv, name, args) if name == "min" || name == "clamp" => {
            // `min(a, b) <= a` and `min(a, b) <= b`; for `clamp(lo,
            // hi)` only the upper limit bounds the result.
            let cands: Vec<&Expr> = match name.as_str() {
                "min" => args.iter().collect(),
                _ => args.iter().skip(1).collect(),
            };
            cands
                .into_iter()
                .find_map(|a| inclusive_bound(a, env))
                .or_else(|| if name == "min" { inclusive_bound(recv, env) } else { None })
        }
        ExprKind::Cast(inner) => inclusive_bound(inner, env),
        _ => None,
    }
}

/// Facts a true condition contributes: `(binding, strict bound)`.
fn cond_facts(cond: &Expr, env: &BoundsEnv, out: &mut Vec<(String, Bound)>) {
    if let ExprKind::Binary(op, l, r) = &cond.kind {
        match op.as_str() {
            "&&" => {
                cond_facts(l, env, out);
                cond_facts(r, env, out);
            }
            "<" => add_fact(l, r, false, env, out),
            "<=" => add_fact(l, r, true, env, out),
            ">" => add_fact(r, l, false, env, out),
            ">=" => add_fact(r, l, true, env, out),
            _ => {}
        }
    }
}

/// Facts the *negation* of a condition contributes (diverging-guard
/// inversion: `if i >= v.len() { return; }` means `i < v.len()`
/// afterwards).
fn negated_cond_facts(cond: &Expr, env: &BoundsEnv, out: &mut Vec<(String, Bound)>) {
    if let ExprKind::Binary(op, l, r) = &cond.kind {
        match op.as_str() {
            // ¬(a || b) = ¬a && ¬b: both negations hold.
            "||" => {
                negated_cond_facts(l, env, out);
                negated_cond_facts(r, env, out);
            }
            ">=" => add_fact(l, r, false, env, out),
            ">" => add_fact(l, r, true, env, out),
            "<=" => add_fact(r, l, false, env, out),
            "<" => add_fact(r, l, true, env, out),
            _ => {}
        }
    }
}

/// Records `small < big` (strict) or `small <= big` (inclusive) when
/// `small` is a single ident and `big` resolves to a bound.
fn add_fact(
    small: &Expr,
    big: &Expr,
    inclusive: bool,
    env: &BoundsEnv,
    out: &mut Vec<(String, Bound)>,
) {
    let ExprKind::Path(segs) = &small.kind else { return };
    let [name] = segs.as_slice() else { return };
    let bound = if inclusive { inclusive_bound(big, env) } else { strict_bound(big, env) };
    if let Some(b) = bound {
        out.push((name.clone(), b));
    }
}

/// Does this block always diverge (return/break/continue/panic)?
fn block_diverges(b: &Block) -> bool {
    let last = b.tail.as_deref().or_else(|| {
        b.stmts.iter().rev().find_map(|s| match s {
            Stmt::Expr(e, _) => Some(e),
            _ => None,
        })
    });
    match last.map(|e| &e.kind) {
        Some(ExprKind::Return(_)) | Some(ExprKind::Break(_)) | Some(ExprKind::Continue) => true,
        Some(ExprKind::MacroCall { name, .. }) => {
            matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
        }
        _ => false,
    }
}

/// Length facts from a `let` initialiser. `binding` is the name being
/// bound — self-referential aliases (`let v = v;`) yield no fact so
/// the `LenOf` relation cannot loop.
fn init_len_fact(init: &Expr, env: &BoundsEnv, binding: &str) -> Option<LenFact> {
    let fact = match &init.kind {
        // `vec![x; n]` (also bare `[x; n]`).
        ExprKind::MacroCall { name, args, .. } if name == "vec" => match args.as_slice() {
            [Expr { kind: ExprKind::Repeat(_, count), .. }] => repeat_len_fact(count),
            args => Some(LenFact::AtLeast(args.len() as u64)),
        },
        ExprKind::Repeat(_, count) => repeat_len_fact(count),
        // Aliases that preserve length.
        ExprKind::MethodCall(recv, name, _)
            if matches!(name.as_str(), "to_vec" | "clone" | "to_owned") =>
        {
            place_key(recv).map(LenFact::LenOf)
        }
        ExprKind::Path(segs) => {
            let [from] = segs.as_slice() else { return None };
            Some(match env.len.get(from) {
                Some(f) => f.clone(),
                None => LenFact::LenOf(from.clone()),
            })
        }
        ExprKind::Unary(op, inner) if matches!(op.as_str(), "&" | "&mut" | "*") => {
            init_len_fact(inner, env, binding)
        }
        _ => None,
    };
    match fact {
        Some(LenFact::LenOf(v)) if v == binding => None,
        Some(LenFact::Sym(n)) if n == binding => None,
        f => f,
    }
}

/// Length fact from a `[_; count]` repeat count.
fn repeat_len_fact(count: &Expr) -> Option<LenFact> {
    match &count.kind {
        ExprKind::Int(text) => text.replace('_', "").parse().ok().map(LenFact::AtLeast),
        ExprKind::Path(segs) => match segs.as_slice() {
            [n] => Some(LenFact::Sym(n.clone())),
            _ => None,
        },
        ExprKind::MethodCall(recv, name, args) if name == "len" && args.is_empty() => {
            place_key(recv).map(LenFact::LenOf)
        }
        ExprKind::Cast(inner) => repeat_len_fact(inner),
        _ => None,
    }
}

/// Walks a block in order, updating the bounds env and collecting
/// obligations.
fn bounds_block(block: &Block, env: &mut BoundsEnv, audit: &mut IndexAudit) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { name, pat_idents, init, els, .. } => {
                if let Some(init) = init {
                    bounds_expr(init, env, audit);
                }
                if let Some(els) = els {
                    let mut inner = env.clone();
                    bounds_block(els, &mut inner, audit);
                }
                match (name, init.as_ref()) {
                    (Some(n), Some(init)) => {
                        let fact = init_len_fact(init, env, n);
                        let snapshot = match &init.kind {
                            ExprKind::MethodCall(recv, m, args)
                                if m == "len" && args.is_empty() =>
                            {
                                place_key(recv)
                            }
                            _ => None,
                        };
                        let bound = inclusive_bound(init, env);
                        env.kill(n);
                        if let Some(fact) = fact {
                            env.len.insert(n.clone(), fact);
                        }
                        if let Some(of) = snapshot {
                            if of != *n {
                                env.is_len_of.insert(n.clone(), of);
                            }
                        }
                        if let Some(b) = bound {
                            env.lt.insert(n.clone(), b);
                        }
                    }
                    _ => {
                        for id in pat_idents {
                            env.kill(id);
                        }
                    }
                }
            }
            Stmt::Expr(e, _) => {
                // Guard patterns that add facts for the rest of the
                // block, checked before the generic walk.
                match &e.kind {
                    // `assert!(i < v.len())` / `debug_assert!(…)`.
                    ExprKind::MacroCall { name, args, .. }
                        if matches!(name.as_str(), "assert" | "debug_assert") =>
                    {
                        for a in args {
                            bounds_expr(a, env, audit);
                        }
                        let mut facts = Vec::new();
                        if let Some(cond) = args.first() {
                            cond_facts(cond, env, &mut facts);
                        }
                        for (n, b) in facts {
                            env.lt.insert(n, b);
                        }
                        continue;
                    }
                    ExprKind::If(cond, then, els) => {
                        bounds_expr_cond_if(cond, then, els.as_deref(), env, audit);
                        // Diverging guard: `if i >= len { return; }`.
                        if els.is_none() && block_diverges(then) {
                            let mut facts = Vec::new();
                            negated_cond_facts(cond, env, &mut facts);
                            for (n, b) in facts {
                                env.lt.insert(n, b);
                            }
                        }
                        // `if v.len() <= c { v.resize(c + 1, …) }`
                        // establishes `c < v.len()` afterwards; the
                        // resize only ever grows here, so existing
                        // strict bounds on `v` stay valid.
                        if let Some((v, c)) = resize_guard(cond, then) {
                            env.len.remove(&v);
                            env.lt.insert(c, Bound::Len(v));
                        } else {
                            let mut mutated = BTreeSet::new();
                            mutated_in_block(then, &mut mutated);
                            if let Some(els) = els.as_deref() {
                                mutated_places(els, &mut mutated);
                            }
                            for m in mutated {
                                env.kill(&m);
                            }
                        }
                        continue;
                    }
                    _ => {}
                }
                bounds_expr(e, env, audit);
                let mut mutated = BTreeSet::new();
                mutated_places(e, &mut mutated);
                for m in mutated {
                    env.kill(&m);
                }
            }
            Stmt::Item(Some(b)) => {
                let mut inner = BoundsEnv::default();
                bounds_block(b, &mut inner, audit);
            }
            Stmt::Item(None) => {}
        }
    }
    if let Some(tail) = &block.tail {
        bounds_expr(tail, env, audit);
    }
}

/// Recognises `if v.len() <= c { … v.resize(c + 1, _) … }` (also
/// `v.len() < c + 1`); returns `(v, c)` on match.
fn resize_guard(cond: &Expr, then: &Block) -> Option<(String, String)> {
    let (v, c) = match &cond.kind {
        ExprKind::Binary(op, l, r) if op == "<=" || op == "<" => {
            let v = match &l.kind {
                ExprKind::MethodCall(recv, m, args) if m == "len" && args.is_empty() => {
                    place_key(recv)?
                }
                _ => return None,
            };
            let c = match &r.kind {
                ExprKind::Path(segs) if op == "<=" => match segs.as_slice() {
                    [c] => c.clone(),
                    _ => return None,
                },
                ExprKind::Binary(op2, a, _) if op == "<" && op2 == "+" => match &a.kind {
                    ExprKind::Path(segs) => match segs.as_slice() {
                        [c] => c.clone(),
                        _ => return None,
                    },
                    _ => return None,
                },
                _ => return None,
            };
            (v, c)
        }
        _ => return None,
    };
    // The then-block must grow `v` to at least `c + 1`.
    let mut grows = false;
    expr::walk_block(then, &mut |e| {
        if let ExprKind::MethodCall(recv, m, args) = &e.kind {
            if m == "resize" && place_key(recv).as_deref() == Some(v.as_str()) {
                if let Some(ExprKind::Binary(op, a, b)) = args.first().map(|a| &a.kind) {
                    let a_is_c =
                        matches!(&a.kind, ExprKind::Path(s) if s.len() == 1 && s[0] == c);
                    let b_is_one = matches!(&b.kind, ExprKind::Int(t) if t == "1");
                    if op == "+" && a_is_c && b_is_one {
                        grows = true;
                    }
                }
            }
        }
    });
    grows.then_some((v, c))
}

/// `if` handling shared by statement and expression positions: the
/// then-branch sees the condition's facts, the else-branch its
/// negation.
fn bounds_expr_cond_if(
    cond: &Expr,
    then: &Block,
    els: Option<&Expr>,
    env: &mut BoundsEnv,
    audit: &mut IndexAudit,
) {
    bounds_expr(cond, env, audit);
    let mut then_env = env.clone();
    let mut facts = Vec::new();
    cond_facts(cond, env, &mut facts);
    for (n, b) in facts {
        then_env.lt.insert(n, b);
    }
    bounds_block(then, &mut then_env, audit);
    if let Some(els) = els {
        let mut else_env = env.clone();
        let mut facts = Vec::new();
        negated_cond_facts(cond, env, &mut facts);
        for (n, b) in facts {
            else_env.lt.insert(n, b);
        }
        bounds_expr(els, &mut else_env, audit);
    }
}

/// Expression-level walk: records indexing obligations and descends
/// with branch/loop-aware environments.
fn bounds_expr(e: &Expr, env: &mut BoundsEnv, audit: &mut IndexAudit) {
    match &e.kind {
        ExprKind::Index(base, idx) => {
            bounds_expr(base, env, audit);
            bounds_expr(idx, env, audit);
            // Range "indexing" (slicing) panics too but is rarely
            // provable from strict-< facts; it stays an obligation.
            let proven = match place_key(base) {
                Some(key) => env.proves(&key, idx),
                None => false,
            };
            audit.obligations.push(IndexObligation { line: e.line, proven });
        }
        ExprKind::If(cond, then, els) => {
            bounds_expr_cond_if(cond, then, els.as_deref(), env, audit);
        }
        ExprKind::IfLet(_, scrut, then, els) => {
            bounds_expr(scrut, env, audit);
            let mut inner = env.clone();
            bounds_block(then, &mut inner, audit);
            if let Some(els) = els {
                bounds_expr(els, env, audit);
            }
        }
        ExprKind::While(cond, body) => {
            bounds_expr(cond, env, audit);
            let mut inner = env.clone();
            let mut mutated = BTreeSet::new();
            mutated_in_block(body, &mut mutated);
            for m in &mutated {
                inner.kill(m);
            }
            let mut facts = Vec::new();
            cond_facts(cond, &inner, &mut facts);
            for (n, b) in facts {
                if !mutated.contains(&n) {
                    inner.lt.insert(n, b);
                }
            }
            bounds_block(body, &mut inner, audit);
        }
        ExprKind::WhileLet(pat, scrut, body) => {
            bounds_expr(scrut, env, audit);
            let mut inner = env.clone();
            let mut mutated = BTreeSet::new();
            mutated_in_block(body, &mut mutated);
            for m in &mutated {
                inner.kill(m);
            }
            for id in pat {
                inner.kill(id);
            }
            bounds_block(body, &mut inner, audit);
        }
        ExprKind::For(pat, iter, body) => {
            bounds_expr(iter, env, audit);
            let mut inner = env.clone();
            let mut mutated = BTreeSet::new();
            mutated_in_block(body, &mut mutated);
            for m in &mutated {
                inner.kill(m);
            }
            for id in pat {
                inner.kill(id);
            }
            // Loop-header facts for the freshly bound pattern.
            match (&iter.kind, pat.as_slice()) {
                // `for i in lo..hi` / `lo..=hi`.
                (ExprKind::Range(_, Some(hi), inclusive), [i]) => {
                    let b = if *inclusive {
                        inclusive_bound(hi, &inner)
                    } else {
                        strict_bound(hi, &inner)
                    };
                    if let Some(b) = b {
                        let target_mutated = match &b {
                            Bound::Len(v) => mutated.contains(v),
                            Bound::Sym(n) => mutated.contains(n),
                            Bound::Const(_) => false,
                        };
                        if !target_mutated {
                            inner.lt.insert(i.clone(), b);
                        }
                    }
                }
                // `for (i, x) in v.iter().enumerate()`.
                (ExprKind::MethodCall(recv, name, _), [i, ..]) if name == "enumerate" => {
                    if let Some(v) = enumerated_place(recv) {
                        if !mutated.contains(&v) {
                            inner.lt.insert(i.clone(), Bound::Len(v));
                        }
                    }
                }
                // `for w in v.windows(k)` / `chunks_exact(k)`: each
                // element has length exactly `k`; `chunks(k)` tails
                // still have at least 1.
                (ExprKind::MethodCall(_, name, args), [w])
                    if matches!(name.as_str(), "windows" | "chunks_exact" | "chunks") =>
                {
                    let k = match args.first().map(|a| &a.kind) {
                        Some(ExprKind::Int(text)) => text.replace('_', "").parse::<u64>().ok(),
                        _ => None,
                    };
                    if let Some(k) = k {
                        let at_least = if name == "chunks" { 1 } else { k };
                        inner.len.insert(w.clone(), LenFact::AtLeast(at_least));
                    }
                }
                _ => {}
            }
            bounds_block(body, &mut inner, audit);
        }
        ExprKind::Match(scrut, arms) => {
            bounds_expr(scrut, env, audit);
            for Arm { pat_idents, guard, body, .. } in arms {
                let mut inner = env.clone();
                for id in pat_idents {
                    inner.kill(id);
                }
                if let Some(g) = guard {
                    bounds_expr(g, &mut inner, audit);
                    let mut facts = Vec::new();
                    cond_facts(g, &inner, &mut facts);
                    for (n, b) in facts {
                        inner.lt.insert(n, b);
                    }
                }
                bounds_expr(body, &mut inner, audit);
            }
        }
        ExprKind::Loop(body) => {
            let mut inner = env.clone();
            let mut mutated = BTreeSet::new();
            mutated_in_block(body, &mut mutated);
            for m in &mutated {
                inner.kill(m);
            }
            bounds_block(body, &mut inner, audit);
        }
        ExprKind::Block(body) => {
            let mut inner = env.clone();
            bounds_block(body, &mut inner, audit);
        }
        ExprKind::Closure(params, body) => {
            let mut inner = env.clone();
            for p in params {
                inner.kill(p);
            }
            // The closure may run after arbitrary mutations; drop
            // facts it invalidates itself, keep creation-site facts
            // otherwise (a documented soundness caveat).
            let mut mutated = BTreeSet::new();
            mutated_places(body, &mut mutated);
            for m in &mutated {
                inner.kill(m);
            }
            match &body.kind {
                ExprKind::Block(b) => bounds_block(b, &mut inner, audit),
                _ => bounds_expr(body, &mut inner, audit),
            }
        }
        ExprKind::MacroCall { args, opaque, raw, .. } => {
            if *opaque {
                // Conservative token-level fallback: any `[` after an
                // ident/`)`/`]` inside an opaque macro is an unproven
                // indexing obligation.
                for (i, (text, line)) in raw.iter().enumerate() {
                    if text == "[" && i > 0 {
                        let prev = &raw[i - 1].0;
                        let indexes = prev == ")"
                            || prev == "]"
                            || prev
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_alphanumeric() || c == '_');
                        if indexes {
                            audit
                                .obligations
                                .push(IndexObligation { line: *line, proven: false });
                        }
                    }
                }
            } else {
                for a in args {
                    bounds_expr(a, env, audit);
                }
            }
        }
        ExprKind::Unary(_, a) | ExprKind::Cast(a) | ExprKind::Try(a) | ExprKind::Field(a, _) => {
            bounds_expr(a, env, audit)
        }
        ExprKind::Binary(_, a, b) | ExprKind::Assign(_, a, b) | ExprKind::Repeat(a, b) => {
            bounds_expr(a, env, audit);
            bounds_expr(b, env, audit);
        }
        ExprKind::Call(callee, args) => {
            bounds_expr(callee, env, audit);
            for a in args {
                bounds_expr(a, env, audit);
            }
        }
        ExprKind::Range(a, b, _) => {
            if let Some(a) = a {
                bounds_expr(a, env, audit);
            }
            if let Some(b) = b {
                bounds_expr(b, env, audit);
            }
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for item in items {
                bounds_expr(item, env, audit);
            }
        }
        ExprKind::StructLit(_, fields, base) => {
            for (_, v) in fields {
                bounds_expr(v, env, audit);
            }
            if let Some(b) = base {
                bounds_expr(b, env, audit);
            }
        }
        ExprKind::Return(a) | ExprKind::Break(a) => {
            if let Some(a) = a {
                bounds_expr(a, env, audit);
            }
        }
        _ => {}
    }
}

/// The container behind `….iter().enumerate()`-style chains.
fn enumerated_place(recv: &Expr) -> Option<String> {
    match &recv.kind {
        ExprKind::MethodCall(inner, name, _)
            if matches!(name.as_str(), "iter" | "iter_mut" | "into_iter" | "copied" | "cloned") =>
        {
            place_key(inner)
        }
        _ => place_key(recv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_src(src: &str) -> IndexAudit {
        let body = expr::parse_source_body(src);
        assert_eq!(body.errors, 0, "parse errors in {src:?}");
        audit_indexing(&body)
    }

    #[test]
    fn unit_lattice_join_table() {
        use super::Unit::*;
        let cases = [
            (Distance, Distance, Distance),
            (Distance, Radius, Distance),
            (DistanceSq, RadiusSq, DistanceSq),
            (Distance, DistanceSq, Unknown),
            (Distance, Count, Unknown),
            (Unknown, Distance, Unknown),
            (Count, Count, Count),
            (Seconds, Seconds, Seconds),
            (PowerMw, PowerMw, PowerMw),
            (PowerDbm, PowerDbm, PowerDbm),
            (PowerMw, PowerDbm, Unknown),
            (PowerMw, Distance, Unknown),
        ];
        for (a, b, want) in cases {
            assert_eq!(a.join(b), want, "join({a:?}, {b:?})");
            assert_eq!(b.join(a), want, "join symmetric ({b:?}, {a:?})");
        }
    }

    #[test]
    fn unit_power_square_unsquare() {
        use super::Unit::*;
        assert_eq!(Distance.power(), Some(1));
        assert_eq!(RadiusSq.power(), Some(2));
        assert_eq!(Count.power(), None);
        assert_eq!(Distance.squared(), DistanceSq);
        assert_eq!(Radius.squared(), RadiusSq);
        assert_eq!(DistanceSq.unsquared(), Distance);
        assert_eq!(RadiusSq.unsquared(), Radius);
        assert_eq!(Unknown.squared(), DistanceSq);
        assert_eq!(Distance.unsquared(), Unknown);
    }

    #[test]
    fn ident_classification_table() {
        use super::Unit::*;
        let cases = [
            ("dist", Distance),
            ("distance", Distance),
            ("min_dist", Distance),
            ("d", Distance),
            ("dist_sq", DistanceSq),
            ("distsq", DistanceSq),
            ("dist2", DistanceSq),
            ("d2", DistanceSq),
            ("norm2", DistanceSq),
            ("norm_sq", DistanceSq),
            ("r", Radius),
            ("radius", Radius),
            ("radii", Radius),
            ("r2", RadiusSq),
            ("rsq", RadiusSq),
            ("r_sq", RadiusSq),
            ("radius_sq", RadiusSq),
            ("len", Count),
            ("count", Count),
            ("idx", Index),
            ("node_index", Index),
            ("elapsed", Seconds),
            ("power_mw", PowerMw),
            ("noise_mw", PowerMw),
            ("mw", PowerMw),
            ("theta_dbm", PowerDbm),
            ("beta_db", PowerDbm),
            ("sigma_db", PowerDbm),
            ("rho", Radius),
            ("rho_u", Radius),
            ("cutoff", Radius),
            ("threshold", Unknown),
            ("power", Unknown),
            ("x", Unknown),
            ("weight", Unknown),
            ("result", Unknown),
        ];
        for (name, want) in cases {
            assert_eq!(ident_unit(name), want, "ident_unit({name:?})");
        }
    }

    #[test]
    fn bounds_discharges_len_derived_loops() {
        let audit = audit_src("for i in 0..v.len() { total = total + v[i]; }");
        assert_eq!(audit.counts(), (1, 1), "{audit:?}");
        let audit = audit_src("for i in 0..v.len() { total = total + w[i]; }");
        assert_eq!(audit.counts(), (0, 1), "different vec must stay unproven");
    }

    #[test]
    fn bounds_links_vec_macro_lengths() {
        let audit = audit_src(
            "let n = pts.len();\n\
             let mut acc = vec![0.0; n];\n\
             for (i, p) in pts.iter().enumerate() { acc[i] += p; }",
        );
        assert_eq!(audit.counts(), (1, 1), "{audit:?}");
    }

    #[test]
    fn bounds_uses_asserts_and_guards() {
        let audit = audit_src("assert!(i < v.len()); v[i] = 0.0;");
        assert_eq!(audit.counts(), (1, 1), "{audit:?}");
        let audit = audit_src("if i >= v.len() { return 0.0; }\nv[i]");
        assert_eq!(audit.counts(), (1, 1), "{audit:?}");
        let audit = audit_src("if i < v.len() { v[i] } else { v[i] }");
        assert_eq!(audit.counts(), (1, 2), "else branch must stay unproven: {audit:?}");
    }

    #[test]
    fn bounds_understands_windows_and_min() {
        let audit = audit_src("for w in v.windows(2) { acc += w[0] * w[1]; }");
        assert_eq!(audit.counts(), (2, 2), "{audit:?}");
        let audit = audit_src("for w in v.windows(2) { acc += w[2]; }");
        assert_eq!(audit.counts(), (0, 1), "{audit:?}");
        let audit = audit_src("let j = k.min(v.len() - 1); v[j]");
        assert_eq!(audit.counts(), (1, 1), "{audit:?}");
    }

    #[test]
    fn bounds_kills_facts_on_mutation() {
        let audit = audit_src("assert!(i < v.len()); v.push(0.0); v[i] = 1.0;");
        // push cannot shrink, but the pass stays conservative.
        assert_eq!(audit.counts(), (0, 1), "{audit:?}");
        let audit = audit_src("assert!(i < v.len()); i = j; v[i] = 1.0;");
        assert_eq!(audit.counts(), (0, 1), "{audit:?}");
        let audit =
            audit_src("let n = v.len(); v.truncate(m); for i in 0..n { v[i] = 1.0; }");
        assert_eq!(audit.counts(), (0, 1), "stale len snapshot: {audit:?}");
    }

    #[test]
    fn bounds_handles_resize_guard() {
        let audit =
            audit_src("if freq.len() <= c { freq.resize(c + 1, 0); }\nfreq[c] += 1;");
        assert_eq!(audit.counts(), (1, 1), "{audit:?}");
    }

    #[test]
    fn opaque_macro_indexing_stays_an_obligation() {
        let audit = audit_src("matches!(v[i], Some(x) if x > 0)");
        assert_eq!(audit.counts(), (0, 1), "{audit:?}");
    }

    #[test]
    fn nondet_sites_catalogue() {
        let body = expr::parse_source_body(
            "let x = cursor.fetch_add(1, Ordering::Relaxed);\n\
             let y = rng.gen_range(0..n);\n\
             let t = Instant::now();\n\
             let r = rim_obs::install_recorder();",
        );
        assert_eq!(body.errors, 0);
        let sites = nondet_sites(&body);
        assert_eq!(sites.len(), 4, "{sites:?}");
        assert!(sites[0].1.contains("fetch_add"), "{sites:?}");
        assert!(sites[1].1.contains("gen_range"), "{sites:?}");
        assert!(sites[2].1.contains("Instant::now"), "{sites:?}");
        assert!(sites[3].1.contains("install_recorder"), "{sites:?}");
    }
}
