//! Workspace audits: manifest ↔ source dependency cross-checks and
//! bench-target consistency.
//!
//! The workspace is hermetic by policy — every dependency is a path
//! dependency on a sibling crate, and the external allowlist below is
//! empty and intended to stay that way. A tiny line-oriented TOML
//! reader is enough for the manifest subset Cargo workspaces use here;
//! it is not a general TOML parser.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{Kind, Token};
use crate::model::Workspace;
use crate::rules;
use crate::Diagnostic;

/// External crates the workspace is permitted to depend on. Empty on
/// purpose: the build must keep working with no registry access at
/// all. Growing this list is a deliberate, reviewed decision.
pub const EXTERNAL_ALLOWLIST: &[&str] = &[];

/// One dependency declaration from a manifest.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Crate name as written (`rim-geom`).
    pub name: String,
    /// 1-based manifest line.
    pub line: u32,
    /// Raw right-hand side (for the path-dependency check).
    pub value: String,
}

/// One `[[bench]]` target declaration.
#[derive(Debug, Clone, Default)]
pub struct BenchTarget {
    /// `name = "…"` value.
    pub name: String,
    /// Whether `harness = false` was set.
    pub harness_false: bool,
    /// 1-based line of the `[[bench]]` header.
    pub line: u32,
}

/// The manifest subset the audits need.
#[derive(Debug, Default)]
pub struct Manifest {
    /// `[package] name`.
    pub package_name: String,
    /// `[dependencies]`.
    pub deps: Vec<Dep>,
    /// `[dev-dependencies]`.
    pub dev_deps: Vec<Dep>,
    /// `[workspace.dependencies]` (root manifest only).
    pub workspace_deps: Vec<Dep>,
    /// `[[bench]]` targets.
    pub benches: Vec<BenchTarget>,
}

/// Parses the manifest subset used by this workspace.
pub fn parse_manifest(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            if section == "bench" && line.starts_with("[[") {
                m.benches.push(BenchTarget {
                    line: line_no,
                    ..BenchTarget::default()
                });
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim().to_string();
        match section.as_str() {
            "package" if key == "name" => {
                m.package_name = value.trim_matches('"').to_string();
            }
            "dependencies" | "dev-dependencies" | "workspace.dependencies" => {
                // `rim-geom.workspace = true` or `rim-geom = { … }`.
                let name = key
                    .split(|c: char| c == '.' || c.is_whitespace())
                    .next()
                    .unwrap_or_default() // rim-lint: allow(no-unwrap-in-lib)
                    .trim_matches('"')
                    .to_string();
                if name.is_empty() {
                    continue;
                }
                let dep = Dep { name, line: line_no, value };
                match section.as_str() {
                    "dependencies" => m.deps.push(dep),
                    "dev-dependencies" => m.dev_deps.push(dep),
                    _ => m.workspace_deps.push(dep),
                }
            }
            "bench" => {
                if let Some(b) = m.benches.last_mut() {
                    if key == "name" {
                        b.name = value.trim_matches('"').to_string();
                    } else if key == "harness" && value == "false" {
                        b.harness_false = true;
                    }
                }
            }
            _ => {}
        }
    }
    m
}

/// A workspace member: manifest plus lexed sources grouped by role.
pub struct Member {
    /// Directory containing `Cargo.toml`.
    pub dir: PathBuf,
    /// Path of the manifest relative to the workspace root.
    pub manifest_rel: String,
    /// Parsed manifest.
    pub manifest: Manifest,
    /// `(rel_path, tokens, test_mod_ranges)` for `src/**.rs`.
    pub lib_sources: Vec<(String, Vec<Token>, Vec<(usize, usize)>)>,
    /// Same for `tests/`, `benches/`, `examples/`.
    pub test_sources: Vec<(String, Vec<Token>, Vec<(usize, usize)>)>,
}

/// `rim-geom` → `rim_geom` (the identifier Rust code uses).
pub fn crate_ident(name: &str) -> String {
    name.replace('-', "_")
}

/// Path roots that never correspond to a dependency.
const BUILTIN_PATH_ROOTS: &[&str] = &["std", "core", "alloc", "crate", "super", "self", "test"];

/// Runs all manifest/source audits for one member.
pub fn audit_member(member: &Member, workspace_crates: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    let m = &member.manifest;
    let rel = &member.manifest_rel;

    // External dependencies: everything must be a workspace sibling or
    // explicitly allowlisted.
    for dep in m.deps.iter().chain(&m.dev_deps).chain(&m.workspace_deps) {
        if !workspace_crates.contains(&dep.name) && !EXTERNAL_ALLOWLIST.contains(&dep.name.as_str())
        {
            out.push(Diagnostic {
                rule: "external-dependency",
                file: rel.clone(),
                line: dep.line,
                message: format!(
                    "`{}` is not a workspace crate and is not on the (empty) external \
                     allowlist; the build must stay hermetic",
                    dep.name
                ),
            });
        }
    }

    // Workspace-level deps must be path dependencies.
    for dep in &m.workspace_deps {
        if !dep.value.contains("path") {
            out.push(Diagnostic {
                rule: "external-dependency",
                file: rel.clone(),
                line: dep.line,
                message: format!(
                    "workspace dependency `{}` is not a path dependency; registry \
                     dependencies are forbidden",
                    dep.name
                ),
            });
        }
    }

    // Declared-but-unused: a [dependencies] entry must be referenced
    // somewhere in the crate; a [dev-dependencies] entry likewise
    // (test modules inside src/ count).
    let all_sources: Vec<&(String, Vec<Token>, Vec<(usize, usize)>)> =
        member.lib_sources.iter().chain(&member.test_sources).collect();
    for (deps, kind) in [(&m.deps, "dependency"), (&m.dev_deps, "dev-dependency")] {
        for dep in deps {
            let ident = crate_ident(&dep.name);
            let used = all_sources
                .iter()
                .any(|(_, tokens, _)| tokens.iter().any(|t| t.kind == Kind::Ident && t.text == ident));
            if !used {
                out.push(Diagnostic {
                    rule: "unused-dependency",
                    file: rel.clone(),
                    line: dep.line,
                    message: format!("declared {kind} `{}` is never referenced in this crate", dep.name),
                });
            }
        }
    }

    // Used-but-undeclared, two detectors:
    //   (a) `use <root>::…` roots must be builtin, self, or declared;
    //   (b) inline `<workspace_crate>::` paths must be declared.
    let self_ident = crate_ident(&m.package_name);
    let declared: BTreeSet<String> = m.deps.iter().map(|d| crate_ident(&d.name)).collect();
    let declared_dev: BTreeSet<String> = m
        .deps
        .iter()
        .chain(&m.dev_deps)
        .map(|d| crate_ident(&d.name))
        .collect();
    let workspace_idents: BTreeSet<String> =
        workspace_crates.iter().map(|n| crate_ident(n)).collect();

    // Local modules: edition-2018 uniform paths allow `use render::…`
    // for a sibling `mod render;`, so module names are not deps.
    let mut local_mods: BTreeSet<String> = BTreeSet::new();
    for (_, tokens, _) in member.lib_sources.iter().chain(&member.test_sources) {
        let code: Vec<&Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
            .collect();
        for w in code.windows(2) {
            if w[0].text == "mod" && w[1].kind == Kind::Ident {
                local_mods.insert(w[1].text.clone());
            }
        }
    }

    let scan = |sources: &[(String, Vec<Token>, Vec<(usize, usize)>)],
                test_scope: bool,
                out: &mut Vec<Diagnostic>| {
        for (path, tokens, test_ranges) in sources {
            let code: Vec<(usize, &Token)> = tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.kind, Kind::Comment | Kind::DocComment))
                .collect();
            for w in code.windows(3) {
                let (idx, a) = w[0];
                let b = w[1].1;
                let c = w[2].1;
                let in_test = test_scope
                    || test_ranges.iter().any(|&(s, e)| idx >= s && idx < e);
                let allowed = if in_test { &declared_dev } else { &declared };
                // (a) use-statement roots.
                if a.text == "use" && b.kind == Kind::Ident && c.text == "::" {
                    let root = &b.text;
                    if !BUILTIN_PATH_ROOTS.contains(&root.as_str())
                        && *root != self_ident
                        && !allowed.contains(root)
                        && !local_mods.contains(root)
                    {
                        out.push(Diagnostic {
                            rule: "undeclared-dependency",
                            file: path.clone(),
                            line: b.line,
                            message: format!(
                                "`use {root}::…` but `{}` does not declare it under \
                                 [{}dependencies]",
                                rel,
                                if in_test { "dev-" } else { "" }
                            ),
                        });
                    }
                }
                // (b) inline workspace-crate paths.
                if b.kind == Kind::Ident
                    && c.text == "::"
                    && a.text != "use"
                    && a.text != "::"
                    && workspace_idents.contains(&b.text)
                    && b.text != self_ident
                    && !allowed.contains(&b.text)
                {
                    out.push(Diagnostic {
                        rule: "undeclared-dependency",
                        file: path.clone(),
                        line: b.line,
                        message: format!(
                            "path `{}::…` references a workspace crate `{}` does not declare",
                            b.text, rel
                        ),
                    });
                }
            }
        }
    };
    scan(&member.lib_sources, false, out);
    scan(&member.test_sources, true, out);

    // Bench-target consistency: every [[bench]] maps to benches/<name>.rs
    // with harness = false, and every benches/*.rs has a [[bench]] entry
    // (without one, Cargo would hand the file to the nonexistent default
    // harness).
    let bench_dir = member.dir.join("benches");
    let mut bench_files: BTreeSet<String> = BTreeSet::new();
    if bench_dir.is_dir() {
        if let Ok(entries) = fs::read_dir(&bench_dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "rs") {
                    if let Some(stem) = p.file_stem().and_then(|s| s.to_str()) {
                        bench_files.insert(stem.to_string());
                    }
                }
            }
        }
    }
    for b in &m.benches {
        if b.name.is_empty() {
            out.push(Diagnostic {
                rule: "bench-target",
                file: rel.clone(),
                line: b.line,
                message: "[[bench]] entry has no name".to_string(),
            });
            continue;
        }
        if !b.harness_false {
            out.push(Diagnostic {
                rule: "bench-target",
                file: rel.clone(),
                line: b.line,
                message: format!(
                    "[[bench]] `{}` must set `harness = false` (the workspace uses its \
                     own timing harness)",
                    b.name
                ),
            });
        }
        if !bench_files.contains(&b.name) {
            out.push(Diagnostic {
                rule: "bench-target",
                file: rel.clone(),
                line: b.line,
                message: format!("[[bench]] `{}` has no benches/{}.rs", b.name, b.name),
            });
        }
    }
    let declared_benches: BTreeSet<&str> = m.benches.iter().map(|b| b.name.as_str()).collect();
    for f in &bench_files {
        if !declared_benches.contains(f.as_str()) {
            out.push(Diagnostic {
                rule: "bench-target",
                file: rel.clone(),
                line: 1,
                message: format!("benches/{f}.rs has no [[bench]] entry in {rel}"),
            });
        }
    }
}

/// The permanent brute-force oracles. Every fast engine is
/// differential-tested against these, so the tests must keep calling
/// them — an optimization PR that silently rewires the suites onto a
/// fast engine would make the differential layer vacuous.
///
/// The interference oracle guards the receiver-centric kernel; the
/// witness-predicate oracles guard the index-backed Gabriel/RNG stages
/// of the topology pipeline; the SINR oracle guards the indexed
/// physical-model kernel of `rim-phys`.
pub const RETAINED_ORACLES: &[&str] = &[
    "interference_vector_naive",
    "is_gabriel_edge_naive",
    "is_rng_edge_naive",
    "sinr_interference_naive",
];

/// Workspace-level audit: for each retained oracle in
/// [`RETAINED_ORACLES`] that is *defined* in library sources, there
/// must be at least one caller in test scope (integration tests,
/// benches, examples, or `#[cfg(test)]` modules).
///
/// The definition gate keeps the audit silent on workspaces that never
/// had an oracle (e.g. the lint-test fixture); deleting a definition
/// together with its callers instead trips `unused`/compile failures in
/// the crates whose suites import it.
pub fn audit_oracle_retained(members: &[Member], out: &mut Vec<Diagnostic>) {
    for oracle in RETAINED_ORACLES {
        audit_one_oracle(oracle, members, out);
    }
}

/// The per-oracle check behind [`audit_oracle_retained`].
fn audit_one_oracle(oracle: &str, members: &[Member], out: &mut Vec<Diagnostic>) {
    // Definition site: `fn <oracle>` in lib sources.
    let mut def: Option<(String, u32)> = None;
    for member in members {
        for (path, tokens, _) in &member.lib_sources {
            let code: Vec<&Token> = tokens
                .iter()
                .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
                .collect();
            for w in code.windows(2) {
                if w[0].text == "fn" && w[1].kind == Kind::Ident && w[1].text == oracle {
                    def = Some((path.clone(), w[1].line));
                }
            }
        }
    }
    let Some((def_file, def_line)) = def else { return };

    // Callers in test scope: any identifier reference in tests/benches/
    // examples files, or inside a `#[cfg(test)]` module of a lib source.
    // (Identifier tokens never come from comments — the lexer classifies
    // those separately — so doc mentions don't count as callers.)
    let mut callers = 0usize;
    for member in members {
        for (_, tokens, _) in &member.test_sources {
            callers += tokens
                .iter()
                .filter(|t| t.kind == Kind::Ident && t.text == oracle)
                .count();
        }
        for (_, tokens, ranges) in &member.lib_sources {
            callers += tokens
                .iter()
                .enumerate()
                .filter(|(i, t)| {
                    t.kind == Kind::Ident
                        && t.text == oracle
                        && ranges.iter().any(|&(s, e)| *i >= s && *i < e)
                })
                .count();
        }
    }
    if callers == 0 {
        out.push(Diagnostic {
            rule: "naive-oracle-retained",
            file: def_file,
            line: def_line,
            message: format!(
                "`{oracle}` is defined but no test, bench, or example references \
                 it; the differential-oracle suites must keep exercising the naive \
                 reference implementations"
            ),
        });
    }
}

/// Graph-backed successor of [`audit_oracle_retained`]: an oracle is
/// retained iff at least one of its non-test definitions is reachable
/// from a test-scope function in the workspace call graph. Stricter
/// than the token scan — "the name appears in a test file" is not
/// enough; an actual call chain must exist.
pub fn audit_oracle_retained_graph(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let reach = ws.reachable_from_tests();
    for oracle in RETAINED_ORACLES {
        let defs: Vec<usize> = ws
            .defs_named(oracle)
            .iter()
            .copied()
            .filter(|&i| !ws.fns[i].in_test && !ws.files[ws.fns[i].file_idx].is_test_source)
            .collect();
        if defs.is_empty() {
            continue; // fixture-style workspaces: silent, like the token scan
        }
        if !defs.iter().any(|&i| reach[i]) {
            let d = &ws.fns[defs[0]];
            out.push(Diagnostic {
                rule: "naive-oracle-retained",
                file: d.file.clone(),
                line: d.line,
                message: format!(
                    "`{oracle}` is not reachable from any test in the call graph; \
                     the differential-oracle suites must keep exercising the naive \
                     reference implementations"
                ),
            });
        }
    }
}

/// Root functions whose entire call closure must be panic-free: the
/// interference kernel, the dynamic-update entry points, the parallel
/// executor, and the topology-pipeline stages. These run inside the
/// long-lived services the ROADMAP plans (`rim-serve`, the churn
/// simulator), where a panic is an availability bug, not a backtrace.
pub const PANIC_FREE_ROOTS: &[&str] = &[
    "interference_vector_with",
    "insert_edge",
    "remove_edge",
    "insert_node",
    "par_map_ranges",
    "parallel_map",
    "filter_edges",
    "witness_index",
    "physical_interference_vector_with",
    "sinr_interference_with",
    "interference_counts",
    "interference_counts_sharded",
    "par_scatter_u32",
    "remove_node",
    "apply_edit",
    "encode_snapshot",
    "decode_snapshot",
];

/// Finds the first occurrence of each panicking construct inside a
/// function body: `panic!`-family macros, `.unwrap()`/`.expect()`,
/// slice indexing, and unchecked `.len() - …` arithmetic. One site per
/// category keeps triage tractable — fixing or justifying the first
/// site forces the author to look at the whole function.
fn panic_sites(tokens: &[Token], (b0, b1): (usize, usize)) -> Vec<(u32, &'static str)> {
    /// Keywords that may directly precede `[` without the bracket being
    /// an index expression (`let [a, b] = …`, `in [0, 1]`, …).
    const NOT_INDEX_PREFIX: &[&str] = &[
        "let", "mut", "ref", "in", "as", "return", "if", "else", "while", "for", "match", "loop",
        "break", "continue", "move", "box", "unsafe", "dyn", "impl", "fn", "where", "pub",
    ];
    let code: Vec<&Token> = tokens[b0.min(tokens.len())..b1.min(tokens.len())]
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .collect();
    let mut first: [Option<(u32, &'static str)>; 4] = [None; 4];
    let record = |slot: &mut Option<(u32, &'static str)>, line: u32, what: &'static str| {
        if slot.is_none() {
            *slot = Some((line, what));
        }
    };
    for (i, t) in code.iter().enumerate() {
        let next = code.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
        if t.kind == Kind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && next == "!"
        {
            record(&mut first[0], t.line, "a `panic!`-family macro");
        }
        if t.text == "."
            && code
                .get(i + 1)
                .is_some_and(|n| n.kind == Kind::Ident && (n.text == "unwrap" || n.text == "expect"))
            && code.get(i + 2).is_some_and(|n| n.text == "(")
        {
            record(&mut first[1], code[i + 1].line, "`.unwrap()`/`.expect()`");
        }
        if t.text == "[" && i > 0 {
            let p = code[i - 1];
            let indexes = (p.kind == Kind::Ident && !NOT_INDEX_PREFIX.contains(&p.text.as_str()))
                || p.text == ")"
                || p.text == "]";
            if indexes {
                record(&mut first[2], t.line, "slice indexing (`[…]` can panic out of bounds)");
            }
        }
        if t.kind == Kind::Ident
            && t.text == "len"
            && next == "("
            && code.get(i + 2).is_some_and(|n| n.text == ")")
            && code.get(i + 3).is_some_and(|n| n.text == "-")
        {
            record(&mut first[3], t.line, "unchecked `.len() - …` (underflows at 0)");
        }
    }
    let mut out: Vec<(u32, &'static str)> = first.iter().flatten().copied().collect();
    out.sort();
    out
}

/// `panic-freedom`: no function reachable from [`PANIC_FREE_ROOTS`] in
/// the call graph may contain a panicking construct without a
/// `// rim-lint: allow(panic-freedom)` pragma — accepted at the
/// offending site or on the function's `fn` line (one justification
/// per function, not one per index expression).
///
/// Slice indexing is special-cased through the expression-level
/// const-bounds pass ([`crate::flow::audit_indexing`]): an index the
/// pass *proves* in range (a `len()`-derived loop bound, an
/// `enumerate` index, a guarded or asserted bound, a `vec![_; n]`
/// length) is no obligation at all, so those sites need no pragma.
/// Only the first unproven index per function is reported, keeping the
/// one-justification-per-function triage contract.
pub fn audit_panic_freedom(
    ws: &Workspace,
    flow: &crate::flow::Flow,
    pragmas: &BTreeMap<String, rules::Pragmas>,
    out: &mut Vec<Diagnostic>,
) {
    // Per-root reachability, so each finding names the root that pulls
    // the function onto a hot path.
    let masks: Vec<(&str, Vec<bool>)> = PANIC_FREE_ROOTS
        .iter()
        .map(|root| {
            let seeds: Vec<usize> = ws
                .defs_named(root)
                .iter()
                .copied()
                .filter(|&i| !ws.fns[i].in_test)
                .collect();
            (*root, ws.reachable_from(seeds))
        })
        .collect();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some((root, _)) = masks.iter().find(|(_, m)| m[i]) else {
            continue;
        };
        let file = &ws.files[f.file_idx];
        let mut sites = panic_sites(file.tokens, f.body);
        // Replace the token-level indexing category with the bounds
        // pass's verdict when a parsed body is available.
        if let Some(body) = &flow.bodies[i] {
            sites.retain(|(_, what)| !what.starts_with("slice indexing"));
            let audit = crate::flow::audit_indexing(body);
            if let Some(line) = audit.first_unproven() {
                sites.push((
                    line,
                    "slice indexing the const-bounds pass cannot prove in range \
                     (`[…]` can panic out of bounds)",
                ));
            }
            sites.sort();
        }
        for (line, what) in sites {
            let allowed = pragmas.get(file.rel).is_some_and(|p| {
                p.allows("panic-freedom", line) || p.allows("panic-freedom", f.line)
            });
            if allowed {
                continue;
            }
            out.push(Diagnostic {
                rule: "panic-freedom",
                file: file.rel.to_string(),
                line,
                message: format!(
                    "`{}` is reachable from panic-free root `{root}` but contains \
                     {what}; remove it or justify with \
                     `// rim-lint: allow(panic-freedom)` at the site or on the \
                     `fn` line",
                    f.path(),
                ),
            });
        }
    }
}

/// Crates whose atomics carry cross-thread protocol obligations.
const ATOMIC_AUDITED_CRATES: &[&str] = &["rim-par", "rim-obs"];

/// `atomic-ordering`: every `Ordering::Relaxed`/`Ordering::SeqCst` in
/// rim-par/rim-obs library code must carry a one-line soundness
/// justification — a comment within the preceding three lines (or on
/// the same line) that names the ordering. Relaxed is the dangerous
/// default (no happens-before), SeqCst the expensive one (usually a
/// stand-in for the ordering the author couldn't articulate); both
/// deserve a sentence.
pub fn audit_atomic_ordering(
    members: &[Member],
    pragmas: &BTreeMap<String, rules::Pragmas>,
    out: &mut Vec<Diagnostic>,
) {
    for member in members {
        if !ATOMIC_AUDITED_CRATES.contains(&member.manifest.package_name.as_str()) {
            continue;
        }
        for (rel, tokens, test_ranges) in &member.lib_sources {
            let code: Vec<(usize, &Token)> = tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.kind, Kind::Comment | Kind::DocComment))
                .collect();
            for (pos, &(idx, t)) in code.iter().enumerate() {
                if t.kind != Kind::Ident || t.text != "Ordering" {
                    continue;
                }
                if test_ranges.iter().any(|&(s, e)| idx >= s && idx < e) {
                    continue;
                }
                let Some(&(_, name)) = code.get(pos + 2) else { continue };
                if code[pos + 1].1.text != "::"
                    || !matches!(name.text.as_str(), "Relaxed" | "SeqCst")
                {
                    continue;
                }
                let needle = name.text.to_ascii_lowercase();
                let justified = tokens.iter().any(|c| {
                    matches!(c.kind, Kind::Comment | Kind::DocComment)
                        && c.line + 3 >= name.line
                        && c.line <= name.line
                        && c.text.to_ascii_lowercase().contains(&needle)
                });
                let allowed = pragmas
                    .get(rel)
                    .is_some_and(|p| p.allows("atomic-ordering", name.line));
                if !justified && !allowed {
                    out.push(Diagnostic {
                        rule: "atomic-ordering",
                        file: rel.clone(),
                        line: name.line,
                        message: format!(
                            "`Ordering::{}` has no soundness justification; add a \
                             nearby comment naming the ordering and why it is \
                             sufficient (what it synchronizes with, or why nothing \
                             needs to)",
                            name.text
                        ),
                    });
                }
            }
        }
    }
}

/// `lock-discipline`: per function body, (a) no `.lock()` guard bound
/// with `let` may still be live (not `drop`ped) at a call into
/// `par_map_ranges`/`parallel_map` — the workers would deadlock the
/// moment they touch the same lock — and (b) the same receiver must
/// not be locked again while a guard on it is live (`std::sync::Mutex`
/// is not reentrant). Purely lexical: one scope per function, `drop(g)`
/// is the only recognized release.
pub fn audit_lock_discipline(
    ws: &Workspace,
    pragmas: &BTreeMap<String, rules::Pragmas>,
    out: &mut Vec<Diagnostic>,
) {
    for f in &ws.fns {
        if f.in_test {
            continue;
        }
        let file = &ws.files[f.file_idx];
        if file.is_test_source {
            continue;
        }
        let (b0, b1) = f.body;
        let code: Vec<&Token> = file.tokens[b0.min(file.tokens.len())..b1.min(file.tokens.len())]
            .iter()
            .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
            .collect();
        let mut pending_let: Option<String> = None;
        // Live guards: (binding, receiver, lock line).
        let mut active: Vec<(String, String, u32)> = Vec::new();
        let emit = |line: u32, message: String, out: &mut Vec<Diagnostic>| {
            let allowed = pragmas.get(file.rel).is_some_and(|p| {
                p.allows("lock-discipline", line) || p.allows("lock-discipline", f.line)
            });
            if !allowed {
                out.push(Diagnostic {
                    rule: "lock-discipline",
                    file: file.rel.to_string(),
                    line,
                    message,
                });
            }
        };
        for i in 0..code.len() {
            let t = code[i];
            match t.text.as_str() {
                "let" => {
                    let mut j = i + 1;
                    if code.get(j).is_some_and(|n| n.text == "mut") {
                        j += 1;
                    }
                    if let Some(n) = code.get(j) {
                        if n.kind == Kind::Ident {
                            pending_let = Some(n.text.clone());
                        }
                    }
                }
                ";" => pending_let = None,
                "drop" => {
                    if code.get(i + 1).is_some_and(|n| n.text == "(") {
                        if let Some(n) = code.get(i + 2) {
                            active.retain(|(g, _, _)| *g != n.text);
                        }
                    }
                }
                "lock" => {
                    if i >= 2
                        && code[i - 1].text == "."
                        && code.get(i + 1).is_some_and(|n| n.text == "(")
                        && code[i - 2].kind == Kind::Ident
                    {
                        let recv = code[i - 2].text.clone();
                        if let Some((_, _, held)) =
                            active.iter().find(|(_, r, _)| *r == recv)
                        {
                            emit(
                                t.line,
                                format!(
                                    "`{}` locks `{recv}` again while the guard taken at \
                                     line {held} is still live; `std::sync::Mutex` \
                                     self-deadlocks on relock",
                                    f.path(),
                                ),
                                out,
                            );
                        }
                        if let Some(g) = pending_let.clone() {
                            active.push((g, recv, t.line));
                        }
                    }
                }
                "par_map_ranges" | "parallel_map" => {
                    if code.get(i + 1).is_some_and(|n| n.text == "(") {
                        if let Some((g, r, held)) = active.first() {
                            emit(
                                t.line,
                                format!(
                                    "`{}` calls `{}` while guard `{g}` (locked from \
                                     `{r}` at line {held}) is live; drop the guard \
                                     before entering the parallel region",
                                    f.path(),
                                    t.text,
                                ),
                                out,
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Definition/positional contexts that must not count as references
/// for `dead-pub`: an identifier right after one of these introduces a
/// name rather than using one (`impl` and `for` cover impl headers and
/// loop bindings).
const DEAD_PUB_DEF_PREFIX: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "type", "union", "macro_rules", "const", "static",
    "impl", "for",
];

/// `dead-pub`: an unrestricted-`pub` item with zero references anywhere
/// in the workspace — tests, benches, examples, and binaries included —
/// is either API that never earned a caller or a leftover from a
/// refactor. References are counted by name: any identifier occurrence
/// outside definition position and outside `use` statements keeps an
/// item alive, and doc-comment mentions count too (doctest-style
/// examples are callers in spirit). Name collisions make this
/// deliberately conservative: a live `foo` anywhere keeps every `foo`
/// alive.
pub fn audit_dead_pub(
    ws: &Workspace,
    pragmas: &BTreeMap<String, rules::Pragmas>,
    out: &mut Vec<Diagnostic>,
) {
    let mut live: BTreeSet<&str> = BTreeSet::new();
    for file in &ws.files {
        // Doc-comment words.
        for t in file.tokens {
            if t.kind == Kind::DocComment {
                for word in t.text.split(|c: char| !c.is_alphanumeric() && c != '_') {
                    if !word.is_empty() {
                        live.insert(word);
                    }
                }
            }
        }
        let code: Vec<&Token> = file
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
            .collect();
        let mut in_use = false;
        for (i, t) in code.iter().enumerate() {
            if t.text == "use" {
                in_use = true;
                continue;
            }
            if t.text == ";" {
                in_use = false;
                continue;
            }
            if in_use || t.kind != Kind::Ident {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| code[p].text.as_str()).unwrap_or("");
            if DEAD_PUB_DEF_PREFIX.contains(&prev) {
                continue;
            }
            live.insert(t.text.as_str());
        }
    }
    for p in &ws.pub_items {
        if live.contains(p.name.as_str()) {
            continue;
        }
        let allowed = pragmas
            .get(&p.file)
            .is_some_and(|pr| pr.allows("dead-pub", p.line));
        if !allowed {
            out.push(Diagnostic {
                rule: "dead-pub",
                file: p.file.clone(),
                line: p.line,
                message: format!(
                    "`pub {} {}` has no references anywhere in the workspace (tests \
                     and benches included); demote it to `pub(crate)`, delete it, or \
                     justify with `// rim-lint: allow(dead-pub)`",
                    p.kind, p.name
                ),
            });
        }
    }
}

/// Packages allowed to construct an enabled observability sink.
/// Everything else may *record into* `rim-obs` (spans, counters,
/// histograms are no-ops by default) but must never install a recorder
/// from library code — otherwise merely linking a crate would silently
/// turn instrumentation on for the whole process.
pub const OBS_SINK_INSTALLERS: &[&str] = &["rim-cli", "rim-bench", "rim-obs", "rim-xtask"];

/// Per-member audit: library code outside the installer allowlist must
/// not call `rim_obs::install` / `rim_obs::install_recorder` (test
/// modules and `tests/`/`benches/`/`examples/` files are free to — a
/// test that asserts on counters has to enable them).
pub fn audit_obs_noop_default(members: &[Member], out: &mut Vec<Diagnostic>) {
    for member in members {
        if OBS_SINK_INSTALLERS.contains(&member.manifest.package_name.as_str()) {
            continue;
        }
        for (path, tokens, test_ranges) in &member.lib_sources {
            let code: Vec<(usize, &Token)> = tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.kind, Kind::Comment | Kind::DocComment))
                .collect();
            for (pos, &(idx, t)) in code.iter().enumerate() {
                if test_ranges.iter().any(|&(s, e)| idx >= s && idx < e) {
                    continue;
                }
                // `rim_obs::install(…)` / `rim_obs::install_recorder()`.
                let qualified = t.kind == Kind::Ident
                    && t.text == "rim_obs"
                    && code.get(pos + 1).is_some_and(|&(_, b)| b.text == "::")
                    && code.get(pos + 2).is_some_and(|&(_, c)| {
                        c.kind == Kind::Ident
                            && (c.text == "install" || c.text == "install_recorder")
                    });
                // A bare `install_recorder` (e.g. via `use rim_obs::…`)
                // counts too, unless it is the path segment the
                // qualified pattern already reported.
                let bare = t.kind == Kind::Ident
                    && t.text == "install_recorder"
                    && !(pos >= 1 && code[pos - 1].1.text == "::");
                if qualified || bare {
                    out.push(Diagnostic {
                        rule: "obs-no-op-default",
                        file: path.clone(),
                        line: t.line,
                        message: format!(
                            "`{}` constructs an enabled observability sink from library \
                             code; only {:?} may install a recorder — everything else \
                             must stay no-op by default",
                            member.manifest.package_name, OBS_SINK_INSTALLERS
                        ),
                    });
                }
            }
        }
    }
}

/// CLI end-to-end tests that must keep existing: the `--timing` →
/// `--obs` migration is only safe while a test still drives per-stage
/// timing output through the binary, and the `--obs jsonl` acceptance
/// scenario must not quietly disappear either.
pub const RETAINED_CLI_E2E: &[&str] = &[
    "control_timing_reports_stages_on_stderr",
    "analyze_obs_jsonl_emits_spans_and_counters",
];

/// Workspace-level audit: when the `rim-cli` package is present, its
/// test sources must define every function named in
/// [`RETAINED_CLI_E2E`]. Gated on the package so fixture workspaces
/// stay silent.
pub fn audit_retained_cli_e2e(members: &[Member], out: &mut Vec<Diagnostic>) {
    let Some(cli) = members.iter().find(|m| m.manifest.package_name == "rim-cli") else {
        return;
    };
    for name in RETAINED_CLI_E2E {
        let defined = cli.test_sources.iter().any(|(_, tokens, _)| {
            let code: Vec<&Token> = tokens
                .iter()
                .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
                .collect();
            code.windows(2)
                .any(|w| w[0].text == "fn" && w[1].kind == Kind::Ident && w[1].text == *name)
        });
        if !defined {
            out.push(Diagnostic {
                rule: "stage-timing-e2e-retained",
                file: cli.manifest_rel.clone(),
                line: 1,
                message: format!(
                    "CLI e2e test `{name}` is gone; the per-stage timing/observability \
                     output must keep an end-to-end test through the `rim` binary"
                ),
            });
        }
    }
}

/// Collects `.rs` files under `dir` (recursively), skipping build
/// output, VCS metadata, and `fixtures` directories (lint-test inputs
/// contain deliberate violations).
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name != "target" && name != ".git" && name != "fixtures" {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Loads a member's manifest and sources, lexing each file once.
pub fn load_member(root: &Path, dir: &Path) -> Result<Member, String> {
    let manifest_path = dir.join("Cargo.toml");
    let text = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let manifest = parse_manifest(&text);
    let rel = |p: &Path| -> String {
        p.strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/")
    };
    let mut lib_sources = Vec::new();
    let mut test_sources = Vec::new();
    for sub in ["src", "tests", "benches", "examples"] {
        let d = dir.join(sub);
        if !d.is_dir() {
            continue;
        }
        for f in rust_files(&d) {
            // The root package's `src`/`tests` globs would otherwise
            // recurse into `crates/`; keep member sources disjoint.
            if sub == "src" && f.strip_prefix(dir).is_ok_and(|r| r.starts_with("crates")) {
                continue;
            }
            let src = fs::read_to_string(&f).map_err(|e| format!("{}: {e}", f.display()))?;
            let (tokens, ranges) = rules::prepare(&src);
            let entry = (rel(&f), tokens, ranges);
            if sub == "src" {
                lib_sources.push(entry);
            } else {
                test_sources.push(entry);
            }
        }
    }
    Ok(Member {
        dir: dir.to_path_buf(),
        manifest_rel: rel(&manifest_path),
        manifest,
        lib_sources,
        test_sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parser_reads_deps_and_benches() {
        let m = parse_manifest(
            "[package]\nname = \"demo\"\n\n[dependencies]\nrim-geom.workspace = true\n\
             rand = \"0.8\"\n\n[dev-dependencies]\nrim-rng.workspace = true\n\n\
             [[bench]]\nname = \"fast\"\nharness = false\n\n[[bench]]\nname = \"slow\"\n",
        );
        assert_eq!(m.package_name, "demo");
        assert_eq!(
            m.deps.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            ["rim-geom", "rand"]
        );
        assert_eq!(m.dev_deps.len(), 1);
        assert_eq!(m.benches.len(), 2);
        assert!(m.benches[0].harness_false);
        assert!(!m.benches[1].harness_false);
    }

    #[test]
    fn crate_ident_normalizes_dashes() {
        assert_eq!(crate_ident("rim-topology-control"), "rim_topology_control");
    }

    fn member_with(manifest: &str, lib_src: &str) -> Member {
        let m = parse_manifest(manifest);
        let (tokens, ranges) = rules::prepare(lib_src);
        Member {
            dir: PathBuf::from("/nonexistent"),
            manifest_rel: "Cargo.toml".to_string(),
            manifest: m,
            lib_sources: vec![("src/lib.rs".to_string(), tokens, ranges)],
            test_sources: Vec::new(),
        }
    }

    fn workspace() -> BTreeSet<String> {
        ["demo", "rim-geom", "rim-rng"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn external_dependency_fires_on_registry_deps() {
        let member = member_with(
            "[package]\nname = \"demo\"\n[dependencies]\nrand = \"0.8\"\n",
            "use rand::Rng;\n",
        );
        let mut out = Vec::new();
        audit_member(&member, &workspace(), &mut out);
        assert!(out.iter().any(|d| d.rule == "external-dependency" && d.message.contains("rand")));
    }

    #[test]
    fn unused_dependency_fires_and_clears() {
        let manifest = "[package]\nname = \"demo\"\n[dependencies]\nrim-geom.workspace = true\n";
        let mut out = Vec::new();
        audit_member(&member_with(manifest, "fn f() {}\n"), &workspace(), &mut out);
        assert!(out.iter().any(|d| d.rule == "unused-dependency"));
        out.clear();
        audit_member(
            &member_with(manifest, "use rim_geom::Point;\n"),
            &workspace(),
            &mut out,
        );
        assert!(!out.iter().any(|d| d.rule == "unused-dependency"));
    }

    #[test]
    fn undeclared_dependency_fires_on_both_detectors() {
        let manifest = "[package]\nname = \"demo\"\n";
        let mut out = Vec::new();
        audit_member(
            &member_with(manifest, "use rand::Rng;\n"),
            &workspace(),
            &mut out,
        );
        assert!(out.iter().any(|d| d.rule == "undeclared-dependency"));
        out.clear();
        audit_member(
            &member_with(manifest, "fn f() -> rim_geom::Point { rim_geom::Point::ORIGIN }\n"),
            &workspace(),
            &mut out,
        );
        assert!(out.iter().any(|d| d.rule == "undeclared-dependency"));
        // std/self/crate roots and declared deps are fine.
        out.clear();
        audit_member(
            &member_with(
                "[package]\nname = \"demo\"\n[dependencies]\nrim-geom.workspace = true\n",
                "use std::fs;\nuse crate::x;\nuse demo::y;\nuse rim_geom::Point;\n",
            ),
            &workspace(),
            &mut out,
        );
        assert!(!out.iter().any(|d| d.rule == "undeclared-dependency"));
    }

    fn member_with_sources(lib_src: &str, test_src: Option<&str>) -> Member {
        let (tokens, ranges) = rules::prepare(lib_src);
        let mut m = member_with("[package]\nname = \"demo\"\n", "");
        m.lib_sources = vec![("src/lib.rs".to_string(), tokens, ranges)];
        if let Some(t) = test_src {
            let (tokens, ranges) = rules::prepare(t);
            m.test_sources = vec![("tests/diff.rs".to_string(), tokens, ranges)];
        }
        m
    }

    #[test]
    fn oracle_audit_is_silent_without_a_definition() {
        // Fixture-style workspaces never define the oracle: no finding.
        let member = member_with_sources("pub fn other() {}\n", None);
        let mut out = Vec::new();
        audit_oracle_retained(&[member], &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn oracle_audit_fires_when_tests_stop_calling_it() {
        let lib = "pub fn interference_vector_naive() {}\n";
        let member = member_with_sources(lib, Some("fn t() { fast_kernel(); }\n"));
        let mut out = Vec::new();
        audit_oracle_retained(&[member], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "naive-oracle-retained");
        assert_eq!(out[0].file, "src/lib.rs");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn oracle_audit_clears_on_integration_test_callers() {
        let lib = "pub fn interference_vector_naive() {}\n";
        let member =
            member_with_sources(lib, Some("fn t() { interference_vector_naive(); }\n"));
        let mut out = Vec::new();
        audit_oracle_retained(&[member], &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn oracle_audit_counts_cfg_test_modules_but_not_lib_calls() {
        // A call from ordinary library code is not a test caller…
        let lib_only =
            "pub fn interference_vector_naive() {}\npub fn f() { interference_vector_naive(); }\n";
        let mut out = Vec::new();
        audit_oracle_retained(&[member_with_sources(lib_only, None)], &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        // …but a call from a #[cfg(test)] module is.
        let with_mod = "pub fn interference_vector_naive() {}\n#[cfg(test)]\nmod tests {\n\
                        fn t() { super::interference_vector_naive(); }\n}\n";
        out.clear();
        audit_oracle_retained(&[member_with_sources(with_mod, None)], &mut out);
        assert!(out.is_empty(), "{out:#?}");
        // Doc-comment mentions alone never count as callers.
        let doc_only =
            "/// see interference_vector_naive\npub fn interference_vector_naive() {}\n";
        out.clear();
        audit_oracle_retained(&[member_with_sources(doc_only, None)], &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn oracle_audit_tracks_each_retained_oracle_independently() {
        // Both witness oracles defined; only Gabriel's has a test
        // caller — exactly one finding, naming the RNG oracle.
        let lib = "pub fn is_gabriel_edge_naive() {}\npub fn is_rng_edge_naive() {}\n";
        let member = member_with_sources(lib, Some("fn t() { is_gabriel_edge_naive(); }\n"));
        let mut out = Vec::new();
        audit_oracle_retained(&[member], &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "naive-oracle-retained");
        assert!(out[0].message.contains("is_rng_edge_naive"), "{}", out[0].message);
        assert_eq!(out[0].line, 2);
        // With callers for both, the audit is silent.
        let member = member_with_sources(
            lib,
            Some("fn t() { is_gabriel_edge_naive(); is_rng_edge_naive(); }\n"),
        );
        out.clear();
        audit_oracle_retained(&[member], &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn retained_oracle_list_includes_the_witness_predicates() {
        for name in [
            "interference_vector_naive",
            "is_gabriel_edge_naive",
            "is_rng_edge_naive",
            "sinr_interference_naive",
        ] {
            assert!(RETAINED_ORACLES.contains(&name), "{name} missing");
        }
    }

    fn named_member(package: &str, lib_src: &str, test_src: Option<&str>) -> Member {
        let mut m = member_with(&format!("[package]\nname = \"{package}\"\n"), lib_src);
        if let Some(t) = test_src {
            let (tokens, ranges) = rules::prepare(t);
            m.test_sources = vec![("tests/e2e.rs".to_string(), tokens, ranges)];
        }
        m
    }

    #[test]
    fn obs_audit_fires_on_library_install_and_clears_for_allowlisted() {
        // A library crate installing a recorder from plain lib code.
        let bad = named_member(
            "rim-core",
            "pub fn init() { rim_obs::install_recorder(); }\n",
            None,
        );
        let mut out = Vec::new();
        audit_obs_noop_default(&[bad], &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "obs-no-op-default");
        assert!(out[0].message.contains("rim-core"));

        // The raw `install` entry point counts too.
        let bad = named_member(
            "rim-sim",
            "pub fn init() { rim_obs::install(&SINK); }\n",
            None,
        );
        out.clear();
        audit_obs_noop_default(&[bad], &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");

        // Allowlisted packages may install.
        for pkg in OBS_SINK_INSTALLERS {
            let ok = named_member(pkg, "pub fn init() { rim_obs::install_recorder(); }\n", None);
            out.clear();
            audit_obs_noop_default(&[ok], &mut out);
            assert!(out.is_empty(), "{pkg}: {out:#?}");
        }
    }

    #[test]
    fn obs_audit_permits_test_scope_installs() {
        // #[cfg(test)] modules inside lib sources are test scope…
        let in_mod = named_member(
            "rim-core",
            "#[cfg(test)]\nmod tests { fn t() { rim_obs::install_recorder(); } }\n",
            None,
        );
        let mut out = Vec::new();
        audit_obs_noop_default(&[in_mod], &mut out);
        assert!(out.is_empty(), "{out:#?}");
        // …and so are integration tests; recording alone is always fine.
        let member = named_member(
            "rim-core",
            "pub fn f() { rim_obs::counter_add(\"x\", 1); }\n",
            Some("fn t() { rim_obs::install_recorder(); }\n"),
        );
        out.clear();
        audit_obs_noop_default(&[member], &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn cli_e2e_audit_is_gated_on_the_cli_package() {
        // No rim-cli member (fixture workspaces): silent.
        let other = named_member("demo", "", None);
        let mut out = Vec::new();
        audit_retained_cli_e2e(&[other], &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn cli_e2e_audit_requires_every_retained_test() {
        // Only one of the two retained tests present: exactly one finding.
        let cli = named_member(
            "rim-cli",
            "",
            Some("#[test]\nfn control_timing_reports_stages_on_stderr() {}\n"),
        );
        let mut out = Vec::new();
        audit_retained_cli_e2e(&[cli], &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "stage-timing-e2e-retained");
        assert!(
            out[0].message.contains("analyze_obs_jsonl_emits_spans_and_counters"),
            "{}",
            out[0].message
        );
        // Both present: silent. A doc-comment mention is not a definition.
        let cli = named_member(
            "rim-cli",
            "",
            Some(
                "#[test]\nfn control_timing_reports_stages_on_stderr() {}\n\
                 #[test]\nfn analyze_obs_jsonl_emits_spans_and_counters() {}\n",
            ),
        );
        out.clear();
        audit_retained_cli_e2e(&[cli], &mut out);
        assert!(out.is_empty(), "{out:#?}");
        let cli = named_member(
            "rim-cli",
            "",
            Some("/// control_timing_reports_stages_on_stderr\n#[test]\nfn other() {}\n"),
        );
        out.clear();
        audit_retained_cli_e2e(&[cli], &mut out);
        assert_eq!(out.len(), 2, "{out:#?}");
    }

    #[test]
    fn dev_dependency_scope_is_respected() {
        // A dev-dep used from a src test module is fine; the same use
        // outside a test module is undeclared for [dependencies].
        let manifest =
            "[package]\nname = \"demo\"\n[dev-dependencies]\nrim-rng.workspace = true\n";
        let in_test = "#[cfg(test)]\nmod tests { use rim_rng::SmallRng; }\n";
        let mut out = Vec::new();
        audit_member(&member_with(manifest, in_test), &workspace(), &mut out);
        assert!(!out.iter().any(|d| d.rule == "undeclared-dependency"));
        out.clear();
        let outside = "use rim_rng::SmallRng;\n";
        audit_member(&member_with(manifest, outside), &workspace(), &mut out);
        assert!(out.iter().any(|d| d.rule == "undeclared-dependency"));
    }

    /// Builds the call-graph model over one synthetic member and runs a
    /// graph-driven audit against it, returning the findings.
    fn run_graph_audit(
        lib: &str,
        test_src: Option<&str>,
        run: impl Fn(&Workspace, &BTreeMap<String, rules::Pragmas>, &mut Vec<Diagnostic>),
    ) -> Vec<Diagnostic> {
        let member = member_with_sources(lib, test_src);
        let members = [member];
        let ws = crate::model::build(&members);
        let pragmas: BTreeMap<String, rules::Pragmas> = ws
            .files
            .iter()
            .map(|f| (f.rel.to_string(), rules::Pragmas::parse(f.tokens)))
            .collect();
        let mut out = Vec::new();
        run(&ws, &pragmas, &mut out);
        out
    }

    #[test]
    fn panic_sites_reports_first_of_each_category() {
        let (tokens, _) = rules::prepare(
            "fn f() { panic!(); x.unwrap(); a[0]; b[1]; y.expect(\"\"); v.len() - 1; }\n",
        );
        let sites = panic_sites(&tokens, (0, tokens.len()));
        // Four categories, each reported once (the second index and the
        // `.expect` after the `.unwrap` fold into their category slots).
        assert_eq!(sites.len(), 4, "{sites:#?}");
    }

    #[test]
    fn panic_sites_skips_non_index_brackets() {
        let (tokens, _) =
            rules::prepare("fn f() { let [a, b] = pair; for x in [1, 2] { g(x); } }\n");
        assert!(panic_sites(&tokens, (0, tokens.len())).is_empty());
    }

    #[test]
    fn panic_freedom_fires_on_the_reachable_closure_only() {
        // `parallel_map` is a panic-free root; `helper` is in its call
        // closure, `unrelated` is not.
        let lib = "pub fn parallel_map(v: Vec<u32>) -> u32 { helper(v) }\n\
                   fn helper(v: Vec<u32>) -> u32 { v[0] }\n\
                   fn unrelated(v: Vec<u32>) -> u32 { v.first().unwrap() + v[1] }\n";
        let out = run_graph_audit(lib, None, |ws, p, out| {
            audit_panic_freedom(ws, &crate::flow::analyze(ws), p, out)
        });
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "panic-freedom");
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains("parallel_map"), "{}", out[0].message);
        assert!(out[0].message.contains("slice indexing"), "{}", out[0].message);
    }

    #[test]
    fn panic_freedom_accepts_pragmas_at_site_or_fn_line() {
        let on_fn = "pub fn parallel_map(v: Vec<u32>) -> u32 { helper(v) }\n\
                     // rim-lint: allow(panic-freedom) — caller guarantees non-empty\n\
                     fn helper(v: Vec<u32>) -> u32 { let x = v[0];\nv.len() - x as usize }\n";
        let out = run_graph_audit(on_fn, None, |ws, p, out| {
            audit_panic_freedom(ws, &crate::flow::analyze(ws), p, out)
        });
        // One pragma on the `fn` line covers every category in the body.
        assert!(out.is_empty(), "{out:#?}");
        let at_site = "pub fn parallel_map(v: Vec<u32>) -> u32 { helper(v) }\n\
                       fn helper(v: Vec<u32>) -> u32 {\n\
                       v[0] // rim-lint: allow(panic-freedom) — non-empty by contract\n\
                       }\n";
        let out = run_graph_audit(at_site, None, |ws, p, out| {
            audit_panic_freedom(ws, &crate::flow::analyze(ws), p, out)
        });
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn atomic_ordering_requires_a_named_justification() {
        let bare = named_member(
            "rim-par",
            "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Relaxed)\n}\n",
            None,
        );
        let mut out = Vec::new();
        audit_atomic_ordering(&[bare], &BTreeMap::new(), &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "atomic-ordering");
        assert!(out[0].message.contains("Relaxed"), "{}", out[0].message);

        // A nearby comment naming the ordering satisfies the audit…
        let justified = named_member(
            "rim-par",
            "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn f(a: &AtomicUsize) -> usize {\n\
                 // Relaxed: monotone counter, nothing synchronizes on it\n\
                 a.load(Ordering::Relaxed)\n}\n",
            None,
        );
        out.clear();
        audit_atomic_ordering(&[justified], &BTreeMap::new(), &mut out);
        assert!(out.is_empty(), "{out:#?}");

        // …a comment naming a *different* ordering does not.
        let wrong = named_member(
            "rim-par",
            "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn f(a: &AtomicUsize) -> usize {\n\
                 // SeqCst would be overkill here\n    a.load(Ordering::Relaxed)\n}\n",
            None,
        );
        out.clear();
        audit_atomic_ordering(&[wrong], &BTreeMap::new(), &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn atomic_ordering_only_audits_the_listed_crates_outside_tests() {
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
                   pub fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::SeqCst)\n}\n";
        let other = named_member("rim-core", src, None);
        let mut out = Vec::new();
        audit_atomic_ordering(&[other], &BTreeMap::new(), &mut out);
        assert!(out.is_empty(), "{out:#?}");
        let in_test = named_member(
            "rim-obs",
            "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicUsize, Ordering};\n\
             fn t(a: &AtomicUsize) -> usize { a.load(Ordering::SeqCst) }\n}\n",
            None,
        );
        out.clear();
        audit_atomic_ordering(&[in_test], &BTreeMap::new(), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn lock_discipline_catches_double_lock_and_guard_across_parallel() {
        let double = "pub fn f(m: &std::sync::Mutex<u32>) {\n\
                      let a = m.lock();\nlet b = m.lock();\n}\n";
        let out = run_graph_audit(double, None, audit_lock_discipline);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "lock-discipline");
        assert!(out[0].message.contains("self-deadlocks"), "{}", out[0].message);

        let across = "pub fn g(m: &std::sync::Mutex<u32>) {\n\
                      let a = m.lock();\npar_map_ranges(1, 1, |r| r);\n}\n";
        let out = run_graph_audit(across, None, audit_lock_discipline);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("par_map_ranges"), "{}", out[0].message);
    }

    #[test]
    fn lock_discipline_clears_on_drop_or_unbound_guards() {
        // `drop(a)` releases the guard before the parallel region…
        let dropped = "pub fn g(m: &std::sync::Mutex<u32>) {\n\
                       let a = m.lock();\ndrop(a);\npar_map_ranges(1, 1, |r| r);\n}\n";
        let out = run_graph_audit(dropped, None, audit_lock_discipline);
        assert!(out.is_empty(), "{out:#?}");
        // …and a temporary (never `let`-bound) guard is not tracked.
        let temp = "pub fn f(m: &std::sync::Mutex<u32>) {\n\
                    *relock(m.lock()) += 1;\n*relock(m.lock()) += 1;\n}\n";
        let out = run_graph_audit(temp, None, audit_lock_discipline);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn dead_pub_flags_unreferenced_items_and_respects_pragmas() {
        let lib = "pub fn used() {}\npub fn orphan() {}\n\
                   /// see also documented()\npub fn documented() {}\n\
                   // rim-lint: allow(dead-pub) — staged API for the next PR\n\
                   pub fn staged() {}\n\
                   fn caller() { used(); }\n";
        let out = run_graph_audit(lib, None, audit_dead_pub);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "dead-pub");
        assert!(out[0].message.contains("orphan"), "{}", out[0].message);
    }

    #[test]
    fn dead_pub_counts_test_and_bench_references() {
        let lib = "pub fn only_tested() {}\n";
        let out = run_graph_audit(lib, Some("fn t() { only_tested(); }\n"), audit_dead_pub);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn graph_oracle_audit_needs_a_real_call_chain() {
        // A name-dropping test file satisfies the token scan but not the
        // graph audit: no call edge, so the oracle is unreachable.
        let lib = "pub fn interference_vector_naive() {}\n";
        let out = run_graph_audit(
            lib,
            Some("/// interference_vector_naive is great\nfn t() { other(); }\n"),
            |ws, _, out| audit_oracle_retained_graph(ws, out),
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "naive-oracle-retained");

        // A direct test caller clears it…
        let out = run_graph_audit(
            lib,
            Some("fn t() { interference_vector_naive(); }\n"),
            |ws, _, out| audit_oracle_retained_graph(ws, out),
        );
        assert!(out.is_empty(), "{out:#?}");

        // …and so does an indirect chain through a helper.
        let out = run_graph_audit(
            "pub fn interference_vector_naive() {}\n\
             pub fn check() { interference_vector_naive(); }\n",
            Some("fn t() { check(); }\n"),
            |ws, _, out| audit_oracle_retained_graph(ws, out),
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn graph_oracle_audit_is_silent_without_definitions() {
        let out = run_graph_audit("pub fn other() {}\n", None, |ws, _, out| {
            audit_oracle_retained_graph(ws, out)
        });
        assert!(out.is_empty(), "{out:#?}");
    }
}
