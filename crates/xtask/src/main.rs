//! CLI entry point.
//!
//! ```text
//! cargo run -p rim-xtask -- lint  [--format human|jsonl] [--root PATH]
//!                                 [--rule NAME] [--explain RULE] [--profile]
//! cargo run -p rim-xtask -- graph [--root PATH] [--out PATH] [--check]
//! ```
//!
//! `lint` exit codes: `0` clean, `1` diagnostics found, `2` usage or
//! I/O error; `--profile` installs the `rim-obs` recorder and prints
//! per-rule wall-clock after the findings. `graph` writes the
//! workspace call graph as JSONL (one `fn` record per definition, one
//! `edge` record per resolved call) to `--out` (default
//! `results/callgraph.jsonl`); `--check` instead compares the freshly
//! built graph against the committed file and exits `1` if it is
//! stale.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p rim-xtask -- <command>\n\
  lint  [--format human|jsonl] [--root PATH] [--rule NAME] [--explain RULE] [--profile]\n\
  graph [--root PATH] [--out PATH] [--check]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut rule_filter: Option<String> = None;
    let mut explain: Option<String> = None;
    let mut command: Option<String> = None;
    let mut profile = false;
    let mut check = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "human" || f == "jsonl" => format = f,
                _ => return usage_error("--format takes `human` or `jsonl`"),
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root takes a path"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => return usage_error("--out takes a path"),
            },
            "--rule" => match it.next() {
                Some(r) => rule_filter = Some(r),
                None => return usage_error("--rule takes a rule name"),
            },
            "--explain" => match it.next() {
                Some(r) => explain = Some(r),
                None => return usage_error("--explain takes a rule name"),
            },
            "--profile" => profile = true,
            "--check" => check = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            c if command.is_none() && !c.starts_with('-') => command = Some(c.to_string()),
            _ => return usage_error(&format!("unrecognized argument `{arg}`")),
        }
    }

    // Rule-name arguments are validated against the registry up front,
    // so a typo'd filter errors out instead of silently matching nothing.
    for name in rule_filter.iter().chain(&explain) {
        if !rim_xtask::rules::rule_known(name) {
            return usage_error(&format!(
                "unknown rule `{name}`; registered rules:\n  {}",
                rim_xtask::rules::RULE_CATALOG
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join("\n  ")
            ));
        }
    }
    if let Some(name) = explain {
        // Validated above, so the lookup cannot miss.
        let text = rim_xtask::rules::rule_explanation(&name).unwrap_or("");
        println!("{name}: {text}");
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match rim_xtask::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match command.as_deref() {
        Some("lint") => run_lint_command(&root, &format, rule_filter.as_deref(), profile),
        Some("graph") => run_graph_command(&root, out_path, check),
        Some(c) => usage_error(&format!("unknown command `{c}`")),
        None => usage_error("missing command"),
    }
}

fn run_lint_command(
    root: &std::path::Path,
    format: &str,
    rule: Option<&str>,
    profile: bool,
) -> ExitCode {
    let recorder = profile.then(rim_obs::install_recorder);
    let diagnostics = match rim_xtask::run_lint(root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let diagnostics: Vec<_> = diagnostics
        .into_iter()
        .filter(|d| rule.is_none_or(|r| d.rule == r))
        .collect();

    for d in &diagnostics {
        if format == "jsonl" {
            println!("{}", d.jsonl());
        } else {
            println!("{}", d.human());
        }
    }
    if let Some(rec) = recorder {
        print_profile(&rec.snapshot());
    }
    if diagnostics.is_empty() {
        eprintln!("rim-xtask lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!("rim-xtask lint: {} diagnostic(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

/// Aggregates span wall-clock per name from a profiling snapshot and
/// prints one line per span, widest first. Nested spans (the per-rule
/// `lint.rule.*` spans inside `lint`) each report their own wall time,
/// so the lines do not sum to the total.
fn print_profile(snap: &rim_obs::Snapshot) {
    let mut per_name: std::collections::BTreeMap<&str, (u64, u64)> = std::collections::BTreeMap::new();
    for span in &snap.spans {
        let entry = per_name.entry(span.name.as_str()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += span.wall_ns.unwrap_or(0);
    }
    let mut rows: Vec<_> = per_name.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
    eprintln!("rim-xtask lint --profile: per-rule wall-clock");
    for (name, (count, total_ns)) in rows {
        eprintln!("  {:<40} {:>9.3} ms  ({count} span(s))", name, total_ns as f64 / 1e6);
    }
}

fn run_graph_command(root: &std::path::Path, out_path: Option<PathBuf>, check: bool) -> ExitCode {
    let members = match rim_xtask::load_workspace(root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let ws = rim_xtask::model::build(&members);
    let jsonl = ws.export_jsonl();
    let out_path = out_path.unwrap_or_else(|| root.join("results/callgraph.jsonl"));
    if check {
        let committed = std::fs::read_to_string(&out_path).unwrap_or_default();
        return if committed == jsonl {
            eprintln!("rim-xtask graph --check: {} is up to date", out_path.display());
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "rim-xtask graph --check: {} is stale; regenerate with \
                 `cargo run -p rim-xtask -- graph`",
                out_path.display()
            );
            ExitCode::FAILURE
        };
    }
    if let Some(parent) = out_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("error: {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&out_path, &jsonl) {
        eprintln!("error: {}: {e}", out_path.display());
        return ExitCode::from(2);
    }
    eprintln!(
        "rim-xtask graph: {} fns, {} edges -> {}",
        ws.fns.len(),
        ws.edges.len(),
        out_path.display()
    );
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
