//! CLI entry point: `cargo run -p rim-xtask -- lint [--format human|jsonl] [--root PATH]`.
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p rim-xtask -- lint [--format human|jsonl] [--root PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut command: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "human" || f == "jsonl" => format = f,
                _ => return usage_error("--format takes `human` or `jsonl`"),
            },
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root takes a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            c if command.is_none() && !c.starts_with('-') => command = Some(arg),
            _ => return usage_error(&format!("unrecognized argument `{arg}`")),
        }
    }

    match command.as_deref() {
        Some("lint") => {}
        Some(c) => return usage_error(&format!("unknown command `{c}`")),
        None => return usage_error("missing command"),
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match rim_xtask::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diagnostics = match rim_xtask::run_lint(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &diagnostics {
        if format == "jsonl" {
            println!("{}", d.jsonl());
        } else {
            println!("{}", d.human());
        }
    }
    if diagnostics.is_empty() {
        eprintln!("rim-xtask lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!("rim-xtask lint: {} diagnostic(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
