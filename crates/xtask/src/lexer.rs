//! A small comment- and string-aware Rust lexer.
//!
//! This is not a full Rust lexer: it produces exactly the token detail
//! the lint rules need — identifiers, integer vs float literals,
//! string/char literals (opaque), multi-character operators, and
//! comments (kept in the stream so pragmas and doc-coverage can see
//! them) — while being robust against the constructs that break naive
//! regex scanning: nested block comments, raw strings, lifetimes vs
//! char literals, and float literals vs range expressions (`1.0` vs
//! `0..n`).

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/oct/bin and suffixed forms).
    Int,
    /// Float literal (has `.`, exponent, or an `f32`/`f64` suffix).
    Float,
    /// String, raw string, byte string, or char literal (content opaque).
    Str,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Operator or other punctuation (multi-char ops pre-merged).
    Punct,
    /// `// …` or `/* … */` comment.
    Comment,
    /// `/// …`, `//! …`, `/** … */`, `/*! … */` doc comment.
    DocComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: Kind,
    /// Source text (for `Str`, the full literal including quotes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// Multi-character operators merged into single `Punct` tokens, longest
/// first so greedy matching is unambiguous.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "..", "->", "=>", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into tokens, keeping comments in-stream.
///
/// Unterminated constructs (string/block comment) consume to EOF
/// rather than erroring: lint input is the workspace's own compiling
/// code, so graceful degradation beats hard failure.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();

    // Advances `idx` to `to`, counting newlines into `line`.
    let bump = |idx: &mut usize, to: usize, line: &mut u32, b: &[char]| {
        while *idx < to {
            if b[*idx] == '\n' {
                *line += 1;
            }
            *idx += 1;
        }
    };

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        let start_line = line;
        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            if b[i + 1] == '/' {
                let mut j = i;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                let text: String = b[i..j].iter().collect();
                let kind = if text.starts_with("///") || text.starts_with("//!") {
                    Kind::DocComment
                } else {
                    Kind::Comment
                };
                out.push(Token { kind, text, line: start_line });
                bump(&mut i, j, &mut line, &b);
            } else {
                // Nested block comment.
                let mut j = i + 2;
                let mut depth = 1usize;
                while j < n && depth > 0 {
                    if j + 1 < n && b[j] == '/' && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == '*' && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text: String = b[i..j.min(n)].iter().collect();
                let kind = if text.starts_with("/**") || text.starts_with("/*!") {
                    Kind::DocComment
                } else {
                    Kind::Comment
                };
                out.push(Token { kind, text, line: start_line });
                bump(&mut i, j.min(n), &mut line, &b);
            }
            continue;
        }
        // Raw / byte strings: r"...", r#"..."#, b"...", br#"..."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i;
            let mut is_raw = false;
            if b[j] == 'b' {
                j += 1;
            }
            if j < n && b[j] == 'r' {
                is_raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while is_raw && j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' && (is_raw || b[i] == 'b') {
                // Scan to the closing quote (+ matching hashes for raw).
                let mut k = j + 1;
                'scan: while k < n {
                    if !is_raw && b[k] == '\\' {
                        k += 2;
                        continue;
                    }
                    if b[k] == '"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < n && b[k + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break 'scan;
                        }
                    }
                    k += 1;
                }
                let text: String = b[i..k.min(n)].iter().collect();
                out.push(Token { kind: Kind::Str, text, line: start_line });
                bump(&mut i, k.min(n), &mut line, &b);
                continue;
            }
            // Not a string prefix: fall through to identifier lexing.
        }
        // Identifiers / keywords.
        if c == '_' || c.is_alphabetic() {
            let mut j = i;
            while j < n && (b[j] == '_' || b[j].is_alphanumeric()) {
                j += 1;
            }
            out.push(Token {
                kind: Kind::Ident,
                text: b[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Plain strings.
        if c == '"' {
            let mut j = i + 1;
            while j < n {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            let text: String = b[i..j.min(n)].iter().collect();
            out.push(Token { kind: Kind::Str, text, line: start_line });
            bump(&mut i, j.min(n), &mut line, &b);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by another quote.
            if i + 1 < n && (b[i + 1] == '_' || b[i + 1].is_alphabetic()) {
                let mut j = i + 2;
                while j < n && (b[j] == '_' || b[j].is_alphanumeric()) {
                    j += 1;
                }
                if j < n && b[j] == '\'' {
                    // 'a' — a char literal after all.
                    out.push(Token {
                        kind: Kind::Str,
                        text: b[i..=j].iter().collect(),
                        line: start_line,
                    });
                    i = j + 1;
                } else {
                    out.push(Token {
                        kind: Kind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line: start_line,
                    });
                    i = j;
                }
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\'', '{'.
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                j += 2;
                // \u{...}
                while j < n && b[j] != '\'' {
                    j += 1;
                }
            } else if j < n {
                j += 1;
            }
            if j < n && b[j] == '\'' {
                j += 1;
            }
            out.push(Token {
                kind: Kind::Str,
                text: b[i..j.min(n)].iter().collect(),
                line: start_line,
            });
            bump(&mut i, j.min(n), &mut line, &b);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut is_float = false;
            if c == '0' && j < n && (b[j] == 'x' || b[j] == 'o' || b[j] == 'b') {
                j += 1;
                while j < n && (b[j].is_ascii_hexdigit() || b[j] == '_') {
                    j += 1;
                }
            } else {
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
                // Decimal point: digit follows (else it's a range/method).
                if j + 1 < n && b[j] == '.' && b[j + 1].is_ascii_digit() {
                    is_float = true;
                    j += 1;
                    while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                        j += 1;
                    }
                } else if j < n && b[j] == '.' && (j + 1 >= n || !(b[j + 1] == '.' || b[j + 1] == '_' || b[j + 1].is_alphabetic())) {
                    // Trailing-dot float `1.`
                    is_float = true;
                    j += 1;
                }
                // Exponent.
                if j < n && (b[j] == 'e' || b[j] == 'E') {
                    let mut k = j + 1;
                    if k < n && (b[k] == '+' || b[k] == '-') {
                        k += 1;
                    }
                    if k < n && b[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                            j += 1;
                        }
                    }
                }
            }
            // Type suffix (f64, u32, usize, …).
            let suf_start = j;
            while j < n && (b[j] == '_' || b[j].is_alphanumeric()) {
                j += 1;
            }
            let suffix: String = b[suf_start..j].iter().collect();
            if suffix.starts_with('f') {
                is_float = true;
            }
            out.push(Token {
                kind: if is_float { Kind::Float } else { Kind::Int },
                text: b[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Punctuation: greedy multi-char match.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let len = op.chars().count();
            if i + len <= n && b[i..i + len].iter().collect::<String>() == **op {
                out.push(Token {
                    kind: Kind::Punct,
                    text: (*op).to_string(),
                    line: start_line,
                });
                i += len;
                matched = true;
                break;
            }
        }
        if !matched {
            out.push(Token {
                kind: Kind::Punct,
                text: c.to_string(),
                line: start_line,
            });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn floats_vs_ranges_vs_methods() {
        let ts = kinds("let x = 1.0; for i in 0..n {} 2.5e-3; 1f64; 7u32; 3.max(4); 0x1F;");
        assert!(ts.contains(&(Kind::Float, "1.0".into())));
        assert!(ts.contains(&(Kind::Int, "0".into())));
        assert!(ts.contains(&(Kind::Punct, "..".into())));
        assert!(ts.contains(&(Kind::Float, "2.5e-3".into())));
        assert!(ts.contains(&(Kind::Float, "1f64".into())));
        assert!(ts.contains(&(Kind::Int, "7u32".into())));
        assert!(ts.contains(&(Kind::Int, "3".into())), "3.max(4) must not be a float");
        assert!(ts.contains(&(Kind::Int, "0x1F".into())));
    }

    #[test]
    fn comments_strings_and_fake_operators_inside() {
        let ts = kinds("let s = \"a == b\"; // x == y\n/* nested /* == */ */ s");
        let eq_puncts = ts.iter().filter(|(k, t)| *k == Kind::Punct && t == "==").count();
        assert_eq!(eq_puncts, 0, "== inside strings/comments must not tokenize");
        assert!(ts.iter().any(|(k, t)| *k == Kind::Comment && t.contains("x == y")));
        assert!(ts.iter().any(|(k, t)| *k == Kind::Comment && t.contains("nested")));
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let ts = kinds("/// doc\n//! inner\n// plain\nfn x() {}");
        assert_eq!(ts.iter().filter(|(k, _)| *k == Kind::DocComment).count(), 2);
        assert_eq!(ts.iter().filter(|(k, _)| *k == Kind::Comment).count(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(ts.contains(&(Kind::Lifetime, "'a".into())));
        assert!(ts.contains(&(Kind::Str, "'x'".into())));
        assert!(ts.contains(&(Kind::Str, "'\\n'".into())));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let ts = kinds(r##"let s = r#"contains "quotes" and == ops"#; t"##);
        assert!(ts.iter().any(|(k, t)| *k == Kind::Str && t.contains("quotes")));
        assert!(!ts.iter().any(|(k, t)| *k == Kind::Punct && t == "=="));
        // The trailing identifier survives.
        assert!(ts.contains(&(Kind::Ident, "t".into())));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let ts = lex("a\nb\n\nc == d");
        let a = ts.iter().find(|t| t.text == "a").unwrap();
        let c = ts.iter().find(|t| t.text == "c").unwrap();
        let eq = ts.iter().find(|t| t.text == "==").unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(c.line, 4);
        assert_eq!(eq.line, 4);
    }

    #[test]
    fn multichar_operators_merge() {
        let ts = kinds("a <= b >= c != d == e .. f ..= g :: h");
        for op in ["<=", ">=", "!=", "==", "..", "..=", "::"] {
            assert!(ts.contains(&(Kind::Punct, op.into())), "{op}");
        }
    }
}
