//! `rim-xtask`: zero-dependency syntax-aware static analysis for the
//! workspace.
//!
//! Run as `cargo run -p rim-xtask -- lint` (diagnostics; `--rule` /
//! `--explain` filter and document rules, `--profile` reports
//! per-rule wall-clock via `rim-obs` spans) or `-- graph --out
//! results/callgraph.jsonl` (call-graph export; `--check` gates on
//! staleness of the committed file). Six layers:
//!
//! * **Token rules** ([`rules`]) over a comment/string-aware token
//!   stream ([`lexer`]): `float-eq`, `no-unwrap-in-lib`,
//!   `forbid-unsafe`, `pub-doc-coverage`, and `unknown-pragma-rule`
//!   (every pragma must name a rule registered in
//!   [`rules::RULE_CATALOG`]). Intentional violations are silenced
//!   in place with `// rim-lint: allow(<rule>)` (same + next line) or
//!   `// rim-lint: allow-file(<rule>)` (whole file).
//! * **Item trees** ([`parse`]): a brace-matched parser recovering
//!   module/impl/trait nesting and `fn` items with opaque token-range
//!   bodies; self-tested against every `.rs` file in the repository
//!   and fuzzed with `rim_rng::prop`.
//! * **Expression trees** ([`expr`]): a Pratt parser turning each fn
//!   body's token range into statement/expression trees, with error
//!   recovery that the self-test requires to never trigger on the
//!   workspace itself.
//! * **Dataflow passes** ([`flow`]): units-of-measure inference
//!   powering the dataflow `squared-distance-mismatch` (the legacy
//!   token scanner is retained and the gate asserts agreement), the
//!   `engine-determinism` rule (no atomic read-modify-write, RNG
//!   draw, wall-clock read, or sink installation reachable from the
//!   determinism-pinned engine roots), and a const-bounds pass whose
//!   in-range proofs discharge `panic-freedom` slice-indexing
//!   obligations.
//! * **Workspace call graph** ([`model`]): heuristic name resolution
//!   restricted to each caller crate's dependency closure, feeding the
//!   graph-driven rules `panic-freedom` (no panicking construct
//!   reachable from the kernel/update/executor/pipeline roots),
//!   `atomic-ordering` (every `Relaxed`/`SeqCst` in rim-par/rim-obs is
//!   justified), `lock-discipline` (no `MutexGuard` held across the
//!   parallel executor, no double-lock), `dead-pub` (no unreferenced
//!   `pub` items), and the graph-backed `naive-oracle-retained` (each
//!   brute-force oracle must be *reachable from a test* — see
//!   [`audit::audit_oracle_retained_graph`]).
//! * **Workspace audits** ([`audit`]): declared-but-unused and
//!   used-but-undeclared dependencies per crate, an (empty) external
//!   dependency allowlist keeping the build hermetic,
//!   `[[bench]]` ↔ `benches/*.rs` consistency, the
//!   `obs-no-op-default` audit (only the CLI and the bench harness
//!   may install an observability recorder; library crates record into
//!   a no-op sink — see [`audit::audit_obs_noop_default`]), and the
//!   `stage-timing-e2e-retained` audit (the CLI keeps end-to-end tests
//!   for per-stage timing/`--obs` output — see
//!   [`audit::audit_retained_cli_e2e`]).
//!
//! The workspace gates itself on a clean run: an integration test
//! asserts `run_lint(workspace_root)` returns zero diagnostics, so
//! `cargo test -q` fails if any rule fires without a pragma.

#![forbid(unsafe_code)]

pub mod audit;
pub mod expr;
pub mod flow;
pub mod model;
pub mod parse;
pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One lint or audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (`float-eq`, `unused-dependency`, …).
    pub rule: &'static str,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// `file:line: [rule] message` — the human-readable form.
    pub fn human(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }

    /// One JSON object per line, stable key order.
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(self.rule),
            json_escape(&self.file),
            self.line,
            json_escape(&self.message)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Is this source file a crate/binary root that must carry
/// `#![forbid(unsafe_code)]`?
fn is_crate_root(rel: &str) -> bool {
    rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs") || rel.contains("src/bin/")
}

/// Is this file library code for the `no-unwrap-in-lib` rule? Binary
/// entry points and `src/bin/` targets may use terse error handling.
fn is_lib_code(rel: &str) -> bool {
    !rel.ends_with("main.rs") && !rel.contains("src/bin/")
}

/// Do the model-crate doc requirements apply to this file?
fn needs_doc_coverage(rel: &str) -> bool {
    rel.starts_with("crates/core/src/") || rel.starts_with("crates/highway/src/")
}

/// Discovers and loads every workspace member: the root package plus
/// `crates/*`, sorted. Shared by [`run_lint`] and the `graph` command.
pub fn load_workspace(root: &Path) -> Result<Vec<audit::Member>, String> {
    let mut member_dirs = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        let mut dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        member_dirs.extend(dirs);
    }
    let mut members = Vec::new();
    for dir in &member_dirs {
        members.push(audit::load_member(root, dir)?);
    }
    Ok(members)
}

/// Lints and audits the workspace rooted at `root`, returning all
/// findings sorted by `(file, line, rule)`. `Err` is reserved for
/// infrastructure failures (unreadable files), not findings.
pub fn run_lint(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let members = load_workspace(root)?;
    let workspace_crates: BTreeSet<String> = members
        .iter()
        .map(|m| m.manifest.package_name.clone())
        .filter(|n| !n.is_empty())
        .collect();

    let mut out = Vec::new();
    for member in &members {
        let has_lib = member.dir.join("src/lib.rs").is_file();
        for (is_lib_source, sources) in
            [(true, &member.lib_sources), (false, &member.test_sources)]
        {
            for (rel, tokens, ranges) in sources {
                let _span = rim_obs::span("lint.token_rules");
                let pragmas = rules::Pragmas::parse(tokens);
                let ctx = rules::FileCtx {
                    path: rel,
                    tokens,
                    pragmas: &pragmas,
                    test_mod_ranges: ranges,
                };
                rules::float_eq(&ctx, &mut out);
                rules::unknown_pragma_rule(&ctx, &mut out);
                if is_lib_source && has_lib && is_lib_code(rel) {
                    rules::no_unwrap_in_lib(&ctx, &mut out);
                }
                if is_lib_source && is_crate_root(rel) {
                    rules::forbid_unsafe(&ctx, &mut out);
                }
                if needs_doc_coverage(rel) {
                    rules::pub_doc_coverage(&ctx, &mut out);
                }
            }
        }
        let _span = rim_obs::span("lint.member_audits");
        audit::audit_member(member, &workspace_crates, &mut out);
    }

    // Call-graph-driven audits: build the syntactic workspace model once
    // and run the reachability rules over it.
    let ws = {
        let _span = rim_obs::span("lint.model_build");
        model::build(&members)
    };
    let pragma_map: std::collections::BTreeMap<String, rules::Pragmas> = ws
        .files
        .iter()
        .map(|f| (f.rel.to_string(), rules::Pragmas::parse(f.tokens)))
        .collect();
    // Expression-level dataflow: parse every body once, infer unit
    // signatures, then run the passes that share the parsed trees.
    let df = {
        let _span = rim_obs::span("lint.flow_analyze");
        flow::analyze(&ws)
    };
    {
        let _span = rim_obs::span("lint.rule.panic_freedom");
        audit::audit_panic_freedom(&ws, &df, &pragma_map, &mut out);
    }
    {
        let _span = rim_obs::span("lint.rule.squared_distance_dataflow");
        flow::check_unit_mismatch(&ws, &df, &pragma_map, &mut out);
    }
    {
        let _span = rim_obs::span("lint.rule.engine_determinism");
        flow::audit_engine_determinism(&ws, &df, &pragma_map, &mut out);
    }
    {
        let _span = rim_obs::span("lint.rule.atomic_ordering");
        audit::audit_atomic_ordering(&members, &pragma_map, &mut out);
    }
    {
        let _span = rim_obs::span("lint.rule.lock_discipline");
        audit::audit_lock_discipline(&ws, &pragma_map, &mut out);
    }
    {
        let _span = rim_obs::span("lint.rule.dead_pub");
        audit::audit_dead_pub(&ws, &pragma_map, &mut out);
    }
    {
        let _span = rim_obs::span("lint.rule.retention_audits");
        audit::audit_oracle_retained_graph(&ws, &mut out);
        audit::audit_obs_noop_default(&members, &mut out);
        audit::audit_retained_cli_e2e(&members, &mut out);
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_formats() {
        let d = Diagnostic {
            rule: "float-eq",
            file: "crates/core/src/receiver.rs".to_string(),
            line: 7,
            message: "say \"no\" to == on f64".to_string(),
        };
        assert_eq!(
            d.human(),
            "crates/core/src/receiver.rs:7: [float-eq] say \"no\" to == on f64"
        );
        assert_eq!(
            d.jsonl(),
            "{\"rule\":\"float-eq\",\"file\":\"crates/core/src/receiver.rs\",\
             \"line\":7,\"message\":\"say \\\"no\\\" to == on f64\"}"
        );
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\\b\"c\nd\u{1}"), "a\\\\b\\\"c\\nd\\u0001");
    }

    #[test]
    fn crate_root_and_lib_code_classification() {
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(is_crate_root("crates/cli/src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/figures.rs"));
        assert!(!is_crate_root("crates/core/src/receiver.rs"));
        assert!(is_lib_code("crates/core/src/receiver.rs"));
        assert!(!is_lib_code("crates/cli/src/main.rs"));
        assert!(!is_lib_code("crates/bench/src/bin/figures.rs"));
    }
}
