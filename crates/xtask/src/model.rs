//! The workspace model: every parsed source file, every function
//! definition, and a heuristic intra-workspace call graph.
//!
//! Resolution is *syntactic* — no type information exists at this layer
//! — so call edges are resolved by name with qualifier filtering:
//!
//! * `path::name(…)` — the last qualifier segment must match a
//!   candidate's impl Self-type, its crate identifier, or its file
//!   (module) stem; `Self::`/`self::`/`crate::`/`super::` restrict to
//!   the calling context. A qualifier that matches no candidate drops
//!   the edge (the call targets `std` or an external type).
//! * `.name(…)` — method calls resolve to every workspace impl method
//!   of that name (an over-approximation: receivers are untyped).
//! * `name(…)` — plain calls prefer same-file candidates, then
//!   same-crate, then every candidate (cross-crate via `use` import).
//! * A bare mention of a known function name (passing `f` as a value)
//!   adds a [`CallKind::Ref`] edge to the same-name candidates.
//!
//! Known false-negative classes (documented in DESIGN.md §9): calls
//! through type aliases or renamed imports (`use f as g`), calls made
//! from macro expansions the source never spells out, trait-object and
//! generic dispatch (edges go to same-named impls only), and function
//! pointers stored in data structures before use.

use std::collections::{BTreeMap, BTreeSet};

use crate::audit::{crate_ident, Member};
use crate::json_escape;
use crate::lexer::{Kind, Token};
use crate::parse::{parse_items, ItemKind, ItemTree};

/// How a call-graph edge was witnessed in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)`, `path::name(…)`, or `.name(…)`.
    Call,
    /// A bare mention of the function name (value position).
    Ref,
}

/// One function definition discovered in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Package name of the defining crate (`rim-core`).
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing impl's Self-type, if defined inside an impl block.
    pub qual: Option<String>,
    /// 1-based definition line.
    pub line: u32,
    /// Unrestricted `pub`.
    pub is_pub: bool,
    /// Defined in test scope: a `tests/`/`benches/`/`examples/` file, a
    /// `#[cfg(test)]` module, or carrying `#[test]` itself.
    pub in_test: bool,
    /// Defined inside `impl Trait for Type` (called through the trait).
    pub trait_impl: bool,
    /// Body token range within the file's token vector.
    pub body: (usize, usize),
    /// Signature token range: from the item's first token (attributes
    /// included) to the start of the body — enough to recover
    /// parameter names for the dataflow passes in [`crate::flow`].
    pub sig: (usize, usize),
    /// Index into [`Workspace::files`].
    pub file_idx: usize,
}

impl FnDef {
    /// `crate::file-stem::[Type::]name` — the stable display path used
    /// in diagnostics and the JSONL export.
    pub fn path(&self) -> String {
        let stem = self
            .file
            .rsplit('/')
            .next()
            .unwrap_or(&self.file)
            .trim_end_matches(".rs");
        match &self.qual {
            Some(q) => format!("{}::{}::{}::{}", crate_ident(&self.krate), stem, q, self.name),
            None => format!("{}::{}::{}", crate_ident(&self.krate), stem, self.name),
        }
    }
}

/// An unrestricted-`pub` item of a library source, tracked for the
/// `dead-pub` rule.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// Package name of the defining crate.
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Item keyword (`fn`, `struct`, `enum`, …) for the message.
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// 1-based definition line.
    pub line: u32,
}

/// One parsed source file.
pub struct SourceFile<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Owning package name.
    pub krate: &'a str,
    /// The file's token stream (comments included).
    pub tokens: &'a [Token],
    /// Its parsed item tree.
    pub tree: ItemTree,
    /// Whether this file lives under `tests/`, `benches/`, or
    /// `examples/`.
    pub is_test_source: bool,
}

/// A directed call-graph edge between [`Workspace::fns`] indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Calling function (index into [`Workspace::fns`]).
    pub from: usize,
    /// Called function (index into [`Workspace::fns`]).
    pub to: usize,
    /// How the edge was witnessed.
    pub kind: CallKind,
}

/// The fully-resolved workspace model.
pub struct Workspace<'a> {
    /// Every parsed source file.
    pub files: Vec<SourceFile<'a>>,
    /// Every function definition.
    pub fns: Vec<FnDef>,
    /// Deduplicated call edges.
    pub edges: Vec<Edge>,
    /// Every unrestricted-`pub` item of library sources (fns included),
    /// for `dead-pub`.
    pub pub_items: Vec<PubItem>,
    /// fn-name → indices into `fns`.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Forward adjacency: `fns`-index → callee indices.
    succ: Vec<Vec<usize>>,
}

/// Keywords that can directly precede `(` without being calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "impl", "where", "in", "as", "move",
    "let", "else", "pub", "crate", "super", "self", "Self", "dyn", "ref", "mut", "use", "unsafe",
    "box", "break", "continue",
];

/// Item keywords: an identifier directly after one is a definition, not
/// a reference.
const DEF_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "type", "union", "macro_rules",
];

/// Builds the workspace model from loaded members: parses every source
/// file, collects function definitions and pub items, and resolves the
/// call graph.
pub fn build<'a>(members: &'a [Member]) -> Workspace<'a> {
    let mut files = Vec::new();
    for member in members {
        for (sources, is_test) in [(&member.lib_sources, false), (&member.test_sources, true)] {
            for (rel, tokens, _) in sources {
                files.push(SourceFile {
                    rel,
                    krate: &member.manifest.package_name,
                    tokens,
                    tree: parse_items(tokens),
                    is_test_source: is_test,
                });
            }
        }
    }

    // Pass 1: collect definitions and pub items.
    let mut fns: Vec<FnDef> = Vec::new();
    let mut pub_items: Vec<PubItem> = Vec::new();
    for (file_idx, f) in files.iter().enumerate() {
        let is_bin = f.rel.ends_with("main.rs") || f.rel.contains("src/bin/");
        f.tree.walk(&mut |item, stack| {
            let in_test = f.is_test_source
                || item.is_test_marked()
                || stack.iter().any(|s| s.is_test_marked());
            let (qual, trait_impl) = match stack.last() {
                Some(p) if p.kind == ItemKind::Impl => (p.impl_of.clone(), p.impl_trait),
                Some(p) if p.kind == ItemKind::Trait => (Some(p.name.clone()), true),
                _ => (None, false),
            };
            if item.kind == ItemKind::Fn {
                fns.push(FnDef {
                    krate: f.krate.to_string(),
                    file: f.rel.to_string(),
                    name: item.name.clone(),
                    qual: qual.clone(),
                    line: item.line,
                    is_pub: item.is_pub,
                    in_test,
                    trait_impl,
                    body: item.body,
                    sig: (item.span.0, item.body.0.max(item.span.0)),
                    file_idx,
                });
            }
            // Pub surface: library (non-test, non-binary) items only.
            if item.is_pub && !in_test && !f.is_test_source && !is_bin {
                let kind = match item.kind {
                    ItemKind::Fn => "fn",
                    ItemKind::Struct => "struct",
                    ItemKind::Enum => "enum",
                    ItemKind::Trait => "trait",
                    ItemKind::Const => "const",
                    ItemKind::Static => "static",
                    ItemKind::TypeAlias => "type",
                    _ => return,
                };
                // Methods of trait impls are called through the trait;
                // their `pub` is not independent API surface.
                if trait_impl {
                    return;
                }
                pub_items.push(PubItem {
                    krate: f.krate.to_string(),
                    file: f.rel.to_string(),
                    kind,
                    name: item.name.clone(),
                    line: item.line,
                });
            }
        });
    }

    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }

    // Dependency closure per crate: a call site can only target crates
    // the caller's crate can actually name — itself plus its declared
    // (dev-)dependencies, transitively. Without this filter the untyped
    // method-call heuristic bleeds across unrelated crates (any
    // `.peek()` would edge into every `peek` impl in the workspace).
    let direct: BTreeMap<&str, Vec<&str>> = members
        .iter()
        .map(|m| {
            let deps = m
                .manifest
                .deps
                .iter()
                .chain(&m.manifest.dev_deps)
                .map(|d| d.name.as_str())
                .collect();
            (m.manifest.package_name.as_str(), deps)
        })
        .collect();
    let dep_closure: BTreeMap<&str, BTreeSet<&str>> = direct
        .keys()
        .map(|&krate| {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut queue = vec![krate];
            while let Some(c) = queue.pop() {
                if seen.insert(c) {
                    queue.extend(direct.get(c).into_iter().flatten());
                }
            }
            (krate, seen)
        })
        .collect();

    // Pass 2: extract and resolve call sites.
    let empty = BTreeSet::new();
    let mut edge_set: BTreeSet<(usize, usize, bool)> = BTreeSet::new();
    for (caller_idx, caller) in fns.iter().enumerate() {
        let file = &files[caller.file_idx];
        let allowed = dep_closure.get(caller.krate.as_str()).unwrap_or(&empty);
        for site in call_sites(file.tokens, caller.body, &by_name) {
            let targets = resolve(&site, caller, &fns, &by_name, allowed);
            for t in targets {
                if t != caller_idx {
                    edge_set.insert((caller_idx, t, site.kind == CallKind::Ref));
                }
            }
        }
    }
    let edges: Vec<Edge> = edge_set
        .into_iter()
        .map(|(from, to, is_ref)| Edge {
            from,
            to,
            kind: if is_ref { CallKind::Ref } else { CallKind::Call },
        })
        .collect();
    let mut succ = vec![Vec::new(); fns.len()];
    for e in &edges {
        succ[e.from].push(e.to);
    }

    Workspace { files, fns, edges, pub_items, by_name, succ }
}

/// One syntactic call site inside a function body.
struct CallSite {
    /// Callee name.
    name: String,
    /// Path qualifier segments before the name (`rim_core`, `receiver`
    /// for `rim_core::receiver::f(…)`); empty when unqualified.
    qualifier: Vec<String>,
    /// `.name(…)` — a method call.
    is_method: bool,
    /// Call vs bare reference.
    kind: CallKind,
}

/// Extracts call sites from the body token range `[b0, b1)`.
fn call_sites(
    tokens: &[Token],
    (b0, b1): (usize, usize),
    known: &BTreeMap<String, Vec<usize>>,
) -> Vec<CallSite> {
    let code: Vec<&Token> = tokens[b0.min(tokens.len())..b1.min(tokens.len())]
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .collect();
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != Kind::Ident || NOT_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| code[p].text.as_str()).unwrap_or("");
        let next = code.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
        if DEF_KEYWORDS.contains(&prev) {
            continue; // a definition, not a use
        }
        // Macro invocations are not function calls.
        if next == "!" {
            continue;
        }
        // Direct call `name(` — possibly `path::name(` or `.name(`.
        let direct_call = next == "(";
        // Turbofish call `name::<T>(`.
        let turbofish_call = next == "::"
            && code.get(i + 2).is_some_and(|n| n.text == "<")
            && turbofish_closes_into_call(&code, i + 2);
        let walk_qualifier = |end: usize| {
            let mut qualifier = Vec::new();
            let mut j = end;
            while j >= 2 && code[j - 1].text == "::" && code[j - 2].kind == Kind::Ident {
                qualifier.insert(0, code[j - 2].text.clone());
                j -= 2;
            }
            qualifier
        };
        if direct_call || turbofish_call {
            let is_method = prev == ".";
            let qualifier = if is_method { Vec::new() } else { walk_qualifier(i) };
            out.push(CallSite {
                name: t.text.clone(),
                qualifier,
                is_method,
                kind: CallKind::Call,
            });
            continue;
        }
        // Bare reference to a known fn name in value position.
        if known.contains_key(&t.text) && next != "::" {
            let is_method = prev == ".";
            let qualifier = if is_method { Vec::new() } else { walk_qualifier(i) };
            out.push(CallSite { name: t.text.clone(), qualifier, is_method, kind: CallKind::Ref });
        }
    }
    out
}

/// Does `name::<…>` at `lt` (the position of `<`) close into a `(`?
fn turbofish_closes_into_call(code: &[&Token], lt: usize) -> bool {
    let mut depth = 0i64;
    let mut j = lt;
    while j < code.len() && j < lt + 64 {
        match code[j].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return code.get(j + 1).is_some_and(|n| n.text == "(");
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return code.get(j + 1).is_some_and(|n| n.text == "(");
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// Resolves one call site to candidate definition indices. `allowed`
/// is the caller crate's dependency closure (itself included); defs
/// outside it are unreachable by construction and never edge.
fn resolve(
    site: &CallSite,
    caller: &FnDef,
    fns: &[FnDef],
    by_name: &BTreeMap<String, Vec<usize>>,
    allowed: &BTreeSet<&str>,
) -> Vec<usize> {
    let Some(all_cands) = by_name.get(&site.name) else {
        return Vec::new(); // std / external: out of scope
    };
    let cands: Vec<usize> = all_cands
        .iter()
        .copied()
        .filter(|&i| allowed.contains(fns[i].krate.as_str()))
        .collect();
    if let Some(last) = site.qualifier.last() {
        // Contextual qualifiers restrict to the calling crate (and impl).
        if last == "self" || last == "crate" || last == "super" {
            return cands
                .iter()
                .copied()
                .filter(|&i| fns[i].krate == caller.krate)
                .collect();
        }
        let target_type = if last == "Self" { caller.qual.clone() } else { Some(last.clone()) };
        // An unmatched qualifier means the call targets a type outside
        // the workspace (`Vec::new`): no edge.
        return cands
            .iter()
            .copied()
            .filter(|&i| {
                let f = &fns[i];
                let stem = f.file.rsplit('/').next().unwrap_or("").trim_end_matches(".rs");
                f.qual.as_deref() == target_type.as_deref()
                    || crate_ident(&f.krate) == *last
                    || stem == *last
            })
            .collect();
    }
    if site.is_method {
        // Methods live in impls; free fns cannot be `.called()`.
        return cands.iter().copied().filter(|&i| fns[i].qual.is_some()).collect();
    }
    // Plain call: nearest-scope preference.
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| fns[i].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| fns[i].krate == caller.krate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.clone()
}

impl<'a> Workspace<'a> {
    /// Definition indices for a function name.
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Breadth-first closure over call edges from `seeds`; returns a
    /// reachability mask over [`Workspace::fns`]. Seeds are included.
    pub fn reachable_from(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for s in seeds {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        while let Some(u) = queue.pop() {
            for &v in &self.succ[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        seen
    }

    /// Reachability mask from every test-scope function — the graph
    /// notion of "retained": a definition a test can actually reach.
    pub fn reachable_from_tests(&self) -> Vec<bool> {
        self.reachable_from((0..self.fns.len()).filter(|&i| self.fns[i].in_test))
    }

    /// Serializes the call graph as JSONL: one `{"type":"fn",…}` record
    /// per definition (in index order) followed by one
    /// `{"type":"edge",…}` record per edge. `test_reachable` carries
    /// the verdict of [`Workspace::reachable_from_tests`], so
    /// downstream consumers can reproduce retained-oracle checks
    /// without re-deriving reachability.
    pub fn export_jsonl(&self) -> String {
        let test_reach = self.reachable_from_tests();
        let mut out = String::new();
        for (i, f) in self.fns.iter().enumerate() {
            out.push_str(&format!(
                "{{\"type\":\"fn\",\"id\":{},\"path\":\"{}\",\"crate\":\"{}\",\"file\":\"{}\",\
                 \"line\":{},\"pub\":{},\"test\":{},\"test_reachable\":{}}}\n",
                i,
                json_escape(&f.path()),
                json_escape(&f.krate),
                json_escape(&f.file),
                f.line,
                f.is_pub,
                f.in_test,
                test_reach[i],
            ));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "{{\"type\":\"edge\",\"from\":{},\"to\":{},\"kind\":\"{}\"}}\n",
                e.from,
                e.to,
                match e.kind {
                    CallKind::Call => "call",
                    CallKind::Ref => "ref",
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::parse_manifest;
    use crate::rules::prepare;
    use std::path::PathBuf;

    fn member(package: &str, lib: &[(&str, &str)], test: &[(&str, &str)]) -> Member {
        member_deps(package, &[], lib, test)
    }

    fn member_deps(
        package: &str,
        deps: &[&str],
        lib: &[(&str, &str)],
        test: &[(&str, &str)],
    ) -> Member {
        let mk = |files: &[(&str, &str)]| {
            files
                .iter()
                .map(|(rel, src)| {
                    let (tokens, ranges) = prepare(src);
                    (rel.to_string(), tokens, ranges)
                })
                .collect()
        };
        let mut manifest = format!("[package]\nname = \"{package}\"\n[dependencies]\n");
        for d in deps {
            manifest.push_str(&format!("{d}.workspace = true\n"));
        }
        Member {
            dir: PathBuf::from("/nonexistent"),
            manifest_rel: "Cargo.toml".to_string(),
            manifest: parse_manifest(&manifest),
            lib_sources: mk(lib),
            test_sources: mk(test),
        }
    }

    fn fn_idx(ws: &Workspace, name: &str) -> usize {
        let d = ws.defs_named(name);
        assert_eq!(d.len(), 1, "expected a unique def of {name}");
        d[0]
    }

    fn has_edge(ws: &Workspace, from: &str, to: &str) -> bool {
        let f = fn_idx(ws, from);
        let t = fn_idx(ws, to);
        ws.edges.iter().any(|e| e.from == f && e.to == t)
    }

    #[test]
    fn plain_calls_prefer_same_file_then_crate() {
        let members = vec![
            member(
                "a",
                &[
                    ("crates/a/src/lib.rs", "pub fn entry() { helper(); }\nfn helper() {}\n"),
                    ("crates/a/src/other.rs", "pub fn helper() {}\n"),
                ],
                &[],
            ),
            member("b", &[("crates/b/src/lib.rs", "pub fn helper() {}\n")], &[]),
        ];
        let ws = build(&members);
        let entry = fn_idx(&ws, "entry");
        let callees: Vec<&str> = ws
            .edges
            .iter()
            .filter(|e| e.from == entry)
            .map(|e| ws.fns[e.to].file.as_str())
            .collect();
        // Only the same-file helper, not other.rs's or crate b's.
        assert_eq!(callees, vec!["crates/a/src/lib.rs"]);
    }

    #[test]
    fn qualified_calls_match_impl_type_crate_and_module() {
        let members = vec![
            member(
                "rim-geom",
                &[(
                    "crates/geom/src/index.rs",
                    "pub struct SpatialIndex;\nimpl SpatialIndex {\n  pub fn build() -> Self { SpatialIndex }\n}\n",
                )],
                &[],
            ),
            member_deps(
                "rim-core",
                &["rim-geom"],
                &[(
                    "crates/core/src/receiver.rs",
                    "pub fn f() { let _ = SpatialIndex::build(); }\n",
                )],
                &[],
            ),
        ];
        let ws = build(&members);
        assert!(has_edge(&ws, "f", "build"));
        // Vec::new-style calls to types outside the workspace never edge.
        let members2 = vec![member(
            "a",
            &[("crates/a/src/lib.rs", "pub fn new() {}\npub fn h() { let _ = Vec::new(); }\n")],
            &[],
        )];
        let ws2 = build(&members2);
        let h = fn_idx(&ws2, "h");
        assert!(ws2.edges.iter().all(|e| e.from != h), "Vec::new must not resolve");
    }

    #[test]
    fn dependency_closure_limits_resolution() {
        let geom = || {
            member(
                "rim-geom",
                &[(
                    "crates/geom/src/index.rs",
                    "pub struct SpatialIndex;\nimpl SpatialIndex {\n  pub fn probe(&self) {}\n}\n",
                )],
                &[],
            )
        };
        // Without a declared dependency on rim-geom, neither the
        // qualified call nor the untyped method call may edge into it.
        let members = vec![
            geom(),
            member(
                "rim-sim",
                &[(
                    "crates/sim/src/lib.rs",
                    "pub fn f(x: &T) { x.probe(); }\n",
                )],
                &[],
            ),
        ];
        let ws = build(&members);
        let f = fn_idx(&ws, "f");
        assert!(ws.edges.iter().all(|e| e.from != f), "undeclared crate must not edge");
        // With the dependency declared, the method call resolves.
        let members = vec![
            geom(),
            member_deps(
                "rim-sim",
                &["rim-geom"],
                &[("crates/sim/src/lib.rs", "pub fn f(x: &T) { x.probe(); }\n")],
                &[],
            ),
        ];
        let ws = build(&members);
        assert!(has_edge(&ws, "f", "probe"));
    }

    #[test]
    fn method_calls_resolve_to_impl_fns_only() {
        let members = vec![member(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "pub struct S;\nimpl S { pub fn step(&self) {} }\n\
                 pub fn run(s: &S) { s.step(); }\n",
            )],
            &[],
        )];
        let ws = build(&members);
        let run = fn_idx(&ws, "run");
        let targets: Vec<&FnDef> = ws
            .edges
            .iter()
            .filter(|e| e.from == run)
            .map(|e| &ws.fns[e.to])
            .collect();
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].qual.as_deref(), Some("S"));
    }

    #[test]
    fn bare_references_create_ref_edges() {
        let members = vec![member(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "pub fn worker(i: usize) -> usize { i }\n\
                 pub fn driver(v: Vec<usize>) { let _: Vec<usize> = v.into_iter().map(worker).collect(); }\n",
            )],
            &[],
        )];
        let ws = build(&members);
        let driver = fn_idx(&ws, "driver");
        let worker = fn_idx(&ws, "worker");
        assert!(ws
            .edges
            .iter()
            .any(|e| e.from == driver && e.to == worker && e.kind == CallKind::Ref));
    }

    #[test]
    fn test_scope_detection_and_reachability() {
        let members = vec![member(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "pub fn api() { inner(); }\nfn inner() {}\nfn dead() {}\n\
                 #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { super::api(); }\n}\n",
            )],
            &[("crates/a/tests/e2e.rs", "#[test]\nfn e2e() { a::api(); }\n")],
        )];
        let ws = build(&members);
        let reach = ws.reachable_from_tests();
        assert!(reach[fn_idx(&ws, "api")]);
        assert!(reach[fn_idx(&ws, "inner")]);
        assert!(!reach[fn_idx(&ws, "dead")]);
        assert!(ws.fns[fn_idx(&ws, "t")].in_test);
        assert!(ws.fns[fn_idx(&ws, "e2e")].in_test);
        assert!(!ws.fns[fn_idx(&ws, "api")].in_test);
    }

    #[test]
    fn pub_items_skip_tests_binaries_and_trait_impls() {
        let members = vec![member(
            "a",
            &[
                (
                    "crates/a/src/lib.rs",
                    "pub struct S;\npub fn api() {}\npub(crate) fn internal() {}\n\
                     impl Clone for S { fn clone(&self) -> S { S } }\n\
                     #[cfg(test)]\nmod tests { pub fn helper() {} }\n",
                ),
                ("crates/a/src/main.rs", "pub fn bin_only() {}\nfn main() {}\n"),
            ],
            &[("crates/a/tests/t.rs", "pub fn test_util() {}\n")],
        )];
        let ws = build(&members);
        let names: Vec<&str> = ws.pub_items.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["S", "api"]);
    }

    #[test]
    fn jsonl_export_lists_fns_then_edges() {
        let members = vec![member(
            "a",
            &[("crates/a/src/lib.rs", "pub fn f() { g(); }\npub fn g() {}\n")],
            &[],
        )];
        let ws = build(&members);
        let jsonl = ws.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), ws.fns.len() + ws.edges.len());
        assert!(lines[0].contains("\"type\":\"fn\""));
        assert!(lines[0].contains("\"path\":\"a::lib::f\""));
        assert!(lines.last().is_some_and(|l| l.contains("\"type\":\"edge\"")));
    }

    #[test]
    fn turbofish_calls_still_resolve() {
        let members = vec![member(
            "a",
            &[(
                "crates/a/src/lib.rs",
                "pub fn make<T: Default>() -> T { T::default() }\n\
                 pub fn use_it() { let _: u32 = make::<u32>(); }\n",
            )],
            &[],
        )];
        let ws = build(&members);
        assert!(has_edge(&ws, "use_it", "make"));
    }
}
