//! A brace-matched item-tree parser over the lexed token stream.
//!
//! This is not a full Rust parser: it recovers exactly the structure the
//! syntax-aware lints need — the nesting of modules, impl blocks, and
//! traits; function items with their attributes, visibility, and bodies
//! as opaque token ranges; and the remaining item kinds as named spans.
//! Everything inside a function body stays a flat token slice: the call
//! graph ([`crate::model`]) and the panic-freedom scan read bodies
//! token-by-token, so no expression tree is required.
//!
//! Robustness contract, enforced by a workspace-wide self-test: parsing
//! any `.rs` file of this repository must (a) never panic, (b) consume
//! every token (`skipped == 0`), and (c) leave every brace matched. On
//! malformed input (the fuzz tests feed adversarial nesting) the parser
//! degrades by skipping tokens — counted in [`ItemTree::skipped`] —
//! rather than failing.

use crate::lexer::{Kind, Token};

/// Classification of one parsed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`
    Mod,
    /// `fn name(…) { … }` (or a bodiless trait-method declaration).
    Fn,
    /// `struct` / `union`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait name { … }` — children hold its method items.
    Trait,
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl,
    /// `const NAME: T = …;` (not `const fn`, which parses as [`ItemKind::Fn`]).
    Const,
    /// `static NAME: T = …;`
    Static,
    /// `type Name = …;`
    TypeAlias,
    /// `use path::…;` or `extern crate name;`
    Use,
    /// `macro_rules! name { … }`
    MacroDef,
    /// An item-position macro invocation (`thread_local! { … }`).
    MacroCall,
}

/// One parsed item. `span` covers the whole item including attributes;
/// `body` is the token range strictly inside its braces (empty for `;`
/// items). Both are index ranges into the *original* token vector, so
/// comment tokens inside bodies remain visible to pragma handling.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// Item name (`""` for impl blocks).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// `pub` without a restriction — the cross-crate API surface.
    /// `pub(crate)`/`pub(super)` parse as not-pub.
    pub is_pub: bool,
    /// Attribute texts with whitespace-free token join: `test`,
    /// `cfg(test)`, `derive(Debug,Clone)`, `inline`.
    pub attrs: Vec<String>,
    /// `[start, end)` token range of the whole item.
    pub span: (usize, usize),
    /// `[start, end)` token range inside the body braces.
    pub body: (usize, usize),
    /// For [`ItemKind::Impl`]: the Self-type name (`SpatialIndex` for
    /// `impl rim_geom::SpatialIndex`, `Engine` for `impl FromStr for Engine`).
    pub impl_of: Option<String>,
    /// For [`ItemKind::Impl`]: whether this is a trait impl
    /// (`impl Trait for Type`), whose methods are called through the
    /// trait rather than by name.
    pub impl_trait: bool,
    /// Nested items of a `mod`, `trait`, or `impl` body.
    pub children: Vec<Item>,
}

impl Item {
    /// Does any attribute mark this item as test-only (`#[test]` or a
    /// `cfg(…)` mentioning `test`)?
    pub fn is_test_marked(&self) -> bool {
        self.attrs.iter().any(|a| {
            a == "test"
                || a.ends_with("::test")
                || (a.starts_with("cfg(") && a.contains("test"))
        })
    }
}

/// Result of parsing one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Tokens dropped by error recovery; 0 on every workspace file.
    pub skipped: usize,
}

impl ItemTree {
    /// Depth-first visit of every item in the tree.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Item, &[&'a Item])) {
        fn rec<'a>(
            items: &'a [Item],
            stack: &mut Vec<&'a Item>,
            f: &mut impl FnMut(&'a Item, &[&'a Item]),
        ) {
            for it in items {
                f(it, stack);
                stack.push(it);
                rec(&it.children, stack, f);
                stack.pop();
            }
        }
        rec(&self.items, &mut Vec::new(), f);
    }
}

/// Item-introducing keywords the dispatcher understands.
const QUALIFIERS: &[&str] = &["default", "const", "unsafe", "async", "extern"];

struct Parser<'a> {
    toks: &'a [Token],
    /// Indices of non-comment tokens (the parse stream).
    code: Vec<usize>,
    /// Cursor into `code`.
    pos: usize,
    skipped: usize,
}

/// Parses a lexed file into its item tree. Never panics; malformed
/// regions are skipped and counted.
pub fn parse_items(tokens: &[Token]) -> ItemTree {
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, Kind::Comment | Kind::DocComment))
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser { toks: tokens, code, pos: 0, skipped: 0 };
    let items = p.parse_block(p.code.len());
    ItemTree { items, skipped: p.skipped }
}

impl<'a> Parser<'a> {
    /// The token at code position `pos + off`, if any.
    fn peek(&self, off: usize) -> Option<&'a Token> {
        self.code.get(self.pos + off).map(|&i| &self.toks[i])
    }

    fn peek_text(&self, off: usize) -> &str {
        self.peek(off).map_or("", |t| t.text.as_str())
    }

    /// Original-token index of code position `pos + off` (or one past
    /// the last token).
    fn orig(&self, off: usize) -> usize {
        self.code
            .get(self.pos + off)
            .copied()
            .unwrap_or(self.toks.len())
    }

    /// Parses items until code position `end` (exclusive) or a stray
    /// closing brace, which the caller owns.
    fn parse_block(&mut self, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < end {
            // A `}` belongs to the enclosing block (nested calls pass
            // `end < code.len()`); at top level it is stray input and
            // recovery consumes it.
            if self.peek_text(0) == "}" && end < self.code.len() {
                break;
            }
            match self.parse_item(end) {
                Some(item) => items.push(item),
                None => {
                    // Recovery: drop one token and continue.
                    self.pos += 1;
                    self.skipped += 1;
                }
            }
        }
        items
    }

    /// Attempts to parse one item starting at the cursor. Returns
    /// `None` without consuming anything the dispatcher recognizes.
    fn parse_item(&mut self, end: usize) -> Option<Item> {
        let span_start = self.orig(0);
        let mut attrs = Vec::new();

        // Leading attributes: `#[…]` (outer) and `#![…]` (inner —
        // consumed so file-level `#![forbid(unsafe_code)]` does not trip
        // recovery, but not attached as an outer attribute).
        loop {
            if self.peek_text(0) != "#" {
                break;
            }
            let inner = self.peek_text(1) == "!";
            let bracket = if inner { 2 } else { 1 };
            if self.peek_text(bracket) != "[" {
                return None; // a stray `#`: not an attribute
            }
            // Find the matching `]`.
            let mut depth = 0i64;
            let mut j = self.pos + bracket;
            let mut text = String::new();
            while j < self.code.len() {
                let t = &self.toks[self.code[j]];
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if depth >= 1 && !(depth == 1 && t.text == "[") {
                    text.push_str(&t.text);
                }
                j += 1;
            }
            if j >= self.code.len() {
                return None; // unterminated attribute
            }
            if !inner {
                attrs.push(text);
            }
            self.pos = j + 1;
            if self.pos >= end {
                // Attribute-only tail (inner attrs at EOF).
                return Some(Item {
                    kind: ItemKind::Use,
                    name: String::new(),
                    line: self.toks.get(span_start).map_or(1, |t| t.line),
                    is_pub: false,
                    attrs,
                    span: (span_start, self.orig(0)),
                    body: (0, 0),
                    impl_of: None,
                    impl_trait: false,
                    children: Vec::new(),
                });
            }
        }

        // Visibility.
        let mut is_pub = false;
        if self.peek_text(0) == "pub" {
            if self.peek_text(1) == "(" {
                // pub(crate) / pub(super) / pub(in path): restricted.
                let close = self.find_matching(self.pos + 1, "(", ")")?;
                self.pos = close + 1;
            } else {
                is_pub = true;
                self.pos += 1;
            }
        }

        // Qualifiers (`const fn`, `unsafe trait`, `extern "C" fn`, …).
        // `const`/`extern` are also item keywords, so only consume them
        // as qualifiers when an item keyword follows.
        loop {
            let t = self.peek_text(0).to_string();
            if !QUALIFIERS.contains(&t.as_str()) {
                break;
            }
            let next = if t == "extern" && self.peek(1).is_some_and(|n| n.kind == Kind::Str) {
                self.peek_text(2).to_string()
            } else {
                self.peek_text(1).to_string()
            };
            let item_follows = matches!(
                next.as_str(),
                "fn" | "trait" | "impl" | "unsafe" | "async" | "extern" | "const"
            );
            if (t == "const" || t == "static" || t == "extern") && !item_follows {
                break; // `const X: …`, `extern crate`, `extern { … }`
            }
            self.pos += 1;
            if t == "extern" && self.peek(0).is_some_and(|n| n.kind == Kind::Str) {
                self.pos += 1; // the ABI string
            }
        }

        let kw = self.peek(0)?;
        let line = kw.line;
        let kind_word = kw.text.clone();
        let finish = |p: &Parser<'a>,
                      kind: ItemKind,
                      name: String,
                      body: (usize, usize),
                      impl_of: Option<String>,
                      impl_trait: bool,
                      children: Vec<Item>| {
            Some(Item {
                kind,
                name,
                line,
                is_pub,
                attrs,
                span: (span_start, p.orig(0)),
                body,
                impl_of,
                impl_trait,
                children,
            })
        };

        match kind_word.as_str() {
            "fn" => {
                let name = self.ident_at(1)?;
                self.pos += 2;
                let body = self.scan_to_body()?;
                finish(self, ItemKind::Fn, name, body, None, false, Vec::new())
            }
            "mod" => {
                let name = self.ident_at(1)?;
                self.pos += 2;
                match self.peek_text(0) {
                    ";" => {
                        self.pos += 1;
                        finish(self, ItemKind::Mod, name, (0, 0), None, false, Vec::new())
                    }
                    "{" => {
                        let open = self.pos;
                        let close = self.find_matching(open, "{", "}")?;
                        self.pos = open + 1;
                        let children = self.parse_block(close);
                        let body = (self.code[open] + 1, self.code[close]);
                        self.pos = close + 1;
                        finish(self, ItemKind::Mod, name, body, None, false, children)
                    }
                    _ => None,
                }
            }
            "struct" | "union" | "enum" | "trait" => {
                let name = self.ident_at(1)?;
                self.pos += 2;
                // Scan past generics/bounds/where-clause to `{`, `;`, or
                // (tuple struct) `(…);`.
                let kind = match kind_word.as_str() {
                    "enum" => ItemKind::Enum,
                    "trait" => ItemKind::Trait,
                    _ => ItemKind::Struct,
                };
                loop {
                    match self.peek_text(0) {
                        "" => return None,
                        ";" => {
                            self.pos += 1;
                            return finish(self, kind, name, (0, 0), None, false, Vec::new());
                        }
                        "(" => {
                            let close = self.find_matching(self.pos, "(", ")")?;
                            self.pos = close + 1;
                        }
                        "{" => {
                            let open = self.pos;
                            let close = self.find_matching(open, "{", "}")?;
                            let body = (self.code[open] + 1, self.code[close]);
                            let children = if kind == ItemKind::Trait {
                                self.pos = open + 1;
                                let c = self.parse_block(close);
                                self.pos = close + 1;
                                c
                            } else {
                                self.pos = close + 1;
                                Vec::new()
                            };
                            return finish(self, kind, name, body, None, false, children);
                        }
                        _ => self.pos += 1,
                    }
                }
            }
            "impl" => {
                self.pos += 1;
                // Header: everything to the opening `{` (tracking
                // paren/bracket groups so `impl Fn(usize)` bounds and
                // array types survive).
                let header_start = self.pos;
                loop {
                    match self.peek_text(0) {
                        "" => return None,
                        "(" => {
                            let close = self.find_matching(self.pos, "(", ")")?;
                            self.pos = close + 1;
                        }
                        "[" => {
                            let close = self.find_matching(self.pos, "[", "]")?;
                            self.pos = close + 1;
                        }
                        "{" => break,
                        _ => self.pos += 1,
                    }
                }
                let header: Vec<&Token> = (header_start..self.pos)
                    .map(|c| &self.toks[self.code[c]])
                    .collect();
                let (impl_of, impl_trait) = impl_target(&header);
                let open = self.pos;
                let close = self.find_matching(open, "{", "}")?;
                self.pos = open + 1;
                let children = self.parse_block(close);
                let body = (self.code[open] + 1, self.code[close]);
                self.pos = close + 1;
                finish(self, ItemKind::Impl, String::new(), body, impl_of, impl_trait, children)
            }
            "const" | "static" => {
                // Plain value items (`const fn` was consumed as a
                // qualifier above and never reaches here).
                let kind = if kind_word == "const" { ItemKind::Const } else { ItemKind::Static };
                // `static mut NAME` / `const _: T`.
                let mut off = 1;
                if self.peek_text(off) == "mut" {
                    off += 1;
                }
                let name = match self.peek(off) {
                    Some(t) if t.kind == Kind::Ident => t.text.clone(),
                    Some(t) if t.text == "_" => "_".to_string(),
                    _ => return None,
                };
                self.pos += off + 1;
                self.skip_to_semicolon()?;
                finish(self, kind, name, (0, 0), None, false, Vec::new())
            }
            "type" => {
                let name = self.ident_at(1)?;
                self.pos += 2;
                self.skip_to_semicolon()?;
                finish(self, ItemKind::TypeAlias, name, (0, 0), None, false, Vec::new())
            }
            "use" | "extern" => {
                self.pos += 1;
                self.skip_to_semicolon()?;
                finish(self, ItemKind::Use, String::new(), (0, 0), None, false, Vec::new())
            }
            "macro_rules" => {
                // macro_rules ! name { … }
                if self.peek_text(1) != "!" {
                    return None;
                }
                let name = self.ident_at(2)?;
                self.pos += 3;
                let body = self.consume_macro_group()?;
                finish(self, ItemKind::MacroDef, name, body, None, false, Vec::new())
            }
            _ => {
                // Item-position macro invocation: `name ! ( … );` /
                // `name ! { … }` / `path :: name ! { … }`.
                if kw.kind == Kind::Ident && self.looks_like_macro_call() {
                    let mut name = kw.text.clone();
                    while self.peek_text(1) == "::" {
                        self.pos += 2;
                        name = self.peek_text(0).to_string();
                    }
                    if self.peek_text(1) != "!" {
                        return None;
                    }
                    self.pos += 2;
                    let body = self.consume_macro_group()?;
                    if self.peek_text(0) == ";" {
                        self.pos += 1;
                    }
                    return finish(self, ItemKind::MacroCall, name, body, None, false, Vec::new());
                }
                None
            }
        }
    }

    /// Is the cursor at `ident (:: ident)* !` — a macro invocation?
    fn looks_like_macro_call(&self) -> bool {
        let mut off = 0;
        loop {
            match self.peek(off) {
                Some(t) if t.kind == Kind::Ident => {}
                _ => return false,
            }
            match self.peek_text(off + 1) {
                "!" => return true,
                "::" => off += 2,
                _ => return false,
            }
        }
    }

    /// The identifier at code offset `off`, if present.
    fn ident_at(&self, off: usize) -> Option<String> {
        match self.peek(off) {
            Some(t) if t.kind == Kind::Ident => Some(t.text.clone()),
            _ => None,
        }
    }

    /// From a position *at* `open_text`, returns the code position of the
    /// matching `close_text`.
    fn find_matching(&self, from: usize, open_text: &str, close_text: &str) -> Option<usize> {
        let mut depth = 0i64;
        let mut j = from;
        while j < self.code.len() {
            let t = &self.toks[self.code[j]].text;
            if t == open_text {
                depth += 1;
            } else if t == close_text {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            j += 1;
        }
        None
    }

    /// Scans a fn signature tail to its body: returns the body token
    /// range for `{ … }`, or an empty range for a `;` declaration.
    fn scan_to_body(&mut self) -> Option<(usize, usize)> {
        loop {
            match self.peek_text(0) {
                "" => return None,
                ";" => {
                    self.pos += 1;
                    return Some((0, 0));
                }
                "(" => {
                    let close = self.find_matching(self.pos, "(", ")")?;
                    self.pos = close + 1;
                }
                "[" => {
                    let close = self.find_matching(self.pos, "[", "]")?;
                    self.pos = close + 1;
                }
                "{" => {
                    let open = self.pos;
                    let close = self.find_matching(open, "{", "}")?;
                    let body = (self.code[open] + 1, self.code[close]);
                    self.pos = close + 1;
                    return Some(body);
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Skips to the `;` ending a value item, tracking brace/paren/
    /// bracket groups so initializer expressions (struct literals,
    /// blocks, closures) don't end the item early.
    fn skip_to_semicolon(&mut self) -> Option<()> {
        loop {
            match self.peek_text(0) {
                "" => return None,
                ";" => {
                    self.pos += 1;
                    return Some(());
                }
                "(" => self.pos = self.find_matching(self.pos, "(", ")")? + 1,
                "[" => self.pos = self.find_matching(self.pos, "[", "]")? + 1,
                "{" => self.pos = self.find_matching(self.pos, "{", "}")? + 1,
                _ => self.pos += 1,
            }
        }
    }

    /// Consumes a macro delimiter group `(…)`, `[…]`, or `{…}`,
    /// returning the inner token range.
    fn consume_macro_group(&mut self) -> Option<(usize, usize)> {
        let (open, close) = match self.peek_text(0) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return None,
        };
        let start = self.pos;
        let end = self.find_matching(start, open, close)?;
        let body = (self.code[start] + 1, self.code[end]);
        self.pos = end + 1;
        Some(body)
    }
}

/// Extracts the Self-type name and trait-impl flag from an impl header
/// (the tokens between `impl` and `{`). The Self type is the last path
/// segment before any generic arguments: after `for` when present
/// (trait impl), else the whole header.
fn impl_target(header: &[&Token]) -> (Option<String>, bool) {
    // Angle-bracket depth: the lexer merges `>>`, so track both widths.
    let mut angle = 0i64;
    let mut for_at: Option<usize> = None;
    for (i, t) in header.iter().enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "->" => {}
            "for" if angle <= 0 => for_at = Some(i),
            _ => {}
        }
    }
    let seg = match for_at {
        Some(i) => &header[i + 1..],
        None => header,
    };
    // Skip leading `impl<…>` generics in the no-`for` case, then take
    // the last ident of the leading path (stop at generic args).
    let mut angle = 0i64;
    let mut name = None;
    for t in seg {
        match t.text.as_str() {
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "where" if angle <= 0 => break,
            _ if t.kind == Kind::Ident && angle <= 0 => name = Some(t.text.clone()),
            _ => {}
        }
    }
    (name, for_at.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ItemTree {
        parse_items(&lex(src))
    }

    fn names(items: &[Item]) -> Vec<(&ItemKind, &str)> {
        items.iter().map(|i| (&i.kind, i.name.as_str())).collect()
    }

    #[test]
    fn parses_top_level_items() {
        let t = parse(
            "#![forbid(unsafe_code)]\nuse std::fs;\npub mod m;\npub fn f() { g(); }\n\
             struct S { a: u32 }\nenum E { A, B(u32) }\npub trait T { fn m(&self); }\n\
             const N: usize = 3;\nstatic mut G: u32 = 0;\ntype Alias = Vec<u32>;\n",
        );
        assert_eq!(t.skipped, 0);
        let kinds: Vec<ItemKind> = t.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Use,
                ItemKind::Mod,
                ItemKind::Fn,
                ItemKind::Struct,
                ItemKind::Enum,
                ItemKind::Trait,
                ItemKind::Const,
                ItemKind::Static,
                ItemKind::TypeAlias,
            ]
        );
        let f = &t.items[2];
        assert_eq!(f.name, "f");
        assert!(f.is_pub);
        assert!(f.body.1 > f.body.0, "fn body must be a nonempty range");
    }

    #[test]
    fn const_fn_is_a_fn_and_const_value_is_not() {
        let t = parse("pub const fn f() -> usize { 1 }\nconst X: Foo = Foo { a: 1 };\n");
        assert_eq!(t.skipped, 0);
        assert_eq!(names(&t.items), vec![(&ItemKind::Fn, "f"), (&ItemKind::Const, "X")]);
    }

    #[test]
    fn nested_mods_and_impls_recurse() {
        let t = parse(
            "mod outer {\n  mod inner { pub fn deep() {} }\n  impl Widget {\n    pub fn new() -> Widget { Widget }\n    fn helper(&self) {}\n  }\n  impl std::fmt::Display for Widget {\n    fn fmt(&self, f: &mut std::fmt::Formatter) -> std::fmt::Result { Ok(()) }\n  }\n}\n",
        );
        assert_eq!(t.skipped, 0);
        let outer = &t.items[0];
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(outer.children.len(), 3);
        let inner = &outer.children[0];
        assert_eq!(names(&inner.children), vec![(&ItemKind::Fn, "deep")]);
        let inherent = &outer.children[1];
        assert_eq!(inherent.impl_of.as_deref(), Some("Widget"));
        assert!(!inherent.impl_trait);
        assert_eq!(
            names(&inherent.children),
            vec![(&ItemKind::Fn, "new"), (&ItemKind::Fn, "helper")]
        );
        let trait_impl = &outer.children[2];
        assert_eq!(trait_impl.impl_of.as_deref(), Some("Widget"));
        assert!(trait_impl.impl_trait);
    }

    #[test]
    fn impl_targets_with_generics_and_paths() {
        let t = parse(
            "impl<T: Clone> Stack<T> { fn push(&mut self, t: T) {} }\n\
             impl FromStr for Engine { fn from_str(s: &str) -> R { todo() } }\n\
             impl<'a> Iterator for Iter<'a> { fn next(&mut self) -> Option<u32> { None } }\n",
        );
        assert_eq!(t.skipped, 0);
        assert_eq!(t.items[0].impl_of.as_deref(), Some("Stack"));
        assert!(!t.items[0].impl_trait);
        assert_eq!(t.items[1].impl_of.as_deref(), Some("Engine"));
        assert!(t.items[1].impl_trait);
        assert_eq!(t.items[2].impl_of.as_deref(), Some("Iter"));
        assert!(t.items[2].impl_trait);
    }

    #[test]
    fn attributes_and_test_marking() {
        let t = parse(
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn works() { assert!(true); }\n}\n\
             #[derive(Debug, Clone)]\npub struct S;\n",
        );
        assert_eq!(t.skipped, 0);
        let m = &t.items[0];
        assert!(m.is_test_marked());
        assert!(m.children[0].is_test_marked());
        assert_eq!(t.items[1].attrs, vec!["derive(Debug,Clone)"]);
        assert!(!t.items[1].is_test_marked());
    }

    #[test]
    fn restricted_visibility_is_not_pub() {
        let t = parse("pub(crate) fn a() {}\npub(super) fn b() {}\npub fn c() {}\nfn d() {}\n");
        assert_eq!(t.skipped, 0);
        let pubs: Vec<bool> = t.items.iter().map(|i| i.is_pub).collect();
        assert_eq!(pubs, vec![false, false, true, false]);
    }

    #[test]
    fn tuple_structs_where_clauses_and_trait_decls() {
        let t = parse(
            "pub struct Wrapper(pub u32);\n\
             pub fn generic<R, F>(n: usize, f: F) -> Vec<R> where R: Send, F: Fn(usize) -> R + Sync { loop {} }\n\
             trait T { fn declared(&self); fn provided(&self) { self.declared() } }\n",
        );
        assert_eq!(t.skipped, 0);
        assert_eq!(t.items[0].kind, ItemKind::Struct);
        assert_eq!(t.items[1].kind, ItemKind::Fn);
        assert!(t.items[1].body.1 > t.items[1].body.0);
        let tr = &t.items[2];
        assert_eq!(tr.children.len(), 2);
        assert_eq!(tr.children[0].body, (0, 0), "bodiless decl has empty body");
        assert!(tr.children[1].body.1 > tr.children[1].body.0);
    }

    #[test]
    fn macro_items_are_consumed() {
        let t = parse(
            "macro_rules! my { ($x:expr) => { $x + 1 }; }\n\
             thread_local! { static TL: u64 = 0; }\n\
             std::thread_local! { static TL2: u64 = 0; }\n",
        );
        assert_eq!(t.skipped, 0);
        assert_eq!(
            names(&t.items),
            vec![
                (&ItemKind::MacroDef, "my"),
                (&ItemKind::MacroCall, "thread_local"),
                (&ItemKind::MacroCall, "thread_local"),
            ]
        );
    }

    #[test]
    fn bodies_exclude_braces_and_cover_statements() {
        let src = "fn f() { let x = 1; g(x); }";
        let toks = lex(src);
        let t = parse_items(&toks);
        let (b0, b1) = t.items[0].body;
        let body_text: String = toks[b0..b1].iter().map(|t| t.text.clone()).collect::<Vec<_>>().join(" ");
        assert_eq!(body_text, "let x = 1 ; g ( x ) ;");
    }

    #[test]
    fn recovery_counts_skipped_tokens_and_continues() {
        // A stray token soup before a valid item: the item still parses.
        let t = parse(") ] } fn ok() {}");
        assert!(t.skipped >= 3);
        assert_eq!(names(&t.items), vec![(&ItemKind::Fn, "ok")]);
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        for src in ["fn f() {", "struct S {", "impl T {", "mod m {", "const X: T = {", "#[cfg("] {
            let t = parse(src);
            // Nothing to assert beyond termination; skipped may be > 0.
            let _ = t.items.len();
        }
    }

    #[test]
    fn walk_visits_depth_first_with_stack() {
        let t = parse("mod a { impl X { fn f() {} } }");
        let mut seen = Vec::new();
        t.walk(&mut |item, stack| {
            seen.push((item.kind, stack.len()));
        });
        assert_eq!(
            seen,
            vec![(ItemKind::Mod, 0), (ItemKind::Impl, 1), (ItemKind::Fn, 2)]
        );
    }
}
