//! Property suite for the SINR model: monotonicity in the receiver
//! thresholds and exact invariance under power-of-two rescaling of the
//! whole power domain.

use rim_phys::{
    coverage_vector_naive, sinr_interference_naive, sinr_interference_with, PhysModel, PhysParams,
    SinrTable,
};
use rim_geom::Point;
use rim_rng::prop::check;
use rim_rng::{prop_ensure, SmallRng};
use rim_udg::{NodeSet, Topology};

/// Random topology with random per-node powers and a generic link
/// budget (α = 3, no shadowing so both sides of each comparison see the
/// same effective powers).
fn gen_instance(rng: &mut SmallRng) -> (Topology, Vec<f64>, PhysParams) {
    let n = rng.gen_range(2usize..32);
    let side = rng.gen_range(0.5f64..4.0);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    for _ in 0..rng.gen_range(1usize..2 * n) {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && seen.insert((a.min(b), a.max(b))) {
            pairs.push((a, b));
        }
    }
    let t = Topology::from_pairs(NodeSet::new(pts), &pairs);
    let power_mw: Vec<f64> = (0..n).map(|_| 10f64.powf(rng.gen_range(-2.0f64..2.0))).collect();
    let params = PhysParams {
        theta_mw: 10f64.powf(rng.gen_range(-9.0f64..-3.0)),
        noise_mw: 10f64.powf(rng.gen_range(-13.0f64..-10.0)),
        sigma_db: 0.0,
        ..PhysParams::default()
    };
    (t, power_mw, params)
}

/// Raising the coverage threshold `θ` can only shrink coverage disks,
/// so no node's coverage count may increase.
#[test]
fn raising_theta_never_increases_coverage() {
    check(
        "raising_theta_never_increases_coverage",
        192,
        |rng| {
            let (t, p, params) = gen_instance(rng);
            let factor = 10f64.powf(rng.gen_range(0.0f64..3.0));
            (t, p, params, factor)
        },
        |(t, power_mw, params, factor)| {
            let lo = PhysModel::with_params(t, *params, power_mw);
            let hi_params = PhysParams { theta_mw: params.theta_mw * factor, ..*params };
            let hi = PhysModel::with_params(t, hi_params, power_mw);
            let cov_lo = coverage_vector_naive(&lo);
            let cov_hi = coverage_vector_naive(&hi);
            for (v, (&c_hi, &c_lo)) in cov_hi.iter().zip(&cov_lo).enumerate() {
                prop_ensure!(
                    c_hi <= c_lo,
                    "coverage at {v} grew from {c_lo} to {c_hi} when θ rose by ×{factor}"
                );
            }
            Ok(())
        },
    );
}

/// Raising the noise floor can only shrink the interference cutoff
/// disks, so every per-node interference sum can only lose (non-
/// negative) addends.
#[test]
fn raising_noise_floor_never_increases_interference() {
    check(
        "raising_noise_floor_never_increases_interference",
        192,
        |rng| {
            let (t, p, params) = gen_instance(rng);
            let factor = 10f64.powf(rng.gen_range(0.0f64..4.0));
            (t, p, params, factor)
        },
        |(t, power_mw, params, factor)| {
            let lo = PhysModel::with_params(t, *params, power_mw);
            let hi_params = PhysParams { noise_mw: params.noise_mw * factor, ..*params };
            let hi = PhysModel::with_params(t, hi_params, power_mw);
            let sums_lo = sinr_interference_naive(&lo);
            let sums_hi = sinr_interference_naive(&hi);
            for (v, (&s_hi, &s_lo)) in sums_hi.iter().zip(&sums_lo).enumerate() {
                prop_ensure!(
                    s_hi <= s_lo,
                    "interference at {v} grew from {s_lo} to {s_hi} mW when N rose by ×{factor}"
                );
            }
            Ok(())
        },
    );
}

/// Raising the SINR acceptance threshold `β` (or the noise floor) can
/// only turn received frames into lost ones, never the reverse.
#[test]
fn raising_beta_never_accepts_new_frames() {
    check(
        "raising_beta_never_accepts_new_frames",
        192,
        |rng| {
            let (t, p, params) = gen_instance(rng);
            let factor = 10f64.powf(rng.gen_range(0.0f64..2.0));
            let pattern: u64 = rng.gen_range(0..u64::MAX);
            (t, p, params, factor, pattern)
        },
        |(t, power_mw, params, factor, pattern)| {
            let n = t.num_nodes();
            let lo = PhysModel::with_params(t, *params, power_mw);
            let hi_params = PhysParams { beta: params.beta * factor, ..*params };
            let hi = PhysModel::with_params(t, hi_params, power_mw);
            let table_lo = SinrTable::of(&lo);
            let table_hi = SinrTable::of(&hi);
            let is_tx: Vec<bool> = (0..n).map(|i| pattern >> (i % 64) & 1 == 1).collect();
            for u in 0..n {
                for v in 0..n {
                    if u == v {
                        continue;
                    }
                    prop_ensure!(
                        !table_hi.received(&hi, u, v, &is_tx)
                            || table_lo.received(&lo, u, v, &is_tx),
                        "frame {u}->{v} received under β×{factor} but lost under β"
                    );
                }
            }
            Ok(())
        },
    );
}

/// Scaling every power-domain quantity (transmit powers, θ, noise) by
/// the same power of two is float-exact, so coverage counts are
/// identical and interference sums scale *bitwise* exactly.
#[test]
fn power_of_two_rescaling_is_exact() {
    check(
        "power_of_two_rescaling_is_exact",
        192,
        |rng| {
            let (t, p, params) = gen_instance(rng);
            let k = rng.gen_range(0u32..81) as i32 - 40; // 2^-40 .. 2^40
            (t, p, params, k)
        },
        |(t, power_mw, params, k)| {
            let scale = 2f64.powi(*k);
            let base = PhysModel::with_params(t, *params, power_mw);
            let scaled_params = PhysParams {
                theta_mw: params.theta_mw * scale,
                noise_mw: params.noise_mw * scale,
                ..*params
            };
            let scaled_power: Vec<f64> = power_mw.iter().map(|&p| p * scale).collect();
            let scaled = PhysModel::with_params(t, scaled_params, &scaled_power);
            prop_ensure!(
                coverage_vector_naive(&base) == coverage_vector_naive(&scaled),
                "coverage counts changed under a 2^{k} rescale"
            );
            let sums = sinr_interference_with(&base, false);
            let scaled_sums = sinr_interference_with(&scaled, true);
            for (v, (&s, &ss)) in sums.iter().zip(&scaled_sums).enumerate() {
                prop_ensure!(
                    // rim-lint: allow(float-eq) — comparing u64 bit patterns; exactness is the property
                    (s * scale).to_bits() == ss.to_bits(),
                    "sum at {v} not exactly rescaled: {s} * 2^{k} != {ss}"
                );
            }
            Ok(())
        },
    );
}
