//! Physical-layer (SINR) receiver model.
//!
//! The paper's interference measure lives in a boolean disk
//! abstraction: node `u` covers everything within its transmission
//! radius `r_u` and nothing beyond. This crate provides the standard
//! physical-layer refinement of that model — per-node transmit powers,
//! log-distance path loss, optional seeded log-normal shadowing, and
//! threshold-based coverage/SINR reception — engineered so that the
//! disk model is recovered **exactly** (bit-for-bit, not approximately)
//! in the zero-shadowing limit:
//!
//! * [`PhysModel::disk_equivalent`] instantiates the model with
//!   `α = 2`, `θ = 1 mW`, no shadowing, and `p_u = r_u²`, so the
//!   coverage radius `ρ_u = √(p_u/θ) = √(r_u·r_u)` equals `r_u`
//!   exactly under IEEE-754 round-to-nearest (a square root of an
//!   exact square rounds back to its root). The physical coverage
//!   counts then equal the paper's interference vector on every input
//!   — a differential-tested theorem, see `DESIGN.md` §11.
//! * [`sinr_interference_naive`] is the permanent `O(n²)` SINR oracle;
//!   [`sinr_interference_indexed`] reuses `rim_geom::SpatialIndex`
//!   with a conservative range cutoff derived from the noise floor and
//!   produces bit-identical sums (same closed predicate, same
//!   ascending-sender accumulation order per receiver).
//! * [`SinrTable::received`] generalizes the simulator's boolean
//!   `Coverage::received` to SINR-threshold reception.
//!
//! All randomness (shadowing) is drawn from [`rim_rng::SmallRng`]
//! under an explicit seed — never from the wall clock — so every model
//! build is bit-reproducible.

#![forbid(unsafe_code)]

pub mod model;
pub mod pathloss;
pub mod sinr;

pub use model::{PhysModel, PhysParams};
pub use pathloss::{coverage_range, db_to_linear, dbm_to_mw, mw_to_dbm, standard_normal};
pub use sinr::{
    build_phys_index, coverage_vector_indexed, coverage_vector_naive,
    physical_interference_vector_with, sinr_interference_indexed, sinr_interference_naive,
    sinr_interference_with, SinrTable,
};
