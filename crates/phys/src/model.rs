//! The physical model: parameters, per-node derived state, and the
//! disk-equivalent construction.

use crate::pathloss::{coverage_range, db_to_linear, standard_normal};
use rim_geom::Point;
use rim_rng::SmallRng;
use rim_udg::Topology;

/// Parameters of the log-distance SINR model. All power-like fields
/// are **linear milliwatts** (`_mw`); log-domain figures carry `_db`.
/// Build one from radio-style dBm/dB figures with
/// [`PhysParams::from_link_budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysParams {
    /// Path-loss exponent `α` (2 = free space, 3–4 = indoor/urban).
    pub alpha: f64,
    /// Near-field clamp: received power at distances below this is
    /// evaluated at this distance, keeping `p/d^α` finite for
    /// coincident nodes.
    pub near_field: f64,
    /// Coverage threshold `θ` in mW: `u` covers `v` iff the received
    /// power meets it — the step function the disk model takes to its
    /// `r_u` limit.
    pub theta_mw: f64,
    /// Noise floor `N` in mW. Also the interference cutoff level: a
    /// transmitter whose signal arrives below the floor is absorbed
    /// into it rather than summed (see `DESIGN.md` §11).
    pub noise_mw: f64,
    /// SINR acceptance threshold `β` (linear ratio): a frame is
    /// received iff `S ≥ β·(N + I)`.
    pub beta: f64,
    /// Log-normal shadowing spread `σ` in dB; 0 disables shadowing.
    pub sigma_db: f64,
    /// Seed of the per-node shadowing draws ([`rim_rng::SmallRng`],
    /// never the wall clock).
    pub shadow_seed: u64,
}

impl Default for PhysParams {
    /// An indoor-flavoured default: `α = 3`, −85 dBm sensitivity,
    /// −100 dBm noise floor, 10 dB SINR margin, no shadowing.
    fn default() -> Self {
        PhysParams {
            alpha: 3.0,
            near_field: 1e-3,
            theta_mw: crate::pathloss::dbm_to_mw(-85.0),
            noise_mw: crate::pathloss::dbm_to_mw(-100.0),
            beta: db_to_linear(10.0),
            sigma_db: 0.0,
            shadow_seed: 0,
        }
    }
}

impl PhysParams {
    /// Builds parameters from radio-style log-domain figures:
    /// sensitivity and noise floor in dBm, SINR threshold in dB.
    pub fn from_link_budget(
        alpha: f64,
        theta_dbm: f64,
        noise_dbm: f64,
        beta_db: f64,
        sigma_db: f64,
        shadow_seed: u64,
    ) -> PhysParams {
        PhysParams {
            alpha,
            theta_mw: crate::pathloss::dbm_to_mw(theta_dbm),
            noise_mw: crate::pathloss::dbm_to_mw(noise_dbm),
            beta: db_to_linear(beta_db),
            sigma_db,
            shadow_seed,
            ..PhysParams::default()
        }
    }
}

/// A topology instantiated under [`PhysParams`]: per-node effective
/// powers with shadowing folded in, and the two derived radii every
/// kernel shares — the coverage radius `ρ_u` and the noise-floor
/// cutoff `c_u ≥ ρ_u`.
///
/// Transmit gating mirrors the disk kernels: a node transmits iff it
/// has at least one neighbor, regardless of its power (a zero-length
/// link between coincident nodes still carries traffic).
#[derive(Debug, Clone)]
pub struct PhysModel {
    params: PhysParams,
    points: Vec<Point>,
    transmits: Vec<bool>,
    power_mw: Vec<f64>,
    rho: Vec<f64>,
    cutoff: Vec<f64>,
}

impl PhysModel {
    /// Instantiates the model with explicit per-node transmit powers
    /// (mW). With `sigma_db > 0`, each node's power is scaled by an
    /// independent log-normal factor `10^(X_u/10)`, `X_u ~ N(0, σ²)`,
    /// drawn from a [`SmallRng`] seeded with `shadow_seed` — one draw
    /// per node in index order, so the same seed always yields the
    /// same fading landscape.
    pub fn with_params(t: &Topology, params: PhysParams, tx_power_mw: &[f64]) -> PhysModel {
        assert_eq!(t.num_nodes(), tx_power_mw.len(), "one transmit power per node");
        let mut rng = SmallRng::seed_from_u64(params.shadow_seed);
        let effective_mw: Vec<f64> = tx_power_mw
            .iter()
            .map(|&p_mw| {
                assert!(p_mw >= 0.0 && p_mw.is_finite(), "powers must be finite and >= 0");
                if params.sigma_db > 0.0 {
                    p_mw * db_to_linear(params.sigma_db * standard_normal(&mut rng))
                } else {
                    p_mw
                }
            })
            .collect();
        PhysModel::assemble(t, params, effective_mw)
    }

    /// The disk-limit instantiation (`DESIGN.md` §11): `α = 2`,
    /// `θ = 1 mW`, zero shadowing, and `p_u = r_u²`. Then
    /// `ρ_u = √(p_u/θ) = √(r_u·r_u) = r_u` **exactly** (IEEE-754
    /// round-to-nearest: the square root of an exact square rounds
    /// back to its root, and dividing by 1.0 is the identity), so
    /// physical coverage coincides bit-for-bit with the paper's disk
    /// coverage — the contract the differential layer pins.
    pub fn disk_equivalent(t: &Topology) -> PhysModel {
        let params = PhysParams {
            alpha: 2.0,
            near_field: 1e-6,
            theta_mw: 1.0,
            noise_mw: 1e-12,
            beta: 1.0,
            sigma_db: 0.0,
            shadow_seed: 0,
        };
        let power_mw: Vec<f64> = t.radii().iter().map(|&r| r * r).collect();
        PhysModel::assemble(t, params, power_mw)
    }

    /// Shared tail of the constructors: derive gating and the two
    /// radii. `ρ_u` solves `p_u/d^α = θ`; the cutoff solves the same
    /// equation at the noise floor and is clamped to at least `ρ_u` so
    /// the coverage disk is always inside the cutoff disk.
    fn assemble(t: &Topology, params: PhysParams, power_mw: Vec<f64>) -> PhysModel {
        let n = t.num_nodes();
        let mut transmits = Vec::with_capacity(n);
        let mut rho = Vec::with_capacity(n);
        let mut cutoff = Vec::with_capacity(n);
        for (u, &p_mw) in power_mw.iter().enumerate() {
            transmits.push(t.graph().degree(u) > 0);
            let rho_u = coverage_range(p_mw, params.theta_mw, params.alpha);
            rho.push(rho_u);
            cutoff.push(rho_u.max(coverage_range(p_mw, params.noise_mw, params.alpha)));
        }
        PhysModel {
            params,
            points: t.nodes().points().to_vec(),
            transmits,
            power_mw,
            rho,
            cutoff,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` for the empty node set.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The model parameters.
    pub fn params(&self) -> &PhysParams {
        &self.params
    }

    /// Position of node `u`.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn pos(&self, u: usize) -> Point {
        self.points[u]
    }

    /// Whether node `u` transmits (has at least one neighbor).
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn transmits(&self, u: usize) -> bool {
        self.transmits[u]
    }

    /// Effective transmit power of `u` in mW (shadowing folded in).
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn power_mw(&self, u: usize) -> f64 {
        self.power_mw[u]
    }

    /// Coverage radius `ρ_u`: the largest distance at which `u`'s
    /// signal still meets the coverage threshold `θ`.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn coverage_radius(&self, u: usize) -> f64 {
        self.rho[u]
    }

    /// Interference cutoff `c_u ≥ ρ_u`: beyond it `u`'s signal falls
    /// below the noise floor and is absorbed into it.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn cutoff(&self, u: usize) -> f64 {
        self.cutoff[u]
    }

    /// Received power (mW) at distance `d` from transmitter `u` under
    /// the log-distance law, with the near-field clamp applied.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn rx_power_mw(&self, u: usize, d: f64) -> f64 {
        let clamped = d.max(self.params.near_field);
        // rim-lint: allow(float-eq) — same exact-α fast path as coverage_range
        let loss = if self.params.alpha == 2.0 {
            clamped * clamped
        } else {
            clamped.powf(self.params.alpha)
        };
        self.power_mw[u] / loss
    }

    /// Received power (mW) at node `v` from transmitter `u`.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn link_rx_mw(&self, u: usize, v: usize) -> f64 {
        self.rx_power_mw(u, self.points[u].dist(&self.points[v]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_udg::NodeSet;

    fn chain() -> Topology {
        Topology::from_pairs(
            NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]),
            &[(0, 1), (1, 2), (2, 3)],
        )
    }

    #[test]
    fn disk_equivalent_reproduces_the_radii_exactly() {
        let t = chain();
        let m = PhysModel::disk_equivalent(&t);
        for u in 0..t.num_nodes() {
            assert_eq!(m.coverage_radius(u).to_bits(), t.radius(u).to_bits(), "u={u}");
            assert!(m.cutoff(u) >= m.coverage_radius(u));
            assert_eq!(m.transmits(u), t.graph().degree(u) > 0);
        }
    }

    #[test]
    fn shadowing_is_seed_deterministic_and_sigma_zero_is_identity() {
        let t = chain();
        let powers_mw = vec![1.0; 4];
        let mut params = PhysParams { sigma_db: 6.0, shadow_seed: 11, ..PhysParams::default() };
        let a = PhysModel::with_params(&t, params, &powers_mw);
        let b = PhysModel::with_params(&t, params, &powers_mw);
        for u in 0..4 {
            assert_eq!(a.power_mw(u).to_bits(), b.power_mw(u).to_bits(), "same seed");
        }
        params.shadow_seed = 12;
        let c = PhysModel::with_params(&t, params, &powers_mw);
        assert!(
            (0..4).any(|u| a.power_mw(u).to_bits() != c.power_mw(u).to_bits()),
            "different seed must move some power"
        );
        params.sigma_db = 0.0;
        let plain = PhysModel::with_params(&t, params, &powers_mw);
        for u in 0..4 {
            assert_eq!(plain.power_mw(u).to_bits(), 1.0f64.to_bits(), "σ=0 leaves powers");
        }
    }

    #[test]
    fn near_field_keeps_coincident_nodes_finite() {
        let ns = NodeSet::new(vec![Point::ORIGIN, Point::ORIGIN]);
        let t = Topology::from_pairs(ns, &[(0, 1)]);
        let m = PhysModel::with_params(&t, PhysParams::default(), &[1.0, 1.0]);
        assert!(m.link_rx_mw(0, 1).is_finite());
        assert!(m.link_rx_mw(0, 1) > 0.0);
    }
}
