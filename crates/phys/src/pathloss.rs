//! dB/linear conversions, the log-distance path-loss law, and the
//! Gaussian sampler behind log-normal shadowing.
//!
//! Naming convention (machine-enforced by the `rim-xtask` units
//! lattice): log-domain quantities carry a `_db`/`_dbm` suffix, linear
//! powers a `_mw` suffix. The two domains must never meet in an
//! addition or comparison without an explicit conversion through
//! [`dbm_to_mw`] / [`db_to_linear`] — adding dBm to mW is the classic
//! link-budget bug this convention exists to prevent.

use rim_rng::SmallRng;

/// Linear power in milliwatts of a dBm level: `10^(dbm/10)`.
pub fn dbm_to_mw(level_dbm: f64) -> f64 {
    10f64.powf(level_dbm / 10.0)
}

/// dBm level of a linear milliwatt power. Returns `-inf` for zero
/// power (a silent node); callers that print levels gate on that.
pub fn mw_to_dbm(power_mw: f64) -> f64 {
    10.0 * power_mw.log10()
}

/// Dimensionless linear ratio of a dB figure: `10^(db/10)`.
pub fn db_to_linear(gain_db: f64) -> f64 {
    10f64.powf(gain_db / 10.0)
}

/// Largest distance at which a transmit power of `power_mw` still
/// meets `threshold_mw` under the log-distance law with exponent
/// `alpha`: the `d` solving `power_mw / d^α = threshold_mw`, i.e.
/// `(power_mw/threshold_mw)^(1/α)`.
///
/// The `α = 2` case is computed as a square root rather than a generic
/// `powf`: IEEE-754 round-to-nearest square roots of exact squares
/// round back to their root, which is precisely what makes the
/// disk-equivalent model (`p_u = r_u²`, `θ = 1`) reproduce the disk
/// radius `r_u` **exactly** — see `DESIGN.md` §11.
pub fn coverage_range(power_mw: f64, threshold_mw: f64, alpha: f64) -> f64 {
    let ratio = power_mw / threshold_mw;
    // rim-lint: allow(float-eq) — exact-α fast path: α is configuration, not a computed float, and the sqrt form carries the disk-limit exactness argument
    if alpha == 2.0 {
        ratio.sqrt()
    } else {
        ratio.powf(alpha.recip())
    }
}

/// One standard-normal draw (Box–Muller, cosine branch).
///
/// `u1` is reflected to `(0, 1]` before the logarithm so the argument
/// is never zero; the draw consumes exactly two generator outputs, so
/// sequences of draws are seed-reproducible position by position.
pub fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen();
    let u2: f64 = rng.gen();
    let radial = (-2.0 * (1.0 - u1).ln()).sqrt();
    radial * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_roundtrips_through_mw() {
        for level_dbm in [-100.0, -85.0, -30.0, 0.0, 10.0, 20.0] {
            let back_dbm = mw_to_dbm(dbm_to_mw(level_dbm));
            assert!((back_dbm - level_dbm).abs() < 1e-9, "{level_dbm} -> {back_dbm}");
        }
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12, "0 dBm is 1 mW");
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-9, "10 dBm is 10 mW");
        assert!(mw_to_dbm(0.0) == f64::NEG_INFINITY); // rim-lint: allow(float-eq) — exact IEEE semantics of log10(0) under test
    }

    #[test]
    fn coverage_range_inverts_the_path_loss() {
        // d = coverage_range(p, θ, α) must satisfy p/d^α ≈ θ.
        for (p_mw, theta_mw, alpha) in [(4.0, 1.0, 2.0), (10.0, 0.5, 3.0), (0.09, 1.0, 2.0)] {
            let d = coverage_range(p_mw, theta_mw, alpha);
            let rx_mw = p_mw / d.powf(alpha);
            assert!((rx_mw - theta_mw).abs() < 1e-9 * theta_mw, "{p_mw}/{theta_mw}/{alpha}");
        }
    }

    #[test]
    fn alpha_two_range_of_a_square_is_exact() {
        // The disk-limit identity: √(r·r) = r bit-for-bit, including
        // across many magnitudes (the exp-chain stress family).
        for i in -60..=60 {
            let r = 1.37f64 * 2f64.powi(i);
            let rho = coverage_range(r * r, 1.0, 2.0);
            assert_eq!(rho.to_bits(), r.to_bits(), "r = {r}");
        }
    }

    #[test]
    fn standard_normal_moments_and_determinism() {
        let mut rng = SmallRng::seed_from_u64(2005);
        let n = 50_000;
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            assert!(x.is_finite());
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
        // Same seed, same stream.
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a).to_bits(), standard_normal(&mut b).to_bits());
        }
    }
}
