//! Coverage and SINR kernels over a [`PhysModel`], plus the
//! precomputed [`SinrTable`] the simulator's reception check uses.
//!
//! Exactness contract (mirrors `rim-core::receiver`): the naive and
//! indexed kernels evaluate the *same closed predicate at distance
//! level* (`dist(u,v) <= ρ_u`, resp. `<= c_u`) and accumulate per
//! receiver in the *same ascending-sender order*, so their outputs are
//! bit-identical — for the integer coverage counts trivially, and for
//! the floating-point SINR sums because the additions into each
//! `out[v]` slot happen in the identical sequence with identical
//! addends.

use crate::model::PhysModel;
use rim_geom::SpatialIndex;

/// Builds the spatial index the physical kernels scatter over: the
/// median positive cutoff radius makes a good cell hint, same
/// heuristic as the disk engines' `build_index`.
// rim-lint: allow(panic-freedom) — the median index is guarded by the is_empty branch
pub fn build_phys_index(m: &PhysModel) -> SpatialIndex {
    let _span = rim_obs::span("phys/index_build");
    let mut cutoffs: Vec<f64> = (0..m.len()).map(|u| m.cutoff(u)).filter(|&c| c > 0.0).collect();
    let hint = if cutoffs.is_empty() {
        1.0 // all-silent model: nothing will be queried, any shape works
    } else {
        cutoffs.sort_unstable_by(f64::total_cmp);
        cutoffs[cutoffs.len() / 2]
    };
    let points: Vec<rim_geom::Point> = (0..m.len()).map(|u| m.pos(u)).collect();
    SpatialIndex::build(&points, hint)
}

/// Physical coverage counts, reference `O(n²)` implementation:
/// `out[v] = #{u != v : u transmits and dist(u,v) <= ρ_u}` — the
/// physical generalization of `interference_vector_naive`.
pub fn coverage_vector_naive(m: &PhysModel) -> Vec<usize> {
    let n = m.len();
    let mut out = vec![0usize; n];
    for u in 0..n {
        if !m.transmits(u) {
            continue; // silent nodes cover nothing
        }
        let rho_u = m.coverage_radius(u);
        let pu = m.pos(u);
        for (v, iv) in out.iter_mut().enumerate() {
            if v != u && pu.dist(&m.pos(v)) <= rho_u {
                *iv += 1;
            }
        }
    }
    out
}

/// Physical coverage counts via one closed-disk query of radius `ρ_u`
/// per transmitter — same predicate at distance level as the naive
/// kernel, so the counts agree exactly.
pub fn coverage_vector_indexed(m: &PhysModel, index: &SpatialIndex) -> Vec<usize> {
    let n = m.len();
    let mut out = vec![0usize; n];
    let mut queries = 0u64;
    for u in 0..n {
        if !m.transmits(u) {
            continue;
        }
        queries += 1;
        index.for_each_in_disk(m.pos(u), m.coverage_radius(u), |v| {
            if v != u {
                out[v] += 1;
            }
        });
    }
    rim_obs::counter_add("phys.coverage_queries", queries);
    out
}

/// Physical coverage counts via an explicit engine choice; the two
/// engines agree bit-for-bit (differential-tested).
pub fn physical_interference_vector_with(m: &PhysModel, indexed: bool) -> Vec<usize> {
    let _span = rim_obs::span(if indexed { "phys/coverage_indexed" } else { "phys/coverage_naive" });
    if indexed {
        coverage_vector_indexed(m, &build_phys_index(m))
    } else {
        coverage_vector_naive(m)
    }
}

/// Per-node interference power (mW), reference `O(n²)` implementation:
/// `out[v] = Σ p_rx(u → v)` over transmitters `u != v` whose signal at
/// `v` is above the noise floor (`dist(u,v) <= c_u`).
///
/// This is the **permanent SINR oracle** (registered in the
/// `naive-oracle-retained` audit): every faster SINR kernel is
/// differential-tested against it, bit-for-bit.
pub fn sinr_interference_naive(m: &PhysModel) -> Vec<f64> {
    let n = m.len();
    let mut out = vec![0.0f64; n];
    for u in 0..n {
        if !m.transmits(u) {
            continue;
        }
        let cutoff_u = m.cutoff(u);
        let pu = m.pos(u);
        for (v, acc) in out.iter_mut().enumerate() {
            if v == u {
                continue;
            }
            let d = pu.dist(&m.pos(v));
            if d <= cutoff_u {
                *acc += m.rx_power_mw(u, d);
            }
        }
    }
    out
}

/// Per-node interference power via one closed-disk query of the
/// conservative cutoff radius `c_u` per transmitter.
///
/// Correctness of the cutoff: `c_u` is *model semantics*, not an
/// approximation knob — both kernels drop exactly the contributions
/// below the noise floor, so the indexed sums equal the naive oracle's
/// bit-for-bit (identical addends, identical per-receiver order; see
/// the module docs and `DESIGN.md` §11).
pub fn sinr_interference_indexed(m: &PhysModel, index: &SpatialIndex) -> Vec<f64> {
    let n = m.len();
    let mut out = vec![0.0f64; n];
    let mut queries = 0u64;
    for u in 0..n {
        if !m.transmits(u) {
            continue;
        }
        queries += 1;
        let pu = m.pos(u);
        index.for_each_in_disk(pu, m.cutoff(u), |v| {
            if v != u {
                out[v] += m.rx_power_mw(u, pu.dist(&m.pos(v)));
            }
        });
    }
    rim_obs::counter_add("phys.cutoff_queries", queries);
    out
}

/// Per-node interference power via an explicit engine choice; the two
/// engines agree bit-for-bit (differential-tested).
pub fn sinr_interference_with(m: &PhysModel, indexed: bool) -> Vec<f64> {
    let _span = rim_obs::span(if indexed { "phys/sinr_indexed" } else { "phys/sinr_naive" });
    if indexed {
        sinr_interference_indexed(m, &build_phys_index(m))
    } else {
        sinr_interference_naive(m)
    }
}

/// Precomputed SINR reception state: for each receiver, every
/// transmitter whose signal clears the noise floor, with its received
/// power — the physical analogue of the simulator's `Coverage` lists.
#[derive(Debug, Clone)]
pub struct SinrTable {
    /// `sources[v]` = ascending-`u` list of `(u, p_rx(u → v) in mW)`
    /// over transmitters `u != v` with `dist(u,v) <= c_u`.
    sources: Vec<Vec<(u32, f64)>>,
    noise_mw: f64,
    beta: f64,
}

impl SinrTable {
    /// Builds the reception table with one cutoff-disk query per
    /// transmitter (output-sensitive, like `Coverage::of`).
    pub fn of(m: &PhysModel) -> SinrTable {
        let _span = rim_obs::span("phys/sinr_table");
        let n = m.len();
        let index = build_phys_index(m);
        let mut sources: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for u in 0..n {
            if !m.transmits(u) {
                continue;
            }
            let pu = m.pos(u);
            index.for_each_in_disk(pu, m.cutoff(u), |v| {
                if v != u {
                    sources[v].push((u as u32, m.rx_power_mw(u, pu.dist(&m.pos(v)))));
                }
            });
        }
        SinrTable { sources, noise_mw: m.params().noise_mw, beta: m.params().beta }
    }

    /// The interference sources recorded for receiver `v` (ascending
    /// sender id, received power in mW).
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn sources(&self, v: usize) -> &[(u32, f64)] {
        &self.sources[v]
    }

    /// Decides whether a frame `u → v` transmitted in a slot is
    /// received, given the set of nodes transmitting in that slot —
    /// the SINR generalization of the boolean `Coverage::received`.
    ///
    /// Reception fails iff `v` itself transmits (half duplex) or the
    /// signal misses the SINR threshold: `S < β·(N + I)`, where `I`
    /// sums the recorded powers of every *other* concurrent
    /// transmitter. The comparison is multiplied out rather than
    /// divided so a zero denominator never arises.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn received(&self, m: &PhysModel, u: usize, v: usize, is_tx: &[bool]) -> bool {
        if is_tx[v] {
            return false;
        }
        let signal_mw = m.link_rx_mw(u, v);
        let mut interference_mw = 0.0f64;
        for &(w, p_mw) in &self.sources[v] {
            if w as usize != u && is_tx[w as usize] {
                interference_mw += p_mw;
            }
        }
        signal_mw >= self.beta * (self.noise_mw + interference_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PhysModel, PhysParams};
    use rim_udg::{NodeSet, Topology};

    fn chain_model() -> PhysModel {
        let t = Topology::from_pairs(
            NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]),
            &[(0, 1), (1, 2), (2, 3)],
        );
        PhysModel::disk_equivalent(&t)
    }

    #[test]
    fn indexed_kernels_match_naive_bitwise() {
        let m = chain_model();
        let index = build_phys_index(&m);
        assert_eq!(coverage_vector_naive(&m), coverage_vector_indexed(&m, &index));
        let naive: Vec<u64> = sinr_interference_naive(&m).iter().map(|x| x.to_bits()).collect();
        let fast: Vec<u64> =
            sinr_interference_indexed(&m, &index).iter().map(|x| x.to_bits()).collect();
        assert_eq!(naive, fast);
    }

    #[test]
    fn dispatch_agrees_with_kernels() {
        let m = chain_model();
        assert_eq!(physical_interference_vector_with(&m, true), coverage_vector_naive(&m));
        assert_eq!(physical_interference_vector_with(&m, false), coverage_vector_naive(&m));
        let with: Vec<u64> =
            sinr_interference_with(&m, true).iter().map(|x| x.to_bits()).collect();
        let naive: Vec<u64> = sinr_interference_naive(&m).iter().map(|x| x.to_bits()).collect();
        assert_eq!(with, naive);
    }

    #[test]
    fn silent_nodes_contribute_nothing() {
        let t = Topology::empty(NodeSet::on_line(&[0.0, 0.5, 1.0]));
        let m = PhysModel::with_params(&t, PhysParams::default(), &[1.0, 1.0, 1.0]);
        assert_eq!(coverage_vector_naive(&m), vec![0, 0, 0]);
        assert!(sinr_interference_naive(&m).iter().all(|&p_mw| p_mw == 0.0)); // rim-lint: allow(float-eq) — exact zero: no addend was ever summed
    }

    #[test]
    fn lone_transmission_is_received_and_interference_destroys_it() {
        let m = chain_model();
        let table = SinrTable::of(&m);
        let mut tx = vec![false; 4];
        tx[0] = true;
        assert!(table.received(&m, 0, 1, &tx), "lone frame clears β");
        tx[2] = true;
        assert!(!table.received(&m, 0, 1, &tx), "equal-power coverer at node 1 destroys it");
        assert!(!table.received(&m, 0, 0, &tx), "half duplex: a transmitter cannot listen");
    }
}
