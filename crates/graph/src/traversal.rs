//! Breadth/depth-first traversal, components and connectivity.

use crate::adjacency::AdjacencyList;

/// Vertices reachable from `start` in BFS order.
pub fn bfs_order(g: &AdjacencyList, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Vertices reachable from `start` in iterative DFS (preorder).
pub fn dfs_order(g: &AdjacencyList, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.num_vertices()];
    let mut stack = vec![start];
    let mut order = Vec::new();
    while let Some(u) = stack.pop() {
        if visited[u] {
            continue;
        }
        visited[u] = true;
        order.push(u);
        // Push in reverse so smaller neighbors are visited first.
        let mut ns: Vec<usize> = g.neighbors(u).collect();
        ns.reverse();
        for v in ns {
            if !visited[v] {
                stack.push(v);
            }
        }
    }
    order
}

/// Component label for every vertex; labels are `0..k` in order of first
/// appearance (vertex 0 is always in component 0 when `n > 0`).
pub fn components(g: &AdjacencyList) -> Vec<usize> {
    let n = g.num_vertices();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        label[s] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components (0 for the empty graph).
pub fn num_components(g: &AdjacencyList) -> usize {
    components(g).iter().max().map_or(0, |m| m + 1)
}

/// Returns `true` if the graph is connected. The empty graph and the
/// single-vertex graph are connected by convention.
pub fn is_connected(g: &AdjacencyList) -> bool {
    num_components(g) <= 1
}

/// Returns `true` if the subgraph `sub` connects exactly what `reference`
/// connects: two vertices are in the same `sub`-component iff they are in
/// the same `reference`-component.
///
/// This is the *connectivity preservation* requirement of the paper: a
/// topology-control output must keep every connected component of the UDG
/// connected (it cannot create new connections since it is a subgraph, but
/// we verify both directions to catch constructor bugs).
pub fn preserves_connectivity(reference: &AdjacencyList, sub: &AdjacencyList) -> bool {
    assert_eq!(reference.num_vertices(), sub.num_vertices());
    let a = components(reference);
    let b = components(sub);
    // Same-component in reference must imply same-component in sub and
    // vice versa; since labels are normalized by first appearance, the two
    // labelings must be identical as partitions.
    let n = a.len();
    let mut map_ab = vec![usize::MAX; n];
    let mut map_ba = vec![usize::MAX; n];
    for i in 0..n {
        let (x, y) = (a[i], b[i]);
        if map_ab[x] == usize::MAX {
            map_ab[x] = y;
        } else if map_ab[x] != y {
            return false;
        }
        if map_ba[y] == usize::MAX {
            map_ba[y] = x;
        } else if map_ba[y] != x {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn path(n: usize) -> AdjacencyList {
        let edges: Vec<Edge> = (1..n).map(|i| Edge::new(i - 1, i, 1.0)).collect();
        AdjacencyList::from_edges(n, &edges)
    }

    #[test]
    fn bfs_visits_in_level_order() {
        // Star with center 0.
        let g = AdjacencyList::from_edges(
            4,
            &[Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0), Edge::new(0, 3, 1.0)],
        );
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_order(&g, 2), vec![2, 0, 1, 3]);
    }

    #[test]
    fn dfs_preorder_on_path() {
        let g = path(5);
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(dfs_order(&g, 2), vec![2, 1, 0, 3, 4]);
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = path(4); // 0-1-2-3
        assert!(is_connected(&g));
        assert_eq!(num_components(&g), 1);
        g.remove_edge(1, 2);
        assert!(!is_connected(&g));
        assert_eq!(components(&g), vec![0, 0, 1, 1]);
        assert_eq!(num_components(&g), 2);
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(is_connected(&AdjacencyList::new(0)));
        assert!(is_connected(&AdjacencyList::new(1)));
        assert!(!is_connected(&AdjacencyList::new(2)));
    }

    #[test]
    fn connectivity_preservation() {
        // Reference: two components {0,1,2} and {3,4}.
        let reference = AdjacencyList::from_edges(
            5,
            &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(0, 2, 1.0), Edge::new(3, 4, 1.0)],
        );
        // Spanning forest of the same components.
        let good = AdjacencyList::from_edges(5, &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(3, 4, 1.0)]);
        assert!(preserves_connectivity(&reference, &good));
        // Dropping an edge splits {0,1,2}.
        let bad = AdjacencyList::from_edges(5, &[Edge::new(0, 1, 1.0), Edge::new(3, 4, 1.0)]);
        assert!(!preserves_connectivity(&reference, &bad));
        // Connecting the two reference components is also a violation.
        let merged = AdjacencyList::from_edges(
            5,
            &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(2, 3, 1.0), Edge::new(3, 4, 1.0)],
        );
        assert!(!preserves_connectivity(&reference, &merged));
    }
}
