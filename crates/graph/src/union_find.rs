//! Disjoint sets with union by rank and path compression.

/// A union-find structure over elements `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many elements");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    #[inline]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p] as usize;
            self.parent[x] = gp as u32;
            x = gp;
        }
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.rank[ra] < self.rank[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        if self.rank[ra] == self.rank[rb] {
            self.rank[ra] += 1;
        }
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(!uf.connected(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert_eq!(uf.components(), 3);
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.components(), 2);
        assert!(!uf.union(0, 3), "already connected");
        assert_eq!(uf.components(), 2);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.components(), 1);
        for i in 0..n {
            assert!(uf.connected(0, i));
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
    }
}
