//! Weighted undirected edges.

use std::cmp::Ordering;

/// An undirected edge `{u, v}` with a real weight (typically a Euclidean
/// distance).
///
/// Endpoints are stored normalized (`u <= v`) so that edges compare and
/// hash structurally. The ordering is by weight, then endpoints — the
/// deterministic order Kruskal-style algorithms rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Edge weight; must be finite.
    pub weight: f64,
}

impl Edge {
    /// Creates a normalized edge. Panics in debug builds on self-loops or
    /// non-finite weights.
    #[inline]
    pub fn new(a: usize, b: usize, weight: f64) -> Self {
        debug_assert!(a != b, "self-loop {a}");
        debug_assert!(weight.is_finite(), "non-finite weight {weight}");
        Edge {
            u: a.min(b),
            v: a.max(b),
            weight,
        }
    }

    /// Returns the endpoint different from `x`; panics if `x` is not an
    /// endpoint.
    #[inline]
    pub fn other(&self, x: usize) -> usize {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} not on edge {self:?}");
            self.u
        }
    }

    /// Returns `true` if `x` is an endpoint.
    #[inline]
    pub fn touches(&self, x: usize) -> bool {
        self.u == x || self.v == x
    }

    /// The endpoint pair `(u, v)` with `u < v`.
    #[inline]
    pub fn pair(&self) -> (usize, usize) {
        (self.u, self.v)
    }

    /// Total order: by weight, then endpoints. Deterministic for any input.
    #[inline]
    pub fn cmp_by_weight(&self, other: &Edge) -> Ordering {
        self.weight
            .total_cmp(&other.weight)
            .then(self.u.cmp(&other.u))
            .then(self.v.cmp(&other.v))
    }
}

impl Eq for Edge {}

impl PartialOrd for Edge {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Edge {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_by_weight(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_normalized() {
        let e = Edge::new(5, 2, 1.0);
        assert_eq!(e.pair(), (2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
        assert!(e.touches(2) && e.touches(5) && !e.touches(3));
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_endpoint() {
        Edge::new(0, 1, 1.0).other(2);
    }

    #[test]
    fn ordering_is_by_weight_then_endpoints() {
        let mut edges = [Edge::new(0, 3, 2.0),
            Edge::new(1, 2, 1.0),
            Edge::new(0, 1, 2.0),
            Edge::new(0, 2, 2.0)];
        edges.sort_unstable();
        assert_eq!(
            edges.iter().map(Edge::pair).collect::<Vec<_>>(),
            vec![(1, 2), (0, 1), (0, 2), (0, 3)]
        );
    }

    #[test]
    fn negative_zero_weight_sorts_before_positive_zero() {
        // total_cmp distinguishes -0.0 < +0.0; the order stays total either way.
        let a = Edge::new(0, 1, -0.0);
        let b = Edge::new(0, 1, 0.0);
        assert!(a < b);
    }
}
