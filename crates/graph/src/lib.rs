//! Graph substrate for the `rim` workspace.
//!
//! Topology control is, at its core, "given a network graph, construct a
//! subgraph with desired properties" (Section 2 of the paper). This crate
//! provides the graph machinery the rest of the workspace builds on — all
//! implemented from scratch:
//!
//! * [`AdjacencyList`] — a compact undirected graph over `0..n` vertices,
//! * [`Edge`] — weighted undirected edges with deterministic ordering,
//! * [`UnionFind`] — disjoint sets with union by rank + path compression,
//! * [`traversal`] — BFS/DFS, connected components, connectivity checks,
//! * [`mst`] — Kruskal and Prim minimum spanning trees/forests,
//! * [`shortest_path`] — Dijkstra, hop counts, next-hop routing tables,
//! * [`tree`] — tree predicates, tree paths, diameters,
//! * [`properties`] — degree statistics and stretch factors,
//! * [`biconnectivity`] — bridges and cut vertices (robustness reports).

#![forbid(unsafe_code)]

// Node ids double as indices throughout this workspace; indexed loops
// over `0..n` mirror the paper's notation and often touch several arrays.
#![allow(clippy::needless_range_loop)]

pub mod adjacency;
pub mod biconnectivity;
pub mod edge;
pub mod mst;
pub mod properties;
pub mod shortest_path;
pub mod traversal;
pub mod tree;
pub mod union_find;

pub use adjacency::AdjacencyList;
pub use edge::Edge;
pub use union_find::UnionFind;
