//! Shortest paths: Dijkstra, hop counts, and routing tables.
//!
//! The simulator routes packets over a controlled topology using
//! shortest-path next-hop tables; the spanner analyses compare weighted
//! path lengths between the UDG and a topology.

use crate::adjacency::AdjacencyList;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// `dist[v]` is the weighted distance from the source, `f64::INFINITY`
    /// if unreachable.
    pub dist: Vec<f64>,
    /// `parent[v]` is the predecessor on a shortest path, `usize::MAX` for
    /// the source and unreachable vertices.
    pub parent: Vec<usize>,
}

impl ShortestPaths {
    /// Reconstructs the path from the source to `t` (inclusive), or `None`
    /// if `t` is unreachable.
    pub fn path_to(&self, t: usize) -> Option<Vec<usize>> {
        if self.dist[t].is_infinite() {
            return None;
        }
        let mut path = vec![t];
        let mut cur = t;
        while self.parent[cur] != usize::MAX {
            cur = self.parent[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Dijkstra from `source` over non-negative edge weights.
///
/// Parents record the first relaxation achieving the minimum distance,
/// which is deterministic for a fixed graph (neighbor iteration order and
/// heap behavior are both deterministic).
pub fn dijkstra(g: &AdjacencyList, source: usize) -> ShortestPaths {
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Reverse((OrdF64(0.0), source)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for (v, w) in g.neighbors_weighted(u) {
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = u;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    ShortestPaths { dist, parent }
}

/// BFS hop distances from `source` (`usize::MAX` if unreachable).
pub fn hop_distances(g: &AdjacencyList, source: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All-pairs next-hop routing table computed by one Dijkstra per vertex.
///
/// `table[s][t]` is the neighbor of `s` on a shortest `s → t` path
/// (`usize::MAX` when `t` is `s` itself or unreachable).
pub fn routing_table(g: &AdjacencyList) -> Vec<Vec<usize>> {
    let n = g.num_vertices();
    let mut table = vec![vec![usize::MAX; n]; n];
    for s in 0..n {
        let sp = dijkstra(g, s);
        for t in 0..n {
            if t == s || sp.dist[t].is_infinite() {
                continue;
            }
            // Walk back from t until the vertex whose parent is s.
            let mut cur = t;
            while sp.parent[cur] != s {
                cur = sp.parent[cur];
            }
            table[s][t] = cur;
        }
    }
    table
}

/// `f64` wrapper ordered by `total_cmp`, for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn sample_graph() -> AdjacencyList {
        //   0 --1.0-- 1 --1.0-- 2
        //    \__3.0_____________/     and isolated vertex 3
        AdjacencyList::from_edges(
            4,
            &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(0, 2, 3.0)],
        )
    }

    #[test]
    fn dijkstra_prefers_two_hop_path() {
        let g = sample_graph();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 2.0);
        assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
        assert!(sp.dist[3].is_infinite());
        assert_eq!(sp.path_to(3), None);
    }

    #[test]
    fn hop_distance_ignores_weights() {
        let g = sample_graph();
        let hops = hop_distances(&g, 0);
        assert_eq!(hops[0], 0);
        assert_eq!(hops[1], 1);
        assert_eq!(hops[2], 1); // the direct heavy edge is 1 hop
        assert_eq!(hops[3], usize::MAX);
    }

    #[test]
    fn routing_table_next_hops() {
        let g = sample_graph();
        let table = routing_table(&g);
        assert_eq!(table[0][2], 1, "route 0→2 via 1");
        assert_eq!(table[2][0], 1);
        assert_eq!(table[0][1], 1);
        assert_eq!(table[0][3], usize::MAX);
        assert_eq!(table[0][0], usize::MAX);
    }

    #[test]
    fn dijkstra_on_path_graph_distances_accumulate() {
        let n = 10;
        let edges: Vec<Edge> = (1..n).map(|i| Edge::new(i - 1, i, 0.5)).collect();
        let g = AdjacencyList::from_edges(n, &edges);
        let sp = dijkstra(&g, 0);
        for v in 0..n {
            assert!((sp.dist[v] - 0.5 * v as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let g = AdjacencyList::from_edges(3, &[Edge::new(0, 1, 0.0), Edge::new(1, 2, 0.0)]);
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 0.0);
        assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
    }
}
