//! Tree predicates and measures.
//!
//! The paper restricts attention to topologies that are forests ("a tree
//! for each connected component ... since additional edges might
//! unnecessarily increase interference", Section 3).

use crate::adjacency::AdjacencyList;
use crate::traversal::{components, num_components};

/// Returns `true` if the graph is a forest (acyclic).
pub fn is_forest(g: &AdjacencyList) -> bool {
    // A graph is acyclic iff |E| = |V| - (#components).
    g.num_edges() + num_components(g) == g.num_vertices()
}

/// Returns `true` if the graph is a single tree spanning all vertices.
pub fn is_spanning_tree(g: &AdjacencyList) -> bool {
    g.num_vertices() > 0 && num_components(g) == 1 && g.num_edges() == g.num_vertices() - 1
}

/// The unique path between `u` and `v` in a forest, or `None` if they are
/// in different components. Panics if the graph is not a forest.
pub fn tree_path(g: &AdjacencyList, u: usize, v: usize) -> Option<Vec<usize>> {
    assert!(is_forest(g), "tree_path requires a forest");
    if u == v {
        return Some(vec![u]);
    }
    let n = g.num_vertices();
    let mut parent = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[u] = true;
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        if x == v {
            break;
        }
        for y in g.neighbors(x) {
            if !seen[y] {
                seen[y] = true;
                parent[y] = x;
                queue.push_back(y);
            }
        }
    }
    if !seen[v] {
        return None;
    }
    let mut path = vec![v];
    let mut cur = v;
    while cur != u {
        cur = parent[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Weighted diameter of a forest: the maximum over components of the
/// longest weighted path. Returns 0.0 for edgeless graphs.
pub fn weighted_diameter(g: &AdjacencyList) -> f64 {
    assert!(is_forest(g), "weighted_diameter requires a forest");
    // Double sweep per component: the farthest vertex from any start is an
    // endpoint of a longest path in a tree.
    let labels = components(g);
    let k = labels.iter().max().map_or(0, |m| m + 1);
    let mut best = 0.0f64;
    let mut done = vec![false; k];
    for s in 0..g.num_vertices() {
        let c = labels[s];
        if done[c] {
            continue;
        }
        done[c] = true;
        let (far, _) = farthest(g, s);
        let (_, d) = farthest(g, far);
        best = best.max(d);
    }
    best
}

fn farthest(g: &AdjacencyList, start: usize) -> (usize, f64) {
    let n = g.num_vertices();
    let mut dist = vec![f64::NEG_INFINITY; n];
    let mut stack = vec![start];
    dist[start] = 0.0;
    let mut best = (start, 0.0f64);
    while let Some(u) = stack.pop() {
        for (v, w) in g.neighbors_weighted(u) {
            // rim-lint: allow(float-eq) — NEG_INFINITY is an exact init sentinel
            if dist[v] == f64::NEG_INFINITY {
                dist[v] = dist[u] + w;
                if dist[v] > best.1 {
                    best = (v, dist[v]);
                }
                stack.push(v);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn path_graph(n: usize, w: f64) -> AdjacencyList {
        let edges: Vec<Edge> = (1..n).map(|i| Edge::new(i - 1, i, w)).collect();
        AdjacencyList::from_edges(n, &edges)
    }

    #[test]
    fn forest_and_tree_predicates() {
        let p = path_graph(5, 1.0);
        assert!(is_forest(&p));
        assert!(is_spanning_tree(&p));

        let mut cyclic = path_graph(4, 1.0);
        cyclic.add_edge(0, 3, 1.0);
        assert!(!is_forest(&cyclic));
        assert!(!is_spanning_tree(&cyclic));

        let mut forest = path_graph(5, 1.0);
        forest.remove_edge(2, 3); // two components
        assert!(is_forest(&forest));
        assert!(!is_spanning_tree(&forest));

        assert!(is_forest(&AdjacencyList::new(0)));
        assert!(!is_spanning_tree(&AdjacencyList::new(0)));
        assert!(is_spanning_tree(&AdjacencyList::new(1)));
    }

    #[test]
    fn tree_path_endpoints_and_order() {
        let p = path_graph(6, 1.0);
        assert_eq!(tree_path(&p, 1, 4), Some(vec![1, 2, 3, 4]));
        assert_eq!(tree_path(&p, 4, 1), Some(vec![4, 3, 2, 1]));
        assert_eq!(tree_path(&p, 3, 3), Some(vec![3]));
    }

    #[test]
    fn tree_path_across_components_is_none() {
        let mut g = path_graph(4, 1.0);
        g.remove_edge(1, 2);
        assert_eq!(tree_path(&g, 0, 3), None);
    }

    #[test]
    fn diameter_of_path_and_star() {
        let p = path_graph(5, 2.0);
        assert_eq!(weighted_diameter(&p), 8.0);

        let star = AdjacencyList::from_edges(
            4,
            &[Edge::new(0, 1, 1.0), Edge::new(0, 2, 3.0), Edge::new(0, 3, 5.0)],
        );
        assert_eq!(weighted_diameter(&star), 8.0); // 2 -> 0 -> 3

        assert_eq!(weighted_diameter(&AdjacencyList::new(3)), 0.0);
    }

    #[test]
    fn diameter_takes_max_over_components() {
        let mut g = AdjacencyList::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 10.0);
        g.add_edge(3, 4, 10.0);
        assert_eq!(weighted_diameter(&g), 20.0);
    }
}
