//! Minimum spanning trees and forests.
//!
//! The Euclidean MST is one of the classic topology-control baselines the
//! paper measures against (it contains the Nearest Neighbor Forest, so
//! Theorem 4.1 applies to it). Kruskal over a deterministic edge order is
//! the reference implementation; Prim is provided for dense graphs.

use crate::adjacency::AdjacencyList;
use crate::edge::Edge;
use crate::union_find::UnionFind;

/// Computes a minimum spanning forest of the given edge set over `n`
/// vertices (Kruskal). Returns the chosen edges sorted by weight.
///
/// Ties are broken by the deterministic [`Edge`] order, so the result is a
/// function of the input set only.
pub fn kruskal(n: usize, edges: &[Edge]) -> Vec<Edge> {
    let mut sorted: Vec<Edge> = edges.to_vec();
    sorted.sort_unstable();
    let mut uf = UnionFind::new(n);
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    for e in sorted {
        if uf.union(e.u, e.v) {
            out.push(e);
            if out.len() + 1 == n {
                break;
            }
        }
    }
    out
}

/// Computes a minimum spanning forest of an adjacency-list graph (Prim,
/// run from every unvisited vertex). Returns the chosen edges.
pub fn prim(g: &AdjacencyList) -> Vec<Edge> {
    let n = g.num_vertices();
    let mut in_tree = vec![false; n];
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<Edge>> =
        std::collections::BinaryHeap::new();
    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        in_tree[start] = true;
        for (v, w) in g.neighbors_weighted(start) {
            heap.push(std::cmp::Reverse(Edge::new(start, v, w)));
        }
        while let Some(std::cmp::Reverse(e)) = heap.pop() {
            let next = if !in_tree[e.u] {
                e.u
            } else if !in_tree[e.v] {
                e.v
            } else {
                continue;
            };
            in_tree[next] = true;
            out.push(e);
            for (v, w) in g.neighbors_weighted(next) {
                if !in_tree[v] {
                    heap.push(std::cmp::Reverse(Edge::new(next, v, w)));
                }
            }
        }
    }
    out
}

/// Total weight of an edge set.
pub fn total_weight(edges: &[Edge]) -> f64 {
    edges.iter().map(|e| e.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    fn complete_graph(weights: &[(usize, usize, f64)], n: usize) -> (Vec<Edge>, AdjacencyList) {
        let edges: Vec<Edge> = weights.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect();
        let g = AdjacencyList::from_edges(n, &edges);
        (edges, g)
    }

    #[test]
    fn kruskal_small_known_mst() {
        let (edges, _) = complete_graph(
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (0, 2, 2.5),
                (2, 3, 0.5),
                (1, 3, 3.0),
            ],
            4,
        );
        let mst = kruskal(4, &edges);
        assert_eq!(mst.len(), 3);
        assert_eq!(total_weight(&mst), 3.5);
    }

    #[test]
    fn prim_matches_kruskal_weight() {
        // Pseudo-random dense graph.
        let mut state = 123u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 30;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push(Edge::new(u, v, rnd()));
            }
        }
        let g = AdjacencyList::from_edges(n, &edges);
        let k = kruskal(n, &edges);
        let p = prim(&g);
        assert_eq!(k.len(), n - 1);
        assert_eq!(p.len(), n - 1);
        assert!((total_weight(&k) - total_weight(&p)).abs() < 1e-12);
        let kg = AdjacencyList::from_edges(n, &k);
        assert!(is_connected(&kg));
    }

    #[test]
    fn forest_on_disconnected_input() {
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)];
        let mst = kruskal(4, &edges);
        assert_eq!(mst.len(), 2);
        let g = AdjacencyList::from_edges(4, &edges);
        assert_eq!(prim(&g).len(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(kruskal(0, &[]).is_empty());
        assert!(kruskal(5, &[]).is_empty());
        assert!(prim(&AdjacencyList::new(3)).is_empty());
    }
}
