//! Bridges and articulation points (Tarjan's low-link DFS).
//!
//! Topology control trades redundancy for interference: a spanning tree
//! minimizes edges (and often interference) but every edge is a bridge
//! and every internal node a cut vertex. These helpers quantify that
//! trade-off for the experiment reports.

use crate::adjacency::AdjacencyList;

/// Result of a biconnectivity analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Biconnectivity {
    /// Bridge edges `(u, v)` with `u < v`, sorted.
    pub bridges: Vec<(usize, usize)>,
    /// Articulation (cut) vertices, sorted.
    pub cut_vertices: Vec<usize>,
}

/// Computes all bridges and articulation points (iterative DFS, safe for
/// deep graphs).
pub fn biconnectivity(g: &AdjacencyList) -> Biconnectivity {
    let n = g.num_vertices();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut bridges = Vec::new();
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS with explicit neighbor cursors.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;

        while !stack.is_empty() {
            let (u, cursor) = {
                // rim-lint: allow(no-unwrap-in-lib) — guarded by !stack.is_empty()
                let frame = stack.last_mut().expect("non-empty stack");
                let snapshot = *frame;
                frame.1 += 1;
                snapshot
            };
            if let Some(v) = g.neighbors(u).nth(cursor) {
                if disc[v] == usize::MAX {
                    parent[v] = u;
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    if u == root {
                        root_children += 1;
                    }
                    stack.push((v, 0));
                } else if v != parent[u] {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        bridges.push((p.min(u), p.max(u)));
                    }
                    if p != root && low[u] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root] = true;
        }
    }

    bridges.sort_unstable();
    Biconnectivity {
        bridges,
        cut_vertices: (0..n).filter(|&v| is_cut[v]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    fn graph(n: usize, pairs: &[(usize, usize)]) -> AdjacencyList {
        let edges: Vec<Edge> = pairs.iter().map(|&(u, v)| Edge::new(u, v, 1.0)).collect();
        AdjacencyList::from_edges(n, &edges)
    }

    #[test]
    fn every_tree_edge_is_a_bridge() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (2, 4)]);
        let b = biconnectivity(&g);
        assert_eq!(b.bridges, vec![(0, 1), (1, 2), (2, 3), (2, 4)]);
        assert_eq!(b.cut_vertices, vec![1, 2]);
    }

    #[test]
    fn cycles_have_no_bridges() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let b = biconnectivity(&g);
        assert!(b.bridges.is_empty());
        assert!(b.cut_vertices.is_empty());
    }

    #[test]
    fn barbell_bridge() {
        // Two triangles joined by one edge: that edge is the only bridge,
        // its endpoints are cut vertices.
        let g = graph(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        );
        let b = biconnectivity(&g);
        assert_eq!(b.bridges, vec![(2, 3)]);
        assert_eq!(b.cut_vertices, vec![2, 3]);
    }

    #[test]
    fn disconnected_components_are_analyzed_independently() {
        let g = graph(5, &[(0, 1), (2, 3), (3, 4)]);
        let b = biconnectivity(&g);
        assert_eq!(b.bridges, vec![(0, 1), (2, 3), (3, 4)]);
        assert_eq!(b.cut_vertices, vec![3]);
    }

    #[test]
    fn brute_force_cross_check() {
        // Remove each edge / vertex and compare component counts.
        let mut state = 77u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for trial in 0..10 {
            let n = 8;
            let mut g = AdjacencyList::new(n);
            for _ in 0..12 {
                let (a, b) = (rnd() % n, rnd() % n);
                if a != b && !g.has_edge(a, b) {
                    g.add_edge(a, b, 1.0);
                }
            }
            let bc = biconnectivity(&g);
            let base = crate::traversal::num_components(&g);
            // Bridges: removal increases component count.
            for e in g.edges() {
                let mut h = g.clone();
                h.remove_edge(e.u, e.v);
                let is_bridge = crate::traversal::num_components(&h) > base;
                assert_eq!(
                    bc.bridges.contains(&(e.u, e.v)),
                    is_bridge,
                    "trial={trial} edge={:?}",
                    e.pair()
                );
            }
            // Cut vertices: removing the vertex's edges splits its
            // component (beyond the vertex itself becoming isolated).
            for v in 0..n {
                if g.degree(v) == 0 {
                    continue;
                }
                let mut h = g.clone();
                let ns: Vec<usize> = h.neighbors(v).collect();
                for w in ns {
                    h.remove_edge(v, w);
                }
                // After isolating v, components = base + (#new splits);
                // v itself adds one (it was connected, now isolated).
                let after = crate::traversal::num_components(&h);
                let is_cut = after > base + 1;
                assert_eq!(
                    bc.cut_vertices.contains(&v),
                    is_cut,
                    "trial={trial} vertex={v}"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let b = biconnectivity(&AdjacencyList::new(0));
        assert!(b.bridges.is_empty());
        assert!(b.cut_vertices.is_empty());
    }
}
