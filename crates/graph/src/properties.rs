//! Structural graph measures used across the experiments.
//!
//! The paper's related-work section contrasts *implicit* interference
//! proxies — sparseness, low degree, the spanner property — with the
//! explicit interference measure. These helpers compute the proxies so
//! the experiments can report them side by side.

use crate::adjacency::AdjacencyList;
use crate::shortest_path::dijkstra;

/// Degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree (0 for the empty graph).
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes min/max/mean degree.
pub fn degree_stats(g: &AdjacencyList) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0;
    for u in 0..n {
        let d = g.degree(u);
        min = min.min(d);
        max = max.max(d);
    }
    DegreeStats {
        min,
        max,
        mean: 2.0 * g.num_edges() as f64 / n as f64,
    }
}

/// The (weighted) stretch factor of `sub` relative to `reference`:
/// the maximum over connected pairs of `dist_sub(u,v) / dist_ref(u,v)`.
///
/// Returns 1.0 when there are no connected pairs. Pairs connected in
/// `reference` but not in `sub` yield `f64::INFINITY` (connectivity was
/// not preserved).
///
/// This is `O(n · (m log n))`; intended for analysis, not hot paths.
pub fn stretch_factor(reference: &AdjacencyList, sub: &AdjacencyList) -> f64 {
    assert_eq!(reference.num_vertices(), sub.num_vertices());
    let n = reference.num_vertices();
    let mut worst = 1.0f64;
    for s in 0..n {
        let dr = dijkstra(reference, s);
        let ds = dijkstra(sub, s);
        for t in (s + 1)..n {
            if dr.dist[t].is_infinite() {
                continue;
            }
            if ds.dist[t].is_infinite() {
                return f64::INFINITY;
            }
            if dr.dist[t] > 0.0 {
                worst = worst.max(ds.dist[t] / dr.dist[t]);
            }
        }
    }
    worst
}

/// Sparseness: edges per vertex (`m / n`); 0 for the empty graph.
pub fn sparseness(g: &AdjacencyList) -> f64 {
    if g.num_vertices() == 0 {
        0.0
    } else {
        g.num_edges() as f64 / g.num_vertices() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;

    #[test]
    fn degree_stats_on_star() {
        let g = AdjacencyList::from_edges(
            4,
            &[Edge::new(0, 1, 1.0), Edge::new(0, 2, 1.0), Edge::new(0, 3, 1.0)],
        );
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stretch_of_subgraph() {
        // Triangle with unit edges; dropping one edge makes the detour 2x.
        let reference = AdjacencyList::from_edges(
            3,
            &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0), Edge::new(0, 2, 1.0)],
        );
        let sub = AdjacencyList::from_edges(3, &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)]);
        assert!((stretch_factor(&reference, &sub) - 2.0).abs() < 1e-12);
        assert_eq!(stretch_factor(&reference, &reference), 1.0);
    }

    #[test]
    fn stretch_detects_broken_connectivity() {
        let reference = AdjacencyList::from_edges(2, &[Edge::new(0, 1, 1.0)]);
        let sub = AdjacencyList::new(2);
        assert!(stretch_factor(&reference, &sub).is_infinite());
    }

    #[test]
    fn sparseness_basics() {
        assert_eq!(sparseness(&AdjacencyList::new(0)), 0.0);
        let g = AdjacencyList::from_edges(4, &[Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)]);
        assert_eq!(sparseness(&g), 0.5);
    }
}
