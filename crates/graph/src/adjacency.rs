//! A compact undirected graph over vertices `0..n`.

use crate::edge::Edge;

/// An undirected graph with weighted edges, stored as per-vertex
/// neighbor lists.
///
/// Vertices are `0..n`. Parallel edges are rejected, self-loops are
/// forbidden. Neighbor lists are kept sorted by neighbor index, which makes
/// iteration deterministic and membership queries `O(log deg)`.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyList {
    /// `adj[u]` is sorted by neighbor index.
    adj: Vec<Vec<(u32, f64)>>,
    num_edges: usize,
}

impl AdjacencyList {
    /// Creates an empty graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many vertices");
        AdjacencyList {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list. Duplicate edges are rejected with
    /// a panic (they indicate a bug in a topology constructor).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut g = AdjacencyList::new(n);
        for e in edges {
            assert!(
                g.add_edge(e.u, e.v, e.weight),
                "duplicate edge {:?}",
                e.pair()
            );
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Appends a fresh isolated vertex and returns its index.
    ///
    /// Existing vertex indices are unaffected, so structures that maintain
    /// per-vertex state alongside the graph (interference counters, radii)
    /// can grow in lockstep.
    // rim-lint: allow(panic-freedom) — `adj` is non-empty right after the push
    pub fn add_vertex(&mut self) -> usize {
        assert!(self.adj.len() < u32::MAX as usize, "too many vertices");
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Inserts edge `{u, v}`; returns `false` if it already exists.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> bool {
        assert!(u != v, "self-loop at {u}");
        assert!(u < self.adj.len() && v < self.adj.len(), "vertex out of range");
        let pos_u = match self.adj[u].binary_search_by_key(&(v as u32), |&(w, _)| w) {
            Ok(_) => return false,
            Err(p) => p,
        };
        self.adj[u].insert(pos_u, (v as u32, weight));
        let pos_v = self.adj[v]
            .binary_search_by_key(&(u as u32), |&(w, _)| w)
            .unwrap_err();
        self.adj[v].insert(pos_v, (u as u32, weight));
        self.num_edges += 1;
        true
    }

    /// Removes edge `{u, v}`; returns `false` if it was absent.
    // rim-lint: allow(panic-freedom) — vertex ids are caller-validated; lists stay symmetric
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let Ok(pos_u) = self.adj[u].binary_search_by_key(&(v as u32), |&(w, _)| w) else {
            return false;
        };
        self.adj[u].remove(pos_u);
        let pos_v = self.adj[v]
            .binary_search_by_key(&(u as u32), |&(w, _)| w)
            // rim-lint: allow(no-unwrap-in-lib) — adjacency lists are kept symmetric
            .expect("asymmetric adjacency");
        self.adj[v].remove(pos_v);
        self.num_edges -= 1;
        true
    }

    /// Returns `true` if edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u]
            .binary_search_by_key(&(v as u32), |&(w, _)| w)
            .is_ok()
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.adj[u]
            .binary_search_by_key(&(v as u32), |&(w, _)| w)
            .ok()
            .map(|p| self.adj[u][p].1)
    }

    /// Degree of `u`.
    #[inline]
    // rim-lint: allow(panic-freedom) — vertex ids are caller-validated
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over the neighbors of `u` in ascending index order.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[u].iter().map(|&(v, _)| v as usize)
    }

    /// Iterates over `(neighbor, weight)` pairs of `u`.
    #[inline]
    pub fn neighbors_weighted(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj[u].iter().map(|&(v, w)| (v as usize, w))
    }

    /// Collects all edges, each once, sorted by `(u, v)`.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges);
        for u in 0..self.adj.len() {
            for &(v, w) in &self.adj[u] {
                if (v as usize) > u {
                    out.push(Edge::new(u, v as usize, w));
                }
            }
        }
        out
    }

    /// Largest incident edge weight of `u`, or `None` if isolated.
    ///
    /// In the interference model this is exactly the transmission radius
    /// `r_u` induced by a topology.
    // rim-lint: allow(panic-freedom) — vertex ids are caller-validated
    pub fn max_incident_weight(&self, u: usize) -> Option<f64> {
        self.adj[u]
            .iter()
            .map(|&(_, w)| w)
            .max_by(f64::total_cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = AdjacencyList::new(4);
        assert!(g.add_edge(0, 1, 1.0));
        assert!(g.add_edge(2, 1, 0.5));
        assert!(!g.add_edge(1, 0, 9.0), "duplicate rejected");
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(0, 2), None);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn add_vertex_grows_without_disturbing_edges() {
        let mut g = AdjacencyList::new(2);
        g.add_edge(0, 1, 1.5);
        let v = g.add_vertex();
        assert_eq!(v, 2);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
        assert!(g.add_edge(2, 0, 0.5));
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn remove_edges() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn edges_are_listed_once_in_order() {
        let g = AdjacencyList::from_edges(
            4,
            &[
                Edge::new(3, 2, 1.0),
                Edge::new(0, 1, 2.0),
                Edge::new(1, 3, 0.25),
            ],
        );
        let pairs: Vec<_> = g.edges().iter().map(Edge::pair).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 3), (2, 3)]);
    }

    #[test]
    fn max_incident_weight_is_radius() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 0.3);
        g.add_edge(0, 2, 0.7);
        assert_eq!(g.max_incident_weight(0), Some(0.7));
        assert_eq!(g.max_incident_weight(1), Some(0.3));
        let lonely = AdjacencyList::new(1);
        assert_eq!(lonely.max_incident_weight(0), None);
    }

    #[test]
    #[should_panic]
    fn self_loops_are_rejected() {
        AdjacencyList::new(2).add_edge(1, 1, 0.0);
    }

    #[test]
    #[should_panic]
    fn from_edges_rejects_duplicates() {
        AdjacencyList::from_edges(3, &[Edge::new(0, 1, 1.0), Edge::new(1, 0, 1.0)]);
    }
}
