//! Property-based tests for the graph substrate (seeded in-repo
//! harness, `rim_rng::prop`).

#![allow(clippy::needless_range_loop)] // node-id-indexed loops by design
use rim_graph::adjacency::AdjacencyList;
use rim_graph::edge::Edge;
use rim_graph::mst::{kruskal, prim, total_weight};
use rim_graph::shortest_path::{dijkstra, hop_distances};
use rim_graph::traversal::{components, is_connected, num_components};
use rim_graph::tree::is_forest;
use rim_graph::union_find::UnionFind;
use rim_rng::prop::check_default;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};

/// A random simple graph as a deduplicated edge list over `n` vertices.
fn arb_graph(rng: &mut SmallRng) -> (usize, Vec<Edge>) {
    let n = rng.gen_range(2usize..30);
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for _ in 0..rng.gen_range(0usize..60) {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a == b {
            continue; // no self-loops
        }
        let (u, v) = (a.min(b), a.max(b));
        if seen.insert((u, v)) {
            edges.push(Edge::new(u, v, rng.gen_range(0.0f64..10.0)));
        }
    }
    (n, edges)
}

#[test]
fn mst_weight_agrees_between_kruskal_and_prim() {
    check_default("mst_weight_agrees_between_kruskal_and_prim", arb_graph, |(n, edges)| {
        let g = AdjacencyList::from_edges(*n, edges);
        let k = kruskal(*n, edges);
        let p = prim(&g);
        prop_ensure_eq!(k.len(), p.len());
        prop_ensure!((total_weight(&k) - total_weight(&p)).abs() < 1e-9);
        // An MSF is a forest preserving the component structure.
        let kg = AdjacencyList::from_edges(*n, &k);
        prop_ensure!(is_forest(&kg));
        prop_ensure_eq!(num_components(&kg), num_components(&g));
        Ok(())
    });
}

#[test]
fn union_find_matches_bfs_components() {
    check_default("union_find_matches_bfs_components", arb_graph, |(n, edges)| {
        let g = AdjacencyList::from_edges(*n, edges);
        let labels = components(&g);
        let mut uf = UnionFind::new(*n);
        for e in edges {
            uf.union(e.u, e.v);
        }
        for a in 0..*n {
            for b in 0..*n {
                prop_ensure_eq!(labels[a] == labels[b], uf.connected(a, b));
            }
        }
        prop_ensure_eq!(uf.components(), num_components(&g));
        Ok(())
    });
}

#[test]
fn dijkstra_satisfies_triangle_inequality() {
    check_default("dijkstra_satisfies_triangle_inequality", arb_graph, |(n, edges)| {
        let g = AdjacencyList::from_edges(*n, edges);
        let sp = dijkstra(&g, 0);
        // Relaxed edges cannot improve any distance further.
        for e in edges {
            if sp.dist[e.u].is_finite() {
                prop_ensure!(sp.dist[e.v] <= sp.dist[e.u] + e.weight + 1e-9);
            }
            if sp.dist[e.v].is_finite() {
                prop_ensure!(sp.dist[e.u] <= sp.dist[e.v] + e.weight + 1e-9);
            }
        }
        // Reachability agrees with BFS.
        let hops = hop_distances(&g, 0);
        for v in 0..*n {
            prop_ensure_eq!(sp.dist[v].is_finite(), hops[v] != usize::MAX);
        }
        Ok(())
    });
}

#[test]
fn connectivity_iff_single_component() {
    check_default("connectivity_iff_single_component", arb_graph, |(n, edges)| {
        let g = AdjacencyList::from_edges(*n, edges);
        prop_ensure_eq!(is_connected(&g), num_components(&g) == 1);
        Ok(())
    });
}

#[test]
fn edges_roundtrip_through_adjacency() {
    check_default("edges_roundtrip_through_adjacency", arb_graph, |(n, edges)| {
        let g = AdjacencyList::from_edges(*n, edges);
        let mut want: Vec<(usize, usize)> = edges.iter().map(Edge::pair).collect();
        want.sort_unstable();
        let got: Vec<(usize, usize)> = g.edges().iter().map(Edge::pair).collect();
        prop_ensure_eq!(got, want);
        Ok(())
    });
}
