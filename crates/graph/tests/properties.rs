//! Property-based tests for the graph substrate.

#![allow(clippy::needless_range_loop)] // node-id-indexed loops by design
use proptest::prelude::*;
use rim_graph::adjacency::AdjacencyList;
use rim_graph::edge::Edge;
use rim_graph::mst::{kruskal, prim, total_weight};
use rim_graph::shortest_path::{dijkstra, hop_distances};
use rim_graph::traversal::{components, is_connected, num_components};
use rim_graph::tree::is_forest;
use rim_graph::union_find::UnionFind;

/// A random simple graph as a deduplicated edge list over `n` vertices.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<Edge>)> {
    (2usize..30).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0.0f64..10.0).prop_filter_map("no self-loop", |(a, b, w)| {
            (a != b).then(|| (a.min(b), a.max(b), w))
        });
        proptest::collection::vec(edge, 0..60).prop_map(move |raw| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            for (u, v, w) in raw {
                if seen.insert((u, v)) {
                    edges.push(Edge::new(u, v, w));
                }
            }
            (n, edges)
        })
    })
}

proptest! {
    #[test]
    fn mst_weight_agrees_between_kruskal_and_prim((n, edges) in arb_graph()) {
        let g = AdjacencyList::from_edges(n, &edges);
        let k = kruskal(n, &edges);
        let p = prim(&g);
        prop_assert_eq!(k.len(), p.len());
        prop_assert!((total_weight(&k) - total_weight(&p)).abs() < 1e-9);
        // An MSF is a forest preserving the component structure.
        let kg = AdjacencyList::from_edges(n, &k);
        prop_assert!(is_forest(&kg));
        prop_assert_eq!(num_components(&kg), num_components(&g));
    }

    #[test]
    fn union_find_matches_bfs_components((n, edges) in arb_graph()) {
        let g = AdjacencyList::from_edges(n, &edges);
        let labels = components(&g);
        let mut uf = UnionFind::new(n);
        for e in &edges {
            uf.union(e.u, e.v);
        }
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(labels[a] == labels[b], uf.connected(a, b));
            }
        }
        prop_assert_eq!(uf.components(), num_components(&g));
    }

    #[test]
    fn dijkstra_satisfies_triangle_inequality((n, edges) in arb_graph()) {
        let g = AdjacencyList::from_edges(n, &edges);
        let sp = dijkstra(&g, 0);
        // Relaxed edges cannot improve any distance further.
        for e in &edges {
            if sp.dist[e.u].is_finite() {
                prop_assert!(sp.dist[e.v] <= sp.dist[e.u] + e.weight + 1e-9);
            }
            if sp.dist[e.v].is_finite() {
                prop_assert!(sp.dist[e.u] <= sp.dist[e.v] + e.weight + 1e-9);
            }
        }
        // Reachability agrees with BFS.
        let hops = hop_distances(&g, 0);
        for v in 0..n {
            prop_assert_eq!(sp.dist[v].is_finite(), hops[v] != usize::MAX);
        }
    }

    #[test]
    fn connectivity_iff_single_component((n, edges) in arb_graph()) {
        let g = AdjacencyList::from_edges(n, &edges);
        prop_assert_eq!(is_connected(&g), num_components(&g) == 1);
    }

    #[test]
    fn edges_roundtrip_through_adjacency((n, edges) in arb_graph()) {
        let g = AdjacencyList::from_edges(n, &edges);
        let mut want: Vec<(usize, usize)> = edges.iter().map(Edge::pair).collect();
        want.sort_unstable();
        let got: Vec<(usize, usize)> = g.edges().iter().map(Edge::pair).collect();
        prop_assert_eq!(got, want);
    }
}
