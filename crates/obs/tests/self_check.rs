//! Global-sink behaviour of `rim-obs`, exercised in its own process
//! (the installed sink is process-wide and permanent, so these tests
//! share one recorder and only ever measure deltas).

use rim_obs::{Histogram, Snapshot};

fn counter(name: &str) -> u64 {
    rim_obs::global().map(|r| r.counter(name)).unwrap_or(0)
}

#[test]
fn disabled_then_installed_lifecycle() {
    // All tests in this binary run concurrently against one global, so
    // drive the lifecycle from a single test body.

    // Before installation everything is inert.
    if !rim_obs::active() {
        rim_obs::counter_add("self.pre_install", 5);
        let g = rim_obs::span("self.pre_install_span");
        drop(g);
    }

    let rec = rim_obs::install_recorder();
    assert!(rim_obs::active());
    assert!(std::ptr::eq(rec, rim_obs::install_recorder()), "install is idempotent");
    assert!(std::ptr::eq(rec, rim_obs::global().unwrap()));
    // Nothing from before installation leaked in.
    assert_eq!(counter("self.pre_install"), 0);
    assert!(rec.snapshot().spans.iter().all(|s| s.name != "self.pre_install_span"));

    // Counters accumulate through the free functions now.
    rim_obs::counter_add("self.hits", 2);
    rim_obs::counter_add("self.hits", 3);
    assert_eq!(counter("self.hits"), 5);

    // Counter merging across threads is associative: total is the sum
    // regardless of interleaving.
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..250 {
                    rim_obs::counter_add("self.threaded", 1);
                }
            });
        }
    });
    assert_eq!(counter("self.threaded"), 1000);

    // Span tree well-formedness: guards exit in reverse entry order.
    {
        let _outer = rim_obs::span("self.outer");
        let _inner = rim_obs::span("self.inner");
        rim_obs::record("self.depth", 2);
    }
    let snap = rec.snapshot();
    assert_eq!(snap.mismatched_exits, 0);
    let outer_idx = snap.spans.iter().position(|s| s.name == "self.outer").unwrap();
    let inner = snap.spans.iter().find(|s| s.name == "self.inner").unwrap();
    assert_eq!(inner.parent, Some(outer_idx));
    assert!(inner.wall_ns.is_some());

    // The installed-path snapshot round-trips through JSONL.
    let back = Snapshot::from_jsonl(&snap.to_jsonl()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn histogram_edges_via_the_free_function() {
    rim_obs::install_recorder();
    for v in [0u64, 1, 2, 3, 4, 1 << 39, u64::MAX] {
        rim_obs::record("self.hist_edges", v);
    }
    let snap = rim_obs::global().unwrap().snapshot();
    let h = &snap.histograms["self.hist_edges"];
    assert_eq!(h.underflow, 1);
    assert_eq!(h.overflow, 1);
    assert_eq!(h.bucket_count(0), 1); // 1
    assert_eq!(h.bucket_count(1), 2); // 2, 3
    assert_eq!(h.bucket_count(2), 1); // 4
    assert_eq!(h.bucket_count(39), 1); // 2^39
    assert_eq!(h.count, 7);
    assert_eq!(Histogram::bucket_range(1), (2, 4));
}
