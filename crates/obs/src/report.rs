//! Snapshot export: human-readable tree and JSONL, plus a minimal JSONL
//! parser so exports round-trip in tests and downstream tooling.
//!
//! The JSONL schema is one self-describing object per line:
//!
//! ```text
//! {"kind":"meta","mismatched_exits":0}
//! {"kind":"span","id":0,"parent":null,"thread":0,"name":"analyze","wall_ns":1234567}
//! {"kind":"counter","name":"core.disk_queries","value":4096}
//! {"kind":"hist","name":"sim.queue_depth","count":10,"sum":55,"max":9,
//!  "underflow":1,"overflow":0,"buckets":[[0,3],[2,6]]}
//! ```
//!
//! Buckets are sparse `[index, count]` pairs; `wall_ns` is `null` for a
//! span that was still open when the snapshot was taken.

use crate::hist::Histogram;
use crate::recorder::{Snapshot, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Snapshot {
    /// Serializes the snapshot as JSONL (one object per line, `meta`
    /// first, then spans in entry order, counters, histograms).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\"kind\":\"meta\",\"mismatched_exits\":{}}}", self.mismatched_exits);
        for (id, span) in self.spans.iter().enumerate() {
            let mut line = format!("{{\"kind\":\"span\",\"id\":{id},\"parent\":");
            match span.parent {
                Some(p) => {
                    let _ = write!(line, "{p}");
                }
                None => line.push_str("null"),
            }
            let _ = write!(line, ",\"thread\":{},\"name\":\"", span.thread);
            escape(&span.name, &mut line);
            line.push_str("\",\"wall_ns\":");
            match span.wall_ns {
                Some(ns) => {
                    let _ = write!(line, "{ns}");
                }
                None => line.push_str("null"),
            }
            line.push('}');
            out.push_str(&line);
            out.push('\n');
        }
        for (name, value) in &self.counters {
            let mut line = String::from("{\"kind\":\"counter\",\"name\":\"");
            escape(name, &mut line);
            let _ = write!(line, "\",\"value\":{value}}}");
            out.push_str(&line);
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let mut line = String::from("{\"kind\":\"hist\",\"name\":\"");
            escape(name, &mut line);
            let _ = write!(
                line,
                "\",\"count\":{},\"sum\":{},\"max\":{},\"underflow\":{},\"overflow\":{},\"buckets\":[",
                h.count, h.sum, h.max, h.underflow, h.overflow
            );
            for (i, (idx, c)) in h.nonempty_buckets().into_iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "[{idx},{c}]");
            }
            line.push_str("]}");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses a string produced by [`Snapshot::to_jsonl`] back into a
    /// snapshot. Unknown `kind`s are an error, so schema drift is caught
    /// by the round-trip test.
    pub fn from_jsonl(text: &str) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        let mut spans: Vec<(u64, SpanRecord)> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let obj = parse_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = obj.get_str("kind").map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let res = match kind.as_str() {
                "meta" => obj.get_u64("mismatched_exits").map(|v| snap.mismatched_exits = v),
                "span" => (|| {
                    let id = obj.get_u64("id")?;
                    let parent = match obj.get("parent")? {
                        Value::Null => None,
                        Value::Num(n) => Some(*n as usize),
                        v => return Err(format!("span parent: expected number or null, got {v:?}")),
                    };
                    let wall_ns = match obj.get("wall_ns")? {
                        Value::Null => None,
                        Value::Num(n) => Some(*n),
                        v => return Err(format!("span wall_ns: expected number or null, got {v:?}")),
                    };
                    spans.push((
                        id,
                        SpanRecord {
                            name: obj.get_str("name")?,
                            parent,
                            thread: obj.get_u64("thread")?,
                            wall_ns,
                        },
                    ));
                    Ok(())
                })(),
                "counter" => (|| {
                    snap.counters.insert(obj.get_str("name")?, obj.get_u64("value")?);
                    Ok(())
                })(),
                "hist" => (|| {
                    let mut h = Histogram::new();
                    h.count = obj.get_u64("count")?;
                    h.sum = obj.get_u64("sum")?;
                    h.max = obj.get_u64("max")?;
                    h.underflow = obj.get_u64("underflow")?;
                    h.overflow = obj.get_u64("overflow")?;
                    let Value::Arr(buckets) = obj.get("buckets")? else {
                        return Err("hist buckets: expected array".to_string());
                    };
                    for pair in buckets {
                        let Value::Arr(pair) = pair else {
                            return Err("hist bucket entry: expected [index, count]".to_string());
                        };
                        match pair.as_slice() {
                            [Value::Num(idx), Value::Num(c)] => {
                                for _ in 0..*c {
                                    // Reconstruct occupancy via the bucket's
                                    // lower edge; count/sum/max were set
                                    // exactly above, so only re-add the
                                    // bucket tallies here.
                                    let (lo, _) = Histogram::bucket_range(*idx as usize);
                                    let before = (h.count, h.sum, h.max);
                                    h.record(lo);
                                    (h.count, h.sum, h.max) = before;
                                }
                                Ok(())
                            }
                            _ => Err("hist bucket entry: expected two numbers".to_string()),
                        }?;
                    }
                    snap.histograms.insert(obj.get_str("name")?, h);
                    Ok(())
                })(),
                other => Err(format!("unknown kind `{other}`")),
            };
            res.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        spans.sort_by_key(|(id, _)| *id);
        for (i, (id, span)) in spans.into_iter().enumerate() {
            if id as usize != i {
                return Err(format!("span ids are not dense: expected {i}, got {id}"));
            }
            snap.spans.push(span);
        }
        Ok(snap)
    }

    /// Renders the snapshot as an indented human-readable report:
    /// span tree (children indented under parents), then counters, then
    /// histogram summaries.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("obs: spans\n");
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
            let mut roots = Vec::new();
            for (i, s) in self.spans.iter().enumerate() {
                match s.parent {
                    Some(p) if p < self.spans.len() => children[p].push(i),
                    _ => roots.push(i),
                }
            }
            let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 1)).collect();
            while let Some((i, depth)) = stack.pop() {
                let s = &self.spans[i];
                let wall = match s.wall_ns {
                    Some(ns) => format!("{:.3} ms", ns as f64 / 1e6),
                    None => "(open)".to_string(),
                };
                let _ = writeln!(out, "{:indent$}{:<32} {wall}", "", s.name, indent = depth * 2);
                for &c in children[i].iter().rev() {
                    stack.push((c, depth + 1));
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("obs: counters\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("obs: histograms\n");
            for (name, h) in &self.histograms {
                let _ = write!(out, "  {name}: count={} sum={} max={}", h.count, h.sum, h.max);
                if h.underflow > 0 {
                    let _ = write!(out, " zero={}", h.underflow);
                }
                if h.overflow > 0 {
                    let _ = write!(out, " overflow={}", h.overflow);
                }
                for (idx, c) in h.nonempty_buckets() {
                    let (lo, hi) = Histogram::bucket_range(idx);
                    let _ = write!(out, " [{lo},{hi}):{c}");
                }
                out.push('\n');
            }
        }
        if self.mismatched_exits > 0 {
            let _ = writeln!(out, "obs: WARNING {} mismatched span exits", self.mismatched_exits);
        }
        out
    }
}

/// Minimal JSON value: exactly what the JSONL schema above needs.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Num(u64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Object),
}

/// A parsed JSON object with typed accessors.
#[derive(Debug, Clone, PartialEq, Default)]
struct Object(BTreeMap<String, Value>);

impl Object {
    fn get(&self, key: &str) -> Result<&Value, String> {
        self.0.get(key).ok_or_else(|| format!("missing key `{key}`"))
    }

    fn get_str(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            Value::Str(s) => Ok(s.clone()),
            v => Err(format!("key `{key}`: expected string, got {v:?}")),
        }
    }

    fn get_u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Value::Num(n) => Ok(*n),
            v => Err(format!("key `{key}`: expected number, got {v:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!("expected `{}`, got `{}`", b as char, got as char));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object().map(Value::Obj),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b'n' => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Value::Null)
                } else {
                    Err("bad literal".to_string())
                }
            }
            b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected character `{}`", other as char)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<u64>().map(Value::Num).map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad codepoint".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-borrow from pos-1 so multi-byte UTF-8 stays intact.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or_else(|| "empty".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, got `{}`", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Object, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect_byte(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Object(map));
                }
                other => return Err(format!("expected `,` or `}}`, got `{}`", other as char)),
            }
        }
    }
}

fn parse_object(line: &str) -> Result<Object, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    let obj = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::ObsSink;

    fn sample_snapshot() -> Snapshot {
        let rec = Recorder::new();
        let outer = rec.span_enter("outer");
        let inner = rec.span_enter("inner/child");
        rec.span_exit(inner);
        rec.span_exit(outer);
        rec.counter_add("core.disk_queries", 4096);
        rec.counter_add("geom.grid_builds", 1);
        for v in [0u64, 1, 3, 9, 1 << 20, u64::MAX] {
            rec.record_value("sim.queue_depth", v);
        }
        rec.snapshot()
    }

    #[test]
    fn jsonl_round_trips() {
        let snap = sample_snapshot();
        let text = snap.to_jsonl();
        let back = Snapshot::from_jsonl(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn jsonl_round_trips_open_spans_and_mismatches() {
        let rec = Recorder::new();
        let outer = rec.span_enter("outer");
        let inner = rec.span_enter("inner");
        rec.span_exit(outer); // mismatched on purpose
        rec.span_exit(inner);
        let _still_open = rec.span_enter("open");
        let snap = rec.snapshot();
        assert_eq!(snap.mismatched_exits, 1);
        assert_eq!(snap.spans.iter().filter(|s| s.wall_ns.is_none()).count(), 1);
        let back = Snapshot::from_jsonl(&snap.to_jsonl()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn jsonl_lines_are_parseable_objects() {
        let text = sample_snapshot().to_jsonl();
        assert!(text.lines().count() >= 5);
        for line in text.lines() {
            parse_object(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in ["{", "{\"kind\":}", "{\"kind\":\"span\"} trailing", "[1,2]", "{\"a\":01x}"] {
            assert!(parse_object(bad).is_err(), "accepted `{bad}`");
        }
        assert!(Snapshot::from_jsonl("{\"kind\":\"mystery\"}").is_err());
    }

    #[test]
    fn human_report_lists_spans_counters_hists() {
        let text = sample_snapshot().render_human();
        assert!(text.contains("obs: spans"));
        assert!(text.contains("outer"));
        // The child is indented deeper than its parent.
        let outer_indent = text.lines().find(|l| l.contains("outer")).unwrap().len()
            - text.lines().find(|l| l.contains("outer")).unwrap().trim_start().len();
        let inner_line = text.lines().find(|l| l.contains("inner/child")).unwrap();
        let inner_indent = inner_line.len() - inner_line.trim_start().len();
        assert!(inner_indent > outer_indent);
        assert!(text.contains("core.disk_queries = 4096"));
        assert!(text.contains("sim.queue_depth"));
        assert!(text.contains("zero=1"));
        assert!(text.contains("overflow=1"));
    }
}
