//! Process peak-memory probe (Linux `/proc`, std-only).
//!
//! The million-node bench tiers need to prove a negative — that the
//! streaming kernel *never* materializes an edge list — and the only
//! witness a black-box harness can record is the process's peak resident
//! set. Linux exposes it as the `VmHWM` ("high-water mark") line of
//! `/proc/self/status`; reading it costs one small pread and allocates
//! nothing of consequence. On other platforms (or sandboxes that hide
//! `/proc`) the probe degrades to `None` and callers simply omit the
//! field from their records.

/// Peak resident set size of the current process in kilobytes
/// (`VmHWM` from `/proc/self/status`), or `None` where unavailable.
///
/// The value is monotone over the process lifetime: benches report the
/// *delta* across a tier to attribute growth to that tier's allocations.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Extracts the `VmHWM` value (in kB) from `/proc/self/status` text.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:      123456 kB` — fields are whitespace-separated.
    let value = line.split_whitespace().nth(1)?;
    value.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_format() {
        let status = "Name:\trim\nVmPeak:\t  999 kB\nVmHWM:\t   123456 kB\nVmRSS:\t 12 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(123456));
        assert_eq!(parse_vm_hwm("Name:\trim\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn live_probe_is_positive_on_linux() {
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0, "a running process has a nonzero peak RSS");
        }
    }

    #[test]
    fn peak_is_monotone() {
        let before = peak_rss_kb();
        // Touch a few megabytes so the high-water mark cannot decrease.
        let v = vec![1u8; 4 << 20];
        let after = peak_rss_kb();
        if let (Some(b), Some(a)) = (before, after) {
            assert!(a >= b, "VmHWM must be monotone ({b} -> {a})");
        }
        assert_eq!(v[v.len() - 1], 1);
    }
}
