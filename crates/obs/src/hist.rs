//! Fixed-bucket log-scale histogram.
//!
//! Values land in power-of-two buckets: bucket `i` covers `[2^i, 2^(i+1))`.
//! Zero goes to a dedicated underflow bucket and anything at or above
//! `2^LOG2_BUCKETS` to an overflow bucket, so the bucket array stays a
//! fixed 40 slots regardless of the value range — recording is O(1) with
//! no allocation, which keeps the enabled path cheap inside kernels.

/// Number of power-of-two buckets; values in `[1, 2^LOG2_BUCKETS)` are
/// bucketed exactly, larger ones fall into the overflow bucket.
pub const LOG2_BUCKETS: usize = 40;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total number of recorded samples (including under/overflow).
    pub count: u64,
    /// Saturating sum of all recorded samples.
    pub sum: u64,
    /// Largest recorded sample; 0 when empty.
    pub max: u64,
    /// Samples equal to zero.
    pub underflow: u64,
    /// Samples at or above `2^LOG2_BUCKETS`.
    pub overflow: u64,
    buckets: [u64; LOG2_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            underflow: 0,
            overflow: 0,
            buckets: [0; LOG2_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a non-zero, non-overflowing value lands in; `None` for
    /// zero (underflow) and values at or above `2^LOG2_BUCKETS`
    /// (overflow).
    pub fn bucket_index(value: u64) -> Option<usize> {
        if value == 0 {
            return None;
        }
        let idx = 63 - value.leading_zeros() as usize;
        (idx < LOG2_BUCKETS).then_some(idx)
    }

    /// Half-open value range `[lo, hi)` covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        (1u64 << i, 1u64 << (i + 1))
    }

    /// Records one sample.
    // rim-lint: allow(panic-freedom) — `bucket_index` only returns indices below `LOG2_BUCKETS`
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        match Self::bucket_index(value) {
            Some(i) => self.buckets[i] += 1,
            None if value == 0 => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bucket `i`; 0 for out-of-range indices.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// All regular buckets in index order.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Non-empty regular buckets as `(index, count)` pairs.
    pub fn nonempty_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Folds `other` into `self`. Merging is commutative and associative,
    /// so per-thread histograms can be combined in any order.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2_edges() {
        // 1 is the sole occupant of bucket 0; 2 and 3 share bucket 1.
        assert_eq!(Histogram::bucket_index(1), Some(0));
        assert_eq!(Histogram::bucket_index(2), Some(1));
        assert_eq!(Histogram::bucket_index(3), Some(1));
        assert_eq!(Histogram::bucket_index(4), Some(2));
        // Every power of two opens its own bucket; its predecessor closes
        // the previous one.
        for k in 1..LOG2_BUCKETS {
            let lo = 1u64 << k;
            assert_eq!(Histogram::bucket_index(lo), Some(k), "2^{k}");
            assert_eq!(Histogram::bucket_index(lo - 1), Some(k - 1), "2^{k}-1");
            let (range_lo, range_hi) = Histogram::bucket_range(k);
            assert_eq!(range_lo, lo);
            assert_eq!(range_hi, lo << 1);
        }
    }

    #[test]
    fn underflow_and_overflow_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1u64 << LOG2_BUCKETS); // first overflowing value
        h.record((1u64 << LOG2_BUCKETS) - 1); // last regular value
        h.record(u64::MAX);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.bucket_count(LOG2_BUCKETS - 1), 1);
        assert_eq!(h.count, 4);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(Histogram::bucket_index(0), None);
        assert_eq!(Histogram::bucket_index(u64::MAX), None);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.count, 2);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[0, 1, 5, 1 << 20]);
        let b = mk(&[3, 3, u64::MAX]);
        let c = mk(&[7, 0, 2]);

        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Merge equals recording the concatenation.
        let all = mk(&[0, 1, 5, 1 << 20, 3, 3, u64::MAX, 7, 0, 2]);
        let mut acc = a;
        acc.merge(&b);
        acc.merge(&c);
        assert_eq!(acc, all);
    }
}
