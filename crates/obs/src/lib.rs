//! `rim-obs` — the workspace's zero-dependency observability layer.
//!
//! Library crates call the free functions in this module ([`counter_add`],
//! [`record`], [`span`]) unconditionally; they compile down to an atomic
//! load and a branch while no sink is installed, so instrumentation never
//! taxes library users (`crates/core/tests/obs_overhead.rs` holds the
//! disabled path under 5% of the 4096-node interference kernel). Only the
//! CLI and the bench harness may enable collection by calling
//! [`install_recorder`] — the `obs-no-op-default` lint-gate audit enforces
//! this split, so a library crate can depend on `rim-obs` without ever
//! turning it on.
//!
//! Three primitives cover the workspace's needs:
//!
//! * **Spans** — hierarchical wall-time regions ([`span`] returns an RAII
//!   guard; nesting is tracked per thread, so worker-thread spans root
//!   themselves without locks).
//! * **Counters** — named monotonic `u64` sums ([`counter_add`]).
//! * **Histograms** — log2-bucketed value distributions ([`record`]),
//!   see [`hist::Histogram`].
//!
//! The enabled sink is [`recorder::Recorder`], a sharded mutex registry
//! reusing the per-slot-lock discipline of `rim-par`; snapshots export as
//! a human-readable tree or JSONL (see [`recorder::Snapshot`]).

#![forbid(unsafe_code)]

pub mod hist;
pub mod mem;
pub mod recorder;
pub mod report;

pub use hist::Histogram;
pub use mem::peak_rss_kb;
pub use recorder::{Recorder, Snapshot, SpanRecord};

use std::sync::OnceLock;

/// Opaque handle for an open span, produced by [`ObsSink::span_enter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    /// Sentinel for "no span recorded" (disabled sink, no-op sink).
    pub const NONE: SpanId = SpanId(usize::MAX);

    pub(crate) fn new(index: usize) -> SpanId {
        SpanId(index)
    }

    /// Arena index of the span, or `None` for the [`SpanId::NONE`]
    /// sentinel.
    pub fn index(self) -> Option<usize> {
        (self.0 != usize::MAX).then_some(self.0)
    }
}

/// Destination for observability events. Implementations must be cheap
/// and non-blocking enough to sit on hot paths; the two in-repo ones are
/// [`NoopSink`] and [`Recorder`].
pub trait ObsSink: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Records one sample into the named histogram.
    fn record_value(&self, name: &'static str, value: u64);
    /// Opens a span; the returned id must later be passed to
    /// [`ObsSink::span_exit`].
    fn span_enter(&self, name: &'static str) -> SpanId;
    /// Closes a previously opened span.
    fn span_exit(&self, id: SpanId);
}

/// Sink that drops everything — the behaviour every library crate gets
/// by default (no sink installed is equivalent to this sink).
pub struct NoopSink;

impl ObsSink for NoopSink {
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn record_value(&self, _name: &'static str, _value: u64) {}
    fn span_enter(&self, _name: &'static str) -> SpanId {
        SpanId::NONE
    }
    fn span_exit(&self, _id: SpanId) {}
}

static SINK: OnceLock<&'static dyn ObsSink> = OnceLock::new();
static RECORDER: OnceLock<Recorder> = OnceLock::new();

/// Installs `sink` as the process-wide sink. The first installation wins
/// and is permanent for the life of the process; returns `false` when a
/// sink was already installed.
pub fn install(sink: &'static dyn ObsSink) -> bool {
    SINK.set(sink).is_ok()
}

/// Installs (idempotently) the process-wide [`Recorder`] and returns it.
/// Only the CLI and the bench harness may call this — library crates are
/// held to the no-op default by the `obs-no-op-default` lint audit.
pub fn install_recorder() -> &'static Recorder {
    let rec = RECORDER.get_or_init(Recorder::new);
    let _ = SINK.set(rec);
    rec
}

/// The installed recorder, if [`install_recorder`] has run.
pub fn global() -> Option<&'static Recorder> {
    RECORDER.get()
}

/// Whether an enabled sink is installed. Kernels batching per-item work
/// (e.g. per-query candidate counts) branch on this once instead of
/// paying a call per item.
#[inline]
pub fn active() -> bool {
    SINK.get().is_some()
}

#[inline]
fn sink() -> Option<&'static dyn ObsSink> {
    SINK.get().copied()
}

/// Adds `delta` to the named counter (no-op while disabled).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if let Some(s) = sink() {
        s.counter_add(name, delta);
    }
}

/// Records one histogram sample (no-op while disabled).
#[inline]
pub fn record(name: &'static str, value: u64) {
    if let Some(s) = sink() {
        s.record_value(name, value);
    }
}

/// RAII guard returned by [`span`]; exits the span on drop.
pub struct SpanGuard {
    id: SpanId,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id != SpanId::NONE {
            if let Some(s) = sink() {
                s.span_exit(self.id);
            }
        }
    }
}

/// Opens a named span ending when the returned guard drops (inert while
/// disabled). Bind the guard — `let _span = rim_obs::span("phase");` — so
/// it lives to the end of the scope.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    match sink() {
        Some(s) => SpanGuard { id: s.span_enter(name) },
        None => SpanGuard { id: SpanId::NONE },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_returns_the_sentinel() {
        let s = NoopSink;
        s.counter_add("x", 1);
        s.record_value("x", 1);
        let id = s.span_enter("x");
        assert_eq!(id, SpanId::NONE);
        assert_eq!(id.index(), None);
        s.span_exit(id);
    }

    #[test]
    fn span_ids_expose_their_arena_index() {
        assert_eq!(SpanId::new(3).index(), Some(3));
        assert_eq!(SpanId::NONE.index(), None);
    }
}
