//! The default [`ObsSink`] implementation: a sharded in-memory registry.
//!
//! Counters and histograms live in a fixed array of mutex-guarded shards
//! (the same per-slot-mutex discipline `rim-par` uses for its output
//! slots): a metric name hashes to one shard, so threads updating
//! different metrics almost never contend and no lock is ever held across
//! user code. Spans go into a single append-only arena; each thread keeps
//! its own open-span stack in a thread-local, so parentage never needs a
//! global structure.

use crate::hist::Histogram;
use crate::{ObsSink, SpanId};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of counter/histogram shards; a small power of two keeps the
/// name-hash modulo cheap while spreading unrelated metrics apart.
const SHARDS: usize = 16;

/// Recovers a lock even if another thread panicked while holding it —
/// every critical section below only performs map inserts and integer
/// arithmetic, so the value is consistent regardless.
fn relock<T>(r: std::sync::LockResult<T>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// FNV-1a over the metric name; stable, dependency-free shard selector.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

#[derive(Default)]
struct Shard {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    hists: Mutex<BTreeMap<&'static str, Histogram>>,
}

struct SpanSlot {
    name: &'static str,
    parent: Option<usize>,
    thread: u64,
    start: Instant,
    wall_ns: Option<u64>,
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Indices (into the span arena) of this thread's open spans,
    /// innermost last.
    static SPAN_STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Small dense id for this thread, assigned on first span.
    /// Relaxed: ids only need uniqueness, not any ordering with other state.
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Thread-safe metrics registry; the enabled [`ObsSink`].
pub struct Recorder {
    shards: [Shard; SHARDS],
    spans: Mutex<Vec<SpanSlot>>,
    /// Span exits whose id was not the top of the entering thread's
    /// stack — a well-formedness violation surfaced in snapshots.
    mismatched_exits: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Recorder {
            shards: std::array::from_fn(|_| Shard::default()),
            spans: Mutex::new(Vec::new()),
            mismatched_exits: AtomicU64::new(0),
        }
    }

    /// Current value of a counter; 0 if it was never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        let shard = &self.shards[shard_of(name)];
        relock(shard.counters.lock()).get(name).copied().unwrap_or(0)
    }

    /// All counters as an ordered name → value map.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (&k, &v) in relock(shard.counters.lock()).iter() {
                out.insert(k.to_string(), v);
            }
        }
        out
    }

    /// Number of spans entered but not yet exited.
    pub fn open_span_count(&self) -> usize {
        relock(self.spans.lock()).iter().filter(|s| s.wall_ns.is_none()).count()
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let mut histograms = BTreeMap::new();
        for shard in &self.shards {
            for (&k, v) in relock(shard.hists.lock()).iter() {
                histograms.insert(k.to_string(), v.clone());
            }
        }
        let spans = relock(self.spans.lock())
            .iter()
            .map(|s| SpanRecord {
                name: s.name.to_string(),
                parent: s.parent,
                thread: s.thread,
                wall_ns: s.wall_ns,
            })
            .collect();
        Snapshot {
            counters: self.counters(),
            histograms,
            spans,
            // Relaxed: a monotone diagnostic counter; the snapshot promises
            // no cross-metric consistency.
            mismatched_exits: self.mismatched_exits.load(Ordering::Relaxed),
        }
    }
}

impl ObsSink for Recorder {
    // rim-lint: allow(panic-freedom) — `shard_of` reduces modulo `SHARDS`
    fn counter_add(&self, name: &'static str, delta: u64) {
        let shard = &self.shards[shard_of(name)];
        *relock(shard.counters.lock()).entry(name).or_insert(0) += delta;
    }

    // rim-lint: allow(panic-freedom) — `shard_of` reduces modulo `SHARDS`
    fn record_value(&self, name: &'static str, value: u64) {
        let shard = &self.shards[shard_of(name)];
        relock(shard.hists.lock()).entry(name).or_default().record(value);
    }

    // The arena is non-empty right after the push, and the span clock feeds
    // wall_ns in the observability snapshot only; engine results never read it.
    // rim-lint: allow(panic-freedom, engine-determinism)
    fn span_enter(&self, name: &'static str) -> SpanId {
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
        let thread = THREAD_ID.with(|id| *id);
        let idx = {
            let mut spans = relock(self.spans.lock());
            spans.push(SpanSlot { name, parent, thread, start: Instant::now(), wall_ns: None });
            spans.len() - 1
        };
        SPAN_STACK.with(|s| s.borrow_mut().push(idx));
        SpanId::new(idx)
    }

    fn span_exit(&self, id: SpanId) {
        let Some(idx) = id.index() else { return };
        let well_formed = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&idx) {
                stack.pop();
                true
            } else {
                // Out-of-order or cross-thread exit: drop the id wherever
                // it is so the stack cannot wedge, but count the breach.
                stack.retain(|&open| open != idx);
                false
            }
        });
        if !well_formed {
            // Relaxed: monotone diagnostic counter; publishes no other state.
            self.mismatched_exits.fetch_add(1, Ordering::Relaxed);
        }
        let mut spans = relock(self.spans.lock());
        if let Some(slot) = spans.get_mut(idx) {
            if slot.wall_ns.is_none() {
                slot.wall_ns = Some(slot.start.elapsed().as_nanos() as u64);
            }
        }
    }
}

/// One completed (or still-open) span in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static name passed to `span_enter`.
    pub name: String,
    /// Arena index of the enclosing span on the same thread, if any.
    pub parent: Option<usize>,
    /// Dense id of the thread that entered the span.
    pub thread: u64,
    /// Elapsed wall time; `None` while the span is still open.
    pub wall_ns: Option<u64>,
}

/// Point-in-time copy of a [`Recorder`]'s contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter name → accumulated value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → bucketed samples.
    pub histograms: BTreeMap<String, Histogram>,
    /// Spans in arena (entry) order; `parent` indexes into this vec.
    pub spans: Vec<SpanRecord>,
    /// Span exits that did not match the innermost open span.
    pub mismatched_exits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        rec.counter_add("t.hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter("t.hits"), 8000);
        assert_eq!(rec.counter("t.other"), 0);
    }

    #[test]
    fn histograms_merge_across_threads() {
        // Four threads each record the same sample set; the shared
        // histogram must equal one thread's histogram merged four times —
        // i.e. concurrent recording behaves like associative merging.
        let rec = Recorder::new();
        let samples: Vec<u64> = (0..64).map(|i| i * i).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for &v in &samples {
                        rec.record_value("t.samples", v);
                    }
                });
            }
        });
        let mut one = Histogram::new();
        for &v in &samples {
            one.record(v);
        }
        let mut expected = Histogram::new();
        for _ in 0..4 {
            expected.merge(&one);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.histograms["t.samples"], expected);
    }

    #[test]
    fn span_parentage_follows_nesting() {
        let rec = Recorder::new();
        let outer = rec.span_enter("outer");
        let inner = rec.span_enter("inner");
        rec.span_exit(inner);
        let sibling = rec.span_enter("sibling");
        rec.span_exit(sibling);
        rec.span_exit(outer);
        let snap = rec.snapshot();
        assert_eq!(snap.mismatched_exits, 0);
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].parent, None);
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[2].parent, Some(0));
        assert!(snap.spans.iter().all(|s| s.wall_ns.is_some()));
        assert_eq!(rec.open_span_count(), 0);
    }

    #[test]
    fn mismatched_exit_is_counted_not_wedged() {
        let rec = Recorder::new();
        let outer = rec.span_enter("outer");
        let inner = rec.span_enter("inner");
        // Exiting the outer span first is a well-formedness violation.
        rec.span_exit(outer);
        assert_eq!(rec.snapshot().mismatched_exits, 1);
        // The stack self-heals: the inner span can still exit cleanly.
        rec.span_exit(inner);
        let snap = rec.snapshot();
        assert_eq!(snap.mismatched_exits, 1);
        assert_eq!(rec.open_span_count(), 0);
        // Double exit of an already-closed span is counted too.
        rec.span_exit(inner);
        assert_eq!(rec.snapshot().mismatched_exits, 2);
    }

    #[test]
    fn snapshot_is_a_stable_copy() {
        let rec = Recorder::new();
        rec.counter_add("a", 1);
        let before = rec.snapshot();
        rec.counter_add("a", 1);
        assert_eq!(before.counters["a"], 1);
        assert_eq!(rec.snapshot().counters["a"], 2);
    }
}
