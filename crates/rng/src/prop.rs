//! A small seeded property-test harness (the in-repo `proptest`
//! replacement).
//!
//! [`check`] runs a property over `cases` inputs drawn from a generator
//! closure. Seeding is fixed and derived from the test name, so every
//! run — local or CI — exercises exactly the same cases; a failure
//! prints the case index, the reproduction seed, and the generated
//! value's `Debug` form before propagating the panic.
//!
//! There is no shrinking: generators here are small (tens of nodes), so
//! failing cases print compactly, and any case worth keeping is
//! promoted to an explicit named regression test (see
//! `crates/core/tests/properties.rs` for examples).

use crate::SmallRng;

/// Default number of cases per property, mirroring proptest's default.
pub const DEFAULT_CASES: u32 = 256;

/// FNV-1a, used to derive a stable per-property seed from its name.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `prop` on `cases` values drawn from `gen`, panicking with a
/// reproduction report on the first failure.
///
/// `name` must be unique per property (conventionally the test function
/// name): it determines the seed stream. The RNG handed to `gen` for
/// case `i` is seeded with `fnv1a(name) ^ i`, so a failing case can be
/// re-generated in isolation.
pub fn check<T, G, P>(name: &str, cases: u32, mut gen: G, mut prop: P)
where
    T: std::fmt::Debug,
    G: FnMut(&mut SmallRng) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    let base = fnv1a(name);
    for i in 0..u64::from(cases) {
        let seed = base ^ i;
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = gen(&mut rng);
        if let Err(msg) = prop(&input) {
            // Test harness: a failing property must abort the enclosing
            // #[test]. rim-lint: allow(no-unwrap-in-lib)
            panic!(
                "property `{name}` failed at case {i}/{cases} (seed {seed:#x}):\n  \
                 {msg}\n  input: {input:?}"
            );
        }
    }
}

/// [`check`] with [`DEFAULT_CASES`].
pub fn check_default<T, G, P>(name: &str, gen: G, prop: P)
where
    T: std::fmt::Debug,
    G: FnMut(&mut SmallRng) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    check(name, DEFAULT_CASES, gen, prop)
}

/// `prop_assert!`-style helper: evaluates a condition inside a property
/// body, turning a failure into `Err` with the formatted message.
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!`-style helper.
#[macro_export]
macro_rules! prop_ensure_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check(
            "passing",
            64,
            |rng| rng.gen_range(0usize..10),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn cases_are_reproducible() {
        let mut a = Vec::new();
        check("repro", 16, |rng| rng.next_u64(), |&v| {
            a.push(v);
            Ok(())
        });
        let mut b = Vec::new();
        check("repro", 16, |rng| rng.next_u64(), |&v| {
            b.push(v);
            Ok(())
        });
        assert_eq!(a, b);
        let mut c = Vec::new();
        check("other-name", 16, |rng| rng.next_u64(), |&v| {
            c.push(v);
            Ok(())
        });
        assert_ne!(a, c, "different properties draw different cases");
    }

    #[test]
    #[should_panic(expected = "property `failing` failed at case")]
    fn failing_property_reports_case_and_seed() {
        check("failing", 32, |rng| rng.gen_range(0usize..100), |&v| {
            prop_ensure!(v < 90, "value {v} too large");
            Ok(())
        });
    }

    #[test]
    fn ensure_macros_format_messages() {
        fn body(x: usize) -> Result<(), String> {
            prop_ensure!(x % 2 == 0, "odd: {x}");
            prop_ensure_eq!(x / 2 * 2, x);
            Ok(())
        }
        assert!(body(4).is_ok());
        assert_eq!(body(3), Err("odd: 3".to_string()));
    }
}
