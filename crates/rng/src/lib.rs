//! Deterministic in-repo PRNG and property-test harness.
//!
//! The workspace builds with **zero external dependencies** (an invariant
//! machine-enforced by `rim-xtask`'s dependency audit), so randomness is
//! provided here: [`SmallRng`] is a splitmix64-seeded xoshiro256++
//! generator exposing the `gen` / `gen_range` / `gen_bool` surface the
//! workspace previously used from the `rand` crate's `SmallRng`.
//!
//! Every generator in this workspace is seeded explicitly; there is no
//! entropy source and no global state, so every experiment and test run
//! is bit-reproducible.
//!
//! The [`prop`] module is the matching replacement for `proptest`: a
//! fixed-seed generator loop with failing-case printout.

#![forbid(unsafe_code)]

pub mod prop;

/// A small, fast, deterministic PRNG: xoshiro256++ (Blackman & Vigna),
/// seeded by expanding a `u64` through splitmix64.
///
/// Statistical quality is far beyond what the simulator and workload
/// generators need, the state is 32 bytes, and generation is a handful
/// of ALU ops — the same trade the `rand` crate's `SmallRng` makes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// One step of splitmix64; used only to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator from a `u64` seed (splitmix64-expanded, so
    /// nearby seeds yield statistically independent streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// The raw 256-bit generator state, for snapshot/restore of
    /// long-running deterministic workloads (the churn simulator
    /// serializes it so a restored run continues the *same* stream).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state previously read with
    /// [`SmallRng::state`]. The all-zero state is the one fixed point of
    /// xoshiro256++ (it would emit zeros forever) and can never be
    /// produced by [`SmallRng::seed_from_u64`]; it is rejected here so a
    /// corrupted snapshot cannot smuggle in a degenerate stream.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0; 4] {
            return None;
        }
        Some(SmallRng { s })
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample of type `T` — `f64` in `[0, 1)`, integers over
    /// their full range, `bool` fair.
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a range (`a..b` or, for floats, `a..=b`).
    ///
    /// Integer ranges are sampled without modulo bias (rejection from a
    /// truncated zone). Panics on empty ranges, mirroring `rand`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Unbiased uniform integer in `[0, span)`; `span >= 1`.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span >= 1);
        // Rejection zone: the largest multiple of `span` that fits in
        // u64; values past it would bias the low residues.
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Types [`SmallRng::gen`] can produce.
pub trait FromRng {
    /// Draws one uniform sample.
    fn from_rng(rng: &mut SmallRng) -> Self;
}

impl FromRng for u64 {
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// The top 53 bits scaled by 2⁻⁵³: uniform on `[0, 1)` with full
    /// double precision, the standard float-from-bits construction.
    fn from_rng(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample(self, rng: &mut SmallRng) -> u64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below(self.end - self.start)
    }
}

impl SampleRange<u32> for std::ops::Range<u32> {
    fn sample(self, rng: &mut SmallRng) -> u32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let x = self.start + rng.gen::<f64>() * (self.end - self.start);
        // Scaling can round onto the excluded endpoint; fold it back.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_xoshiro_stream() {
        // Reference values computed independently from the published
        // splitmix64 + xoshiro256++ algorithms; pins the implementation
        // (and thus every seeded workload in the workspace) forever.
        let mut r = SmallRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0x5317_5D61_490B_23DF);
        assert_eq!(r.next_u64(), 0x61DA_6F3D_C380_D507);
        assert_eq!(r.next_u64(), 0x5C0F_DF91_EC9A_7BFC);
        assert_eq!(r.next_u64(), 0x02EE_BF8C_3BBE_5E1A);
        let mut r = SmallRng::seed_from_u64(42);
        assert_eq!(r.next_u64(), 0xD076_4D4F_4476_689F);
        assert_eq!(r.next_u64(), 0x519E_4174_576F_3791);
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state()).expect("live state restores");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(SmallRng::from_state([0; 4]), None, "degenerate state rejected");
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            }
        }
        assert!((4_500..5_500).contains(&lo), "lo={lo}");
    }

    #[test]
    fn integer_ranges_cover_uniformly_without_bias() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.gen_range(0usize..7)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
        // Offset ranges respect both bounds.
        for _ in 0..1_000 {
            let v = r.gen_range(5u64..8);
            assert!((5..8).contains(&v));
            let w = r.gen_range(3u32..4);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
            let z = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(z > 0.0 && z < 1.0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn bool_and_int_gen_shapes() {
        let mut r = SmallRng::seed_from_u64(17);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads));
        let _: u32 = r.gen();
        let _: usize = r.gen();
    }
}
