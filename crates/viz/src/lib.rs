//! `rim-viz` — hand-rolled SVG rendering for the paper's figures.
//!
//! The reproduction environment has no plotting conveniences, so this
//! crate writes SVG directly:
//!
//! * [`svg::SvgCanvas`] — a tiny element builder with a world-to-canvas
//!   transform (no external crates);
//! * [`render::render_topology`] — nodes, links, and the dashed
//!   interference disks of Figure 2;
//! * [`render::render_highway_arcs`] — the arc diagrams of Figures 8
//!   and 9 (edges drawn as semicircular arcs over the highway, hubs as
//!   hollow points, optional logarithmic x-axis for exponential chains).

#![forbid(unsafe_code)]

pub mod render;
pub mod svg;

pub use render::{render_highway_arcs, render_topology, RenderOptions};
pub use svg::SvgCanvas;
