//! A minimal SVG element builder with a world-to-canvas transform.

use rim_geom::{Aabb, Point};
use std::fmt::Write as _;

/// An SVG document under construction.
///
/// World coordinates are mapped into a fixed-size canvas with a margin;
/// the y-axis is flipped (SVG grows downward, geometry grows upward).
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    margin: f64,
    world: Aabb,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas mapping the `world` box into `width × height`
    /// pixels with a `margin`.
    pub fn new(world: Aabb, width: f64, height: f64, margin: f64) -> Self {
        assert!(!world.is_empty(), "empty world box");
        assert!(width > 2.0 * margin && height > 2.0 * margin);
        SvgCanvas {
            width,
            height,
            margin,
            world,
            body: String::new(),
        }
    }

    /// World-to-canvas transform.
    pub fn map(&self, p: Point) -> (f64, f64) {
        let w = self.world.width().max(1e-12);
        let h = self.world.height().max(1e-12);
        let sx = (self.width - 2.0 * self.margin) / w;
        let sy = (self.height - 2.0 * self.margin) / h;
        // Uniform scale keeps distances undistorted (disks stay round).
        let s = sx.min(sy);
        let x = self.margin + (p.x - self.world.min.x) * s;
        let y = self.height - self.margin - (p.y - self.world.min.y) * s;
        (x, y)
    }

    /// Scale factor (world units → pixels).
    pub fn scale(&self) -> f64 {
        let w = self.world.width().max(1e-12);
        let h = self.world.height().max(1e-12);
        ((self.width - 2.0 * self.margin) / w).min((self.height - 2.0 * self.margin) / h)
    }

    /// Draws a line between world points.
    pub fn line(&mut self, a: Point, b: Point, stroke: &str, width: f64) {
        let (x1, y1) = self.map(a);
        let (x2, y2) = self.map(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// Draws a circle with *world* radius (scaled with the canvas).
    pub fn circle_world(&mut self, c: Point, r: f64, stroke: &str, fill: &str, dashed: bool) {
        let (cx, cy) = self.map(c);
        let rr = r * self.scale();
        let dash = if dashed { r#" stroke-dasharray="4 3""# } else { "" };
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{rr:.2}" stroke="{stroke}" fill="{fill}"{dash}/>"#
        );
    }

    /// Draws a fixed-pixel-radius dot (node markers).
    pub fn dot(&mut self, c: Point, px: f64, fill: &str, stroke: &str) {
        let (cx, cy) = self.map(c);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{px}" stroke="{stroke}" fill="{fill}"/>"#
        );
    }

    /// Draws a semicircular arc over the x-axis between two world points
    /// (the Figure 8 edge style).
    pub fn arc(&mut self, a: Point, b: Point, stroke: &str, width: f64) {
        let (x1, y1) = self.map(a);
        let (x2, y2) = self.map(b);
        let r = (x2 - x1).abs() / 2.0;
        let _ = writeln!(
            self.body,
            r#"<path d="M {x1:.2} {y1:.2} A {r:.2} {r:.2} 0 0 1 {x2:.2} {y2:.2}" stroke="{stroke}" fill="none" stroke-width="{width}"/>"#
        );
    }

    /// Places a text label at a world point.
    pub fn text(&mut self, at: Point, content: &str, size: f64) {
        let (x, y) = self.map(at);
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif">{content}</text>"#
        );
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_canvas() -> SvgCanvas {
        SvgCanvas::new(
            Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            400.0,
            400.0,
            20.0,
        )
    }

    #[test]
    fn transform_flips_y_and_respects_margin() {
        let c = unit_canvas();
        let (x0, y0) = c.map(Point::new(0.0, 0.0));
        let (x1, y1) = c.map(Point::new(1.0, 1.0));
        assert_eq!((x0, y0), (20.0, 380.0));
        assert_eq!((x1, y1), (380.0, 20.0));
    }

    #[test]
    fn elements_appear_in_output() {
        let mut c = unit_canvas();
        c.line(Point::new(0.0, 0.0), Point::new(1.0, 1.0), "black", 1.0);
        c.dot(Point::new(0.5, 0.5), 3.0, "black", "none");
        c.circle_world(Point::new(0.5, 0.5), 0.25, "gray", "none", true);
        c.arc(Point::new(0.0, 0.0), Point::new(1.0, 0.0), "blue", 1.0);
        c.text(Point::new(0.1, 0.9), "I(u)=2", 12.0);
        let s = c.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert_eq!(s.matches("<line").count(), 1);
        assert_eq!(s.matches("<circle").count(), 2);
        assert!(s.contains("stroke-dasharray"));
        assert!(s.contains("<path"));
        assert!(s.contains("I(u)=2"));
    }

    #[test]
    fn world_radius_scales_uniformly() {
        let c = unit_canvas();
        // 360 px across 1.0 world units.
        assert!((c.scale() - 360.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_world_box_is_rejected() {
        SvgCanvas::new(Aabb::EMPTY, 100.0, 100.0, 5.0);
    }
}
