//! Figure-style renderers.

use crate::svg::SvgCanvas;
use rim_geom::{Aabb, Point};
use rim_highway::HighwayInstance;
use rim_udg::Topology;

/// Rendering options for [`render_topology`].
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Canvas width in pixels.
    pub width: f64,
    /// Canvas height in pixels.
    pub height: f64,
    /// Draw the dashed interference disks `D(u, r_u)` (Figure 2 style).
    pub show_disks: bool,
    /// Annotate each node with its interference value `I(v)`.
    pub show_interference: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 640.0,
            height: 480.0,
            show_disks: false,
            show_interference: false,
        }
    }
}

/// Renders a topology: links as lines, nodes as dots, optionally the
/// interference disks and per-node `I(v)` labels.
pub fn render_topology(t: &Topology, opts: RenderOptions) -> String {
    let nodes = t.nodes();
    let mut world = nodes.bbox();
    if opts.show_disks {
        // Disks extend past the node bounding box.
        let r_max = t.radii().iter().copied().fold(0.0f64, f64::max);
        world = world
            .expand(world.min - Point::new(r_max, r_max))
            .expand(world.max + Point::new(r_max, r_max));
    }
    if world.is_empty() {
        world = Aabb::new(Point::ORIGIN, Point::new(1.0, 1.0));
    }
    // rim-lint: allow(float-eq) — exact degenerate-box guard
    if world.width() == 0.0 || world.height() == 0.0 {
        // Degenerate (e.g. highway) boxes get a little vertical room.
        let pad = world.width().max(world.height()).max(1.0) * 0.1;
        world = world
            .expand(world.min - Point::new(pad, pad))
            .expand(world.max + Point::new(pad, pad));
    }
    let mut c = SvgCanvas::new(world, opts.width, opts.height, 24.0);
    if opts.show_disks {
        for u in 0..t.num_nodes() {
            let r = t.radius(u);
            if r > 0.0 {
                c.circle_world(nodes.pos(u), r, "#888888", "none", true);
            }
        }
    }
    for e in t.edges() {
        c.line(nodes.pos(e.u), nodes.pos(e.v), "black", 1.2);
    }
    let labels = opts
        .show_interference
        .then(|| rim_core::receiver::interference_vector(t));
    for u in 0..t.num_nodes() {
        c.dot(nodes.pos(u), 3.5, "black", "none");
        if let Some(iv) = &labels {
            let offset = Point::new(world.width() * 0.01, world.height() * 0.02);
            c.text(nodes.pos(u) + offset, &iv[u].to_string(), 11.0);
        }
    }
    c.finish()
}

/// Renders a highway topology as an arc diagram (Figure 8/9 style):
/// nodes on a horizontal axis, every link a semicircular arc, hub nodes
/// (degree ≥ 2) hollow. With `log_scale` the x-axis is logarithmic in
/// the node *gaps* — the representation the paper uses for the
/// exponential node chain, where a linear axis would collapse the left
/// end.
pub fn render_highway_arcs(instance: &HighwayInstance, t: &Topology, log_scale: bool) -> String {
    assert_eq!(instance.len(), t.num_nodes());
    let n = instance.len();
    // Display positions: either raw or index-spaced via cumulative
    // log-gaps.
    let display_x: Vec<f64> = if log_scale {
        let mut xs = vec![0.0f64];
        for i in 0..n.saturating_sub(1) {
            let g = instance.gap(i).max(f64::MIN_POSITIVE);
            xs.push(xs[i] + (1.0 + g.log2().abs()).max(1.0));
        }
        xs
    } else {
        instance.positions().to_vec()
    };
    let span = display_x.last().copied().unwrap_or(1.0) - display_x.first().copied().unwrap_or(0.0);
    let span = span.max(1.0);
    let world = Aabb::new(
        Point::new(display_x.first().copied().unwrap_or(0.0), -span * 0.1),
        Point::new(
            display_x.last().copied().unwrap_or(1.0),
            span * 0.55, // room for the tallest arc
        ),
    );
    let mut c = SvgCanvas::new(world, 900.0, 420.0, 24.0);
    // Axis.
    c.line(
        Point::new(world.min.x, 0.0),
        Point::new(world.max.x, 0.0),
        "#bbbbbb",
        0.8,
    );
    for e in t.edges() {
        c.arc(
            Point::new(display_x[e.u], 0.0),
            Point::new(display_x[e.v], 0.0),
            "black",
            1.0,
        );
    }
    let iv = rim_core::receiver::interference_vector(t);
    for u in 0..n {
        let p = Point::new(display_x[u], 0.0);
        if t.graph().degree(u) >= 2 {
            c.dot(p, 4.0, "white", "black"); // hollow hub, as in Figure 8
        } else {
            c.dot(p, 3.0, "black", "none");
        }
        c.text(p + Point::new(0.0, -span * 0.06), &iv[u].to_string(), 10.0);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_highway::{a_exp, exponential_chain};
    use rim_udg::NodeSet;

    fn sample() -> Topology {
        Topology::from_pairs(
            NodeSet::new(vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.2),
                Point::new(1.0, 0.0),
            ]),
            &[(0, 1), (1, 2)],
        )
    }

    #[test]
    fn topology_render_has_all_elements() {
        let t = sample();
        let svg = render_topology(
            &t,
            RenderOptions {
                show_disks: true,
                show_interference: true,
                ..RenderOptions::default()
            },
        );
        // 2 edges, 3 dots + 3 disks, 3 labels.
        assert_eq!(svg.matches("<line").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert_eq!(svg.matches("<text").count(), 3);
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn plain_render_omits_disks_and_labels() {
        let svg = render_topology(&sample(), RenderOptions::default());
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("<text").count(), 0);
    }

    #[test]
    fn arc_diagram_of_aexp_marks_hubs_hollow() {
        let chain = exponential_chain(16);
        let r = a_exp(&chain);
        let svg = render_highway_arcs(&chain, &r.topology, true);
        // One arc per edge.
        assert_eq!(svg.matches("<path").count(), r.topology.num_edges());
        // Hollow hubs: fill="white".
        let hollow = svg.matches(r#"fill="white""#).count();
        let hubs_with_degree_2plus = (0..chain.len())
            .filter(|&u| r.topology.graph().degree(u) >= 2)
            .count();
        // +1 for the background rect fill="white".
        assert_eq!(hollow, hubs_with_degree_2plus + 1);
    }

    #[test]
    fn highway_render_on_uniform_chain() {
        let h = HighwayInstance::new(vec![0.0, 0.3, 0.6, 0.9]);
        let t = h.linear_topology();
        let svg = render_highway_arcs(&h, &t, false);
        assert_eq!(svg.matches("<path").count(), 3);
        assert!(svg.starts_with("<svg"));
    }
}
