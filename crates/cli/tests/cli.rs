//! End-to-end tests driving the `rim` binary.

use std::path::PathBuf;
use std::process::Command;

fn rim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rim"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rim_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_lists_all_commands() {
    let out = rim().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for cmd in ["generate", "control", "analyze", "optimal", "simulate", "churn", "schedule"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_usage_hint() {
    let out = rim().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn generate_control_analyze_pipeline() {
    let dir = tmp_dir("pipeline");
    let nodes = dir.join("nodes.txt");
    let topo = dir.join("topo.txt");

    let out = rim()
        .args([
            "generate", "--kind", "uniform-square", "--n", "40", "--side", "1.5", "--seed",
            "7", "--out",
        ])
        .arg(&nodes)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = rim()
        .args(["control", "--algo", "mst", "--nodes"])
        .arg(&nodes)
        .arg("--out")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let topo_text = std::fs::read_to_string(&topo).unwrap();
    assert!(topo_text.contains("preserves connectivity = true"));

    let out = rim()
        .args(["analyze", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("receiver interference"));
    assert!(text.contains("preserves connectivity:   true"));
    assert!(text.contains("interference engine:      auto"));

    // Every explicit engine selection must report the same numbers.
    let mut reports = Vec::new();
    for engine in ["naive", "indexed", "parallel", "streaming"] {
        let out = rim()
            .args(["analyze", "--engine", engine, "--nodes"])
            .arg(&nodes)
            .arg("--topology")
            .arg(&topo)
            .output()
            .unwrap();
        assert!(out.status.success(), "engine {engine}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains(&format!("interference engine:      {engine}")));
        let numbers: Vec<String> = text
            .lines()
            .filter(|l| l.starts_with("receiver interference") || l.starts_with("mean node"))
            .map(String::from)
            .collect();
        reports.push(numbers);
    }
    assert!(reports.windows(2).all(|w| w[0] == w[1]), "engines disagree: {reports:?}");
}

#[test]
fn control_engines_agree_byte_for_byte() {
    let dir = tmp_dir("control_engines");
    let nodes = dir.join("nodes.txt");
    assert!(rim()
        .args(["generate", "--kind", "uniform-square", "--n", "120", "--side", "2.0", "--seed",
               "11", "--out"])
        .arg(&nodes)
        .status()
        .unwrap()
        .success());
    for algo in ["gg", "rng", "lmst", "xtc", "yao6"] {
        let mut outputs = Vec::new();
        for engine in ["naive", "indexed", "parallel", "auto"] {
            let out_file = dir.join(format!("{algo}_{engine}.txt"));
            let out = rim()
                .args(["control", "--algo", algo, "--engine", engine, "--nodes"])
                .arg(&nodes)
                .arg("--out")
                .arg(&out_file)
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "algo {algo} engine {engine}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            outputs.push(std::fs::read_to_string(&out_file).unwrap());
        }
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "algo {algo}: engines produced different topology files"
        );
    }
}

#[test]
fn control_timing_reports_stages_on_stderr() {
    let dir = tmp_dir("control_timing");
    let nodes = dir.join("nodes.txt");
    std::fs::write(&nodes, "0.0\n0.4\n0.8\n1.2\n").unwrap();
    let out = rim()
        .args(["control", "--algo", "gg", "--timing", "true", "--nodes"])
        .arg(&nodes)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8(out.stderr).unwrap();
    for stage in ["load", "udg", "construct", "write"] {
        assert!(err.contains(stage), "timing line missing `{stage}`: {err}");
    }
    // Topology output on stdout stays machine-readable: index pairs and
    // `#` comments only, no timing text.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.contains("timing"), "{stdout}");
    assert!(stdout.lines().all(|l| l.starts_with('#') || l.split_whitespace().count() == 2));
}

#[test]
fn control_rejects_unknown_engine() {
    let dir = tmp_dir("control_bad_engine");
    let nodes = dir.join("nodes.txt");
    std::fs::write(&nodes, "0.0\n0.4\n").unwrap();
    let out = rim()
        .args(["control", "--algo", "gg", "--engine", "warp", "--nodes"])
        .arg(&nodes)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}

#[test]
fn analyze_rejects_unknown_engine() {
    let dir = tmp_dir("bad_engine");
    let nodes = dir.join("nodes.txt");
    let topo = dir.join("topo.txt");
    std::fs::write(&nodes, "0.0\n0.4\n").unwrap();
    std::fs::write(&topo, "0 1\n").unwrap();
    let out = rim()
        .args(["analyze", "--engine", "warp", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}

#[test]
fn highway_algorithms_require_1d_instances() {
    let dir = tmp_dir("highway_guard");
    let nodes = dir.join("nodes2d.txt");
    std::fs::write(&nodes, "0.0 0.1\n0.5 0.2\n").unwrap();
    let out = rim()
        .args(["control", "--algo", "a-exp", "--nodes"])
        .arg(&nodes)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("highway"));
}

#[test]
fn exp_chain_end_to_end_with_a_apx_and_schedule() {
    let dir = tmp_dir("chain");
    let nodes = dir.join("chain.txt");
    let topo = dir.join("apx.txt");
    assert!(rim()
        .args(["generate", "--kind", "exp-chain", "--n", "24", "--out"])
        .arg(&nodes)
        .status()
        .unwrap()
        .success());
    assert!(rim()
        .args(["control", "--algo", "a-apx", "--nodes"])
        .arg(&nodes)
        .arg("--out")
        .arg(&topo)
        .status()
        .unwrap()
        .success());
    let out = rim()
        .args(["schedule", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("frame length"));
}

#[test]
fn optimal_solves_small_instances() {
    let dir = tmp_dir("optimal");
    let nodes = dir.join("five.txt");
    std::fs::write(&nodes, "0.0\n0.2\n0.45\n0.7\n1.0\n").unwrap();
    let out = rim().args(["optimal", "--nodes"]).arg(&nodes).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("proved optimal"), "{text}");
}

#[test]
fn optimal_rejects_large_instances() {
    let dir = tmp_dir("optimal_large");
    let nodes = dir.join("many.txt");
    let mut content = String::new();
    for i in 0..20 {
        content.push_str(&format!("{}\n", i as f64 * 0.05));
    }
    std::fs::write(&nodes, content).unwrap();
    let out = rim().args(["optimal", "--nodes"]).arg(&nodes).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at most 12"));
}

#[test]
fn simulate_reports_metrics() {
    let dir = tmp_dir("simulate");
    let nodes = dir.join("nodes.txt");
    let topo = dir.join("topo.txt");
    std::fs::write(&nodes, "0.0\n0.4\n0.8\n1.2\n").unwrap();
    std::fs::write(&topo, "0 1\n1 2\n2 3\n").unwrap();
    let out = rim()
        .args(["simulate", "--slots", "3000", "--mac", "csma", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("delivery ratio"));
}

#[test]
fn render_produces_svg() {
    let dir = tmp_dir("render");
    let nodes = dir.join("nodes.txt");
    let topo = dir.join("topo.txt");
    std::fs::write(&nodes, "0.0\n0.4\n0.8\n").unwrap();
    std::fs::write(&topo, "0 1\n1 2\n").unwrap();
    let out = rim()
        .args(["render", "--disks", "true", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let svg = String::from_utf8(out.stdout).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("stroke-dasharray"), "disks requested");

    // Arc mode for highway instances.
    let out = rim()
        .args(["render", "--arcs", "true", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("<path"));
}

#[test]
fn malformed_files_give_line_errors() {
    let dir = tmp_dir("badfile");
    let nodes = dir.join("bad.txt");
    std::fs::write(&nodes, "0.0\nnot-a-number\n").unwrap();
    let out = rim()
        .args(["control", "--algo", "mst", "--nodes"])
        .arg(&nodes)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
}

#[test]
fn unknown_flags_are_rejected() {
    let out = rim()
        .args(["generate", "--kind", "exp-chain", "--n", "8", "--bogus", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn analyze_obs_jsonl_emits_spans_and_counters() {
    // The ISSUE acceptance scenario: a 4096-node uniform instance
    // analyzed with `--obs jsonl` must emit spans and counters covering
    // index build, engine dispatch, and disk queries — all on stderr,
    // with the human report untouched on stdout.
    let dir = tmp_dir("analyze_obs");
    let nodes = dir.join("nodes.txt");
    let topo = dir.join("topo.txt");

    let out = rim()
        .args(["generate", "--kind", "uniform-square", "--n", "4096", "--side", "32",
               "--seed", "7", "--out"])
        .arg(&nodes)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = rim()
        .args(["control", "--algo", "gg", "--nodes"])
        .arg(&nodes)
        .arg("--out")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = rim()
        .args(["analyze", "--engine", "indexed", "--obs", "jsonl", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8(out.stderr).unwrap();
    for needle in [
        "\"kind\":\"meta\"",
        "\"kind\":\"span\"",          // spans present at all
        "\"name\":\"analyze\"",       // CLI root span
        "interference/index_build",   // spatial index construction
        "interference/indexed",       // engine dispatch
        "\"kind\":\"counter\"",
        "core.disk_queries",          // one per receiver in the kernel
    ] {
        assert!(err.contains(needle), "missing {needle} in --obs jsonl output:\n{err}");
    }
    // Every emitted line is an object; none of it leaks onto stdout.
    assert!(err.lines().all(|l| l.starts_with('{') && l.ends_with('}')), "{err}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("receiver interference I:"));
    assert!(!stdout.contains("\"kind\""), "{stdout}");
}

#[test]
fn analyze_physical_engines_and_phy_sections() {
    let dir = tmp_dir("analyze_phy");
    let nodes = dir.join("nodes.txt");
    let topo = dir.join("topo.txt");
    assert!(rim()
        .args(["generate", "--kind", "uniform-square", "--n", "60", "--side", "1.5", "--seed",
               "3", "--out"])
        .arg(&nodes)
        .status()
        .unwrap()
        .success());
    assert!(rim()
        .args(["control", "--algo", "mst", "--nodes"])
        .arg(&nodes)
        .arg("--out")
        .arg(&topo)
        .status()
        .unwrap()
        .success());

    // The physical engines must report the same interference numbers as
    // the disk engines — the disk-limit theorem, end to end.
    let mut reports = Vec::new();
    for engine in ["naive", "physical-naive", "physical-indexed"] {
        let out = rim()
            .args(["analyze", "--engine", engine, "--nodes"])
            .arg(&nodes)
            .arg("--topology")
            .arg(&topo)
            .output()
            .unwrap();
        assert!(out.status.success(), "engine {engine}");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains(&format!("interference engine:      {engine}")));
        let numbers: Vec<String> = text
            .lines()
            .filter(|l| l.starts_with("receiver interference") || l.starts_with("mean node"))
            .map(String::from)
            .collect();
        reports.push(numbers);
    }
    assert!(reports.windows(2).all(|w| w[0] == w[1]), "engines disagree: {reports:?}");

    // `--phy disk`: the physical section's interference equals the disk I.
    let out = rim()
        .args(["analyze", "--phy", "disk", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    let grab = |prefix: &str| -> String {
        text.lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing `{prefix}` in:\n{text}"))
            .rsplit_once(':')
            .unwrap()
            .1
            .trim()
            .to_string()
    };
    assert!(text.contains("physical model:           disk"), "{text}");
    let disk_i = grab("receiver interference I").split_whitespace().next().unwrap().to_string();
    assert_eq!(grab("physical interference I"), disk_i, "disk limit must hold:\n{text}");

    // `--phy logdist` with custom link-budget figures and shadowing.
    let out = rim()
        .args(["analyze", "--phy", "logdist", "--alpha", "3.5", "--power-dbm", "5",
               "--sigma-db", "4", "--phy-seed", "42", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("physical model:           logdist (alpha = 3.5"), "{text}");
    assert!(text.contains("worst SINR interference:"), "{text}");

    // Unknown phy mode is rejected, and logdist parameters are invalid
    // outside logdist mode.
    let out = rim()
        .args(["analyze", "--phy", "rician", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --phy mode"));
    let out = rim()
        .args(["analyze", "--phy", "disk", "--alpha", "3.0", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&topo)
        .output()
        .unwrap();
    assert!(!out.status.success(), "--alpha must be rejected outside logdist mode");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--alpha"));
}

#[test]
fn obs_rejects_unknown_mode() {
    let dir = tmp_dir("obs_bad_mode");
    let nodes = dir.join("nodes.txt");
    std::fs::write(&nodes, "0.0\n0.4\n").unwrap();
    let out = rim()
        .args(["analyze", "--obs", "verbose", "--nodes"])
        .arg(&nodes)
        .arg("--topology")
        .arg(&nodes)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --obs mode"));
}

#[test]
fn analyze_generate_streams_a_uniform_instance() {
    let out = rim()
        .args(["analyze", "--generate", "uniform:2000", "--seed", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("nodes:                    2000 (generated uniform, seed 5"));
    assert!(text.contains("interference engine:      streaming (nearest-neighbor radii)"));
    assert!(text.contains("sqrt(log n) envelope:"));

    // Same spec and seed must reproduce the report byte for byte.
    let again = rim()
        .args(["analyze", "--generate", "uniform:2000", "--seed", "5"])
        .output()
        .unwrap();
    assert_eq!(text, String::from_utf8(again.stdout).unwrap());
}

#[test]
fn analyze_generate_rejects_bad_specs() {
    for (spec, needle) in [
        ("cluster:100", "unknown --generate spec"),
        ("uniform:lots", "bad node count"),
        ("uniform", "unknown --generate spec"),
    ] {
        let out = rim().args(["analyze", "--generate", spec]).output().unwrap();
        assert!(!out.status.success(), "spec {spec} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "spec {spec}: {err}");
    }
    let out = rim()
        .args(["analyze", "--generate", "uniform:10", "--side", "-1.0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--side must be positive"));
}

#[test]
fn churn_checkpoints_are_deterministic_and_verified() {
    let run = || {
        rim()
            .args([
                "churn", "--trace", "uniform:96", "--edits", "2000", "--seed", "13",
                "--verify", "true",
            ])
            .output()
            .unwrap()
    };
    let out = run();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    let checkpoints: Vec<&str> =
        text.lines().filter(|l| l.contains("churn_checkpoint")).collect();
    assert!(checkpoints.len() >= 10, "cadence produced {} checkpoints", checkpoints.len());
    assert!(text.lines().last().unwrap().contains("churn_summary"));
    assert!(text.contains("\"p95_edit_ns\":"));

    // Same (seed, trace): checkpoint records byte-identical (the summary
    // carries wall clock and is excluded by design).
    let again = String::from_utf8(run().stdout).unwrap();
    let again_cp: Vec<&str> =
        again.lines().filter(|l| l.contains("churn_checkpoint")).collect();
    assert_eq!(checkpoints, again_cp, "checkpoint JSONL must be deterministic");
}

#[test]
fn churn_snapshot_resume_matches_uninterrupted_run() {
    let dir = tmp_dir("churn");
    let snap = dir.join("s.bin");
    let whole = rim()
        .args(["churn", "--trace", "clustered:64", "--edits", "2400", "--seed", "21"])
        .output()
        .unwrap();
    assert!(whole.status.success(), "{}", String::from_utf8_lossy(&whole.stderr));
    let whole = String::from_utf8(whole.stdout).unwrap();

    let part = rim()
        .args(["churn", "--trace", "clustered:64", "--edits", "1000", "--seed", "21"])
        .arg("--snapshot")
        .arg(&snap)
        .output()
        .unwrap();
    assert!(part.status.success(), "{}", String::from_utf8_lossy(&part.stderr));

    let resumed = rim()
        .args(["churn", "--edits", "1400", "--resume"])
        .arg(&snap)
        .output()
        .unwrap();
    assert!(resumed.status.success(), "{}", String::from_utf8_lossy(&resumed.stderr));
    let resumed = String::from_utf8(resumed.stdout).unwrap();

    // The resumed run's final checkpoint equals the uninterrupted run's.
    let last = |text: &str| -> String {
        text.lines()
            .filter(|l| l.contains("churn_checkpoint"))
            .next_back()
            .expect("a checkpoint record")
            .to_string()
    };
    assert!(last(&whole).contains("\"edit\":2400"));
    assert_eq!(last(&whole), last(&resumed), "resume diverged from the whole run");
}

#[test]
fn churn_rejects_bad_specs_and_corrupt_snapshots() {
    for (args, needle) in [
        (vec!["churn", "--trace", "hexagonal:10"], "bad --trace spec"),
        (vec!["churn", "--trace", "uniform:none"], "bad node count"),
        (vec!["churn", "--trace", "uniform:0"], "population must be >= 1"),
        (vec!["churn"], "missing required flag --trace"),
    ] {
        let out = rim().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{args:?}: {err}");
    }
    // --resume and --trace are mutually exclusive (the snapshot carries
    // the trace); the stray flag is rejected as unknown.
    let dir = tmp_dir("churn_bad");
    let snap = dir.join("garbage.bin");
    std::fs::write(&snap, b"not a snapshot").unwrap();
    let out = rim()
        .args(["churn", "--trace", "uniform:8", "--resume"])
        .arg(&snap)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --trace"));

    let out = rim().arg("churn").arg("--resume").arg(&snap).output().unwrap();
    assert!(!out.status.success(), "corrupt snapshot must be rejected");
}
