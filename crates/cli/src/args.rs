//! A small deterministic flag parser (no external dependencies).
//!
//! Grammar: `rim <command> [--flag value]... [--switch]...`. Flags may
//! appear in any order; unknown flags are errors; every flag accessor
//! records the key so [`Args::finish`] can reject typos.

use std::collections::BTreeMap;

/// Parsed command line: a command word plus `--key value` flags.
#[derive(Debug)]
pub struct Args {
    command: String,
    flags: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Command-line usage error.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, UsageError> {
        let mut it = raw.into_iter();
        let command = it
            .next()
            .ok_or_else(|| UsageError("missing command".into()))?;
        if command.starts_with('-') {
            return Err(UsageError(format!("expected a command, got flag {command}")));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| UsageError(format!("expected --flag, got {tok}")))?;
            if key.is_empty() {
                return Err(UsageError("empty flag name".into()));
            }
            let value = it
                .next()
                .ok_or_else(|| UsageError(format!("flag --{key} needs a value")))?;
            if flags.insert(key.to_string(), value).is_some() {
                return Err(UsageError(format!("flag --{key} given twice")));
            }
        }
        Ok(Args {
            command,
            flags,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// The command word.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Required string flag.
    pub fn required(&self, key: &str) -> Result<String, UsageError> {
        self.consumed.borrow_mut().push(key.to_string());
        self.flags
            .get(key)
            .cloned()
            .ok_or_else(|| UsageError(format!("missing required flag --{key}")))
    }

    /// Optional string flag with default.
    pub fn opt(&self, key: &str, default: &str) -> String {
        self.consumed.borrow_mut().push(key.to_string());
        self.flags.get(key).cloned().unwrap_or_else(|| default.into())
    }

    /// Optional parsed flag with default.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, UsageError>
    where
        T::Err: std::fmt::Display,
    {
        self.consumed.borrow_mut().push(key.to_string());
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| UsageError(format!("bad value for --{key}: {e}"))),
        }
    }

    /// Required parsed flag.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests; kept for parity
    pub fn required_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, UsageError>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self.required(key)?;
        raw.parse()
            .map_err(|e| UsageError(format!("bad value for --{key}: {e}")))
    }

    /// Rejects any flag that no accessor asked about (typo protection).
    pub fn finish(&self) -> Result<(), UsageError> {
        let consumed = self.consumed.borrow();
        for key in self.flags.keys() {
            if !consumed.iter().any(|c| c == key) {
                return Err(UsageError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, UsageError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_flags() {
        let a = parse(&["generate", "--n", "10", "--seed", "7"]).unwrap();
        assert_eq!(a.command(), "generate");
        assert_eq!(a.required("n").unwrap(), "10");
        assert_eq!(a.opt_parse::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.opt("kind", "uniform"), "uniform");
        a.finish().unwrap();
    }

    #[test]
    fn missing_and_malformed() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--n", "3"]).is_err());
        assert!(parse(&["cmd", "-n", "3"]).is_err());
        assert!(parse(&["cmd", "--n"]).is_err());
        assert!(parse(&["cmd", "--n", "1", "--n", "2"]).is_err());
        let a = parse(&["cmd", "--n", "x"]).unwrap();
        assert!(a.required_parse::<usize>("n").is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_at_finish() {
        let a = parse(&["cmd", "--typo", "1"]).unwrap();
        let _ = a.opt("n", "5");
        assert!(a.finish().is_err());
    }
}
