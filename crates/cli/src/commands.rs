//! The CLI subcommands.

use crate::args::{Args, UsageError};
use rim_churn::{decode_snapshot, encode_snapshot, ChurnConfig, ChurnSim};
use rim_core::analysis::InterferenceSummary;
use rim_core::optimal::{min_interference_topology, SolverLimits};
use rim_core::physical::{
    dbm_to_mw, mw_to_dbm, physical_interference_vector_with, sinr_interference_with, PhysModel,
    PhysParams,
};
use rim_core::receiver::{graph_interference, Engine};
use rim_core::sender::sender_graph_interference;
use rim_highway::HighwayInstance;
use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
use rim_topology_control::Baseline;
use rim_udg::io;
use rim_udg::udg::unit_disk_graph;
use rim_udg::{NodeSet, Topology};

/// Full usage text for `rim help`.
pub const HELP: &str = "\
rim — receiver-centric interference model toolkit

commands:
  generate  --kind uniform-square|uniform-highway|clusters|grid|exp-chain|fig1
            [--n N] [--side S] [--span S] [--seed K] [--out FILE]
  control   --algo nnf|mst|gg|rng|yao6|xtc|life|lmst|cbtc|kneigh9|rdg|
                   linear|a-exp|a-gen|a-apx|a-gen2
            --nodes FILE [--out FILE]
            [--engine naive|indexed|parallel|auto]   (construction pipeline)
            [--obs human|jsonl]   (spans/counters/histograms on stderr)
            [--timing true]   (alias for --obs human)
  analyze   --nodes FILE --topology FILE
            [--engine naive|indexed|parallel|physical-naive|physical-indexed|
                      streaming|auto]
            [--generate uniform:N]   (skip the files: stream N uniform nodes
              with nearest-neighbor radii through the SoA kernel;
              takes [--seed K] [--side S], no edge list is ever built)
            [--phy off|disk|logdist]   (append a SINR physical-model section;
              disk = disk-equivalent instantiation, logdist takes
              [--alpha A] [--power-dbm P] [--theta-dbm T] [--noise-dbm N]
              [--beta-db B] [--sigma-db S] [--phy-seed K])
            [--obs human|jsonl]
  optimal   --nodes FILE [--max-steps N]   (exact solver; n <= 12)
  simulate  --nodes FILE --topology FILE [--slots N] [--mac csma|aloha]
            [--flows N] [--period N] [--seed K] [--obs human|jsonl]
  churn     --trace FAMILY:N --edits M [--seed K]
            (FAMILY = uniform|clustered|exp-chain|collinear|duplicate;
             seeded churn trace through the incremental engine, checkpoint
             JSONL records plus a timing summary on stdout)
            [--checkpoint-every E]   (default: a tenth of the edit budget)
            [--out FILE]             (JSONL destination, - = stdout)
            [--snapshot FILE]        (freeze the final state to a binary snapshot)
            [--resume FILE]          (continue from a snapshot, which carries
             the trace/seed; --edits then EXTENDS the budget by M more ops)
            [--verify true]          (cross-check every checkpoint against the
             naive from-scratch oracle; O(live^2) per checkpoint)
            [--obs human|jsonl]
  schedule  --nodes FILE --topology FILE   (conflict-free TDMA frame)
  render    --nodes FILE --topology FILE [--out FILE.svg]
            [--disks true|false] [--labels true|false] [--arcs true|false]
  help

files: nodes = `x y` per line; topology = `u v` node-index pairs.";

fn read(path: &str) -> Result<String, UsageError> {
    std::fs::read_to_string(path).map_err(|e| UsageError(format!("cannot read {path}: {e}")))
}

fn write_out(out: &str, content: &str) -> Result<(), UsageError> {
    if out == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(out, content).map_err(|e| UsageError(format!("cannot write {out}: {e}")))
    }
}

fn load_nodes(args: &Args) -> Result<NodeSet, UsageError> {
    let path = args.required("nodes")?;
    io::parse_nodes(&read(&path)?).map_err(|e| UsageError(format!("{path}: {e}")))
}

fn load_topology(args: &Args, nodes: &NodeSet) -> Result<Topology, UsageError> {
    let path = args.required("topology")?;
    io::parse_topology(&read(&path)?, nodes).map_err(|e| UsageError(format!("{path}: {e}")))
}

/// Observability report mode, shared by `control`, `analyze`, `simulate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObsMode {
    Off,
    Human,
    Jsonl,
}

fn obs_mode(args: &Args) -> Result<ObsMode, UsageError> {
    match args.opt("obs", "off").as_str() {
        "off" => Ok(ObsMode::Off),
        "human" => Ok(ObsMode::Human),
        "jsonl" => Ok(ObsMode::Jsonl),
        other => Err(UsageError(format!(
            "unknown --obs mode {other} (expected off, human or jsonl)"
        ))),
    }
}

/// Installs the process-wide recorder when observability is requested.
/// The CLI is one of the two binaries allowed to construct an enabled
/// sink (the `obs-no-op-default` lint audit enforces this).
fn obs_install(mode: ObsMode) -> Option<&'static rim_obs::Recorder> {
    match mode {
        ObsMode::Off => None,
        ObsMode::Human | ObsMode::Jsonl => Some(rim_obs::install_recorder()),
    }
}

/// Emits the collected snapshot on stderr, keeping stdout machine-readable.
fn emit_obs(mode: ObsMode, rec: Option<&rim_obs::Recorder>) {
    let Some(rec) = rec else { return };
    let snap = rec.snapshot();
    match mode {
        ObsMode::Off => {}
        ObsMode::Human => eprint!("{}", snap.render_human()),
        ObsMode::Jsonl => eprint!("{}", snap.to_jsonl()),
    }
}

/// `rim generate` — workload generators to a nodes file.
pub fn generate(args: &Args) -> Result<(), UsageError> {
    let kind = args.required("kind")?;
    let n: usize = args.opt_parse("n", 100)?;
    let seed: u64 = args.opt_parse("seed", 0)?;
    let nodes = match kind.as_str() {
        "uniform-square" => {
            let side: f64 = args.opt_parse("side", 2.0)?;
            rim_workloads::uniform_square(n, side, seed)
        }
        "uniform-highway" => {
            let span: f64 = args.opt_parse("span", 4.0)?;
            rim_workloads::uniform_highway(n, span, seed).node_set()
        }
        "clusters" => {
            let side: f64 = args.opt_parse("side", 3.0)?;
            let k = (n / 25).max(1);
            rim_workloads::gaussian_clusters(k, n / k, side, 0.2, seed)
        }
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            rim_workloads::grid_lattice(side, side, 0.5, 0.05, seed)
        }
        "exp-chain" => rim_highway::exponential_chain(n).node_set(),
        "fig1" => rim_workloads::fig1_instance(n.max(3), 0.1, seed).1,
        other => return Err(UsageError(format!("unknown --kind {other}"))),
    };
    let out = args.opt("out", "-");
    args.finish()?;
    write_out(&out, &io::format_nodes(&nodes))
}

/// `rim control` — run a topology-control algorithm.
pub fn control(args: &Args) -> Result<(), UsageError> {
    let algo = args.required("algo")?;
    let engine: Engine = args.opt_parse("engine", Engine::Auto)?;
    let timing: bool = args.opt_parse("timing", false)?;
    let mut mode = obs_mode(args)?;
    if timing && mode == ObsMode::Off {
        // `--timing true` predates `--obs`; keep it as an alias so the
        // per-stage wall times still land on stderr.
        mode = ObsMode::Human;
    }
    let out = args.opt("out", "-");
    args.required("nodes")?; // consumed again by load_nodes below
    args.finish()?;
    let rec = obs_install(mode);
    let result = (|| {
        let _root = rim_obs::span("control");
        let nodes = {
            let _s = rim_obs::span("load");
            load_nodes(args)?
        };
        let udg = {
            let _s = rim_obs::span("udg");
            unit_disk_graph(&nodes)
        };
        let highway = || -> Result<HighwayInstance, UsageError> {
            if !nodes.is_highway() {
                return Err(UsageError(format!(
                    "--algo {algo} requires a highway (1-D) instance"
                )));
            }
            Ok(HighwayInstance::new(
                nodes.points().iter().map(|p| p.x).collect(),
            ))
        };
        let topology = {
            let _s = rim_obs::span("construct");
            match algo.as_str() {
                "nnf" => Baseline::Nnf.build_with(&nodes, &udg, engine),
                "mst" => Baseline::Emst.build_with(&nodes, &udg, engine),
                "gg" => Baseline::Gabriel.build_with(&nodes, &udg, engine),
                "rng" => Baseline::Rng.build_with(&nodes, &udg, engine),
                "yao6" => Baseline::Yao6.build_with(&nodes, &udg, engine),
                "xtc" => Baseline::Xtc.build_with(&nodes, &udg, engine),
                "life" => Baseline::Life.build_with(&nodes, &udg, engine),
                "lmst" => Baseline::Lmst.build_with(&nodes, &udg, engine),
                "cbtc" => Baseline::Cbtc.build_with(&nodes, &udg, engine),
                "kneigh9" => Baseline::Kneigh9.build_with(&nodes, &udg, engine),
                "rdg" => Baseline::Rdg.build_with(&nodes, &udg, engine),
                "linear" => highway()?.linear_topology(),
                "a-exp" => rim_highway::a_exp(&highway()?).topology,
                "a-gen" => rim_highway::a_gen(&highway()?).topology,
                "a-apx" => rim_highway::a_apx(&highway()?).topology,
                "a-gen2" => rim_highway::plane::a_gen_2d(&nodes).topology,
                other => return Err(UsageError(format!("unknown --algo {other}"))),
            }
        };
        // Note on the generated file whether the mandatory requirement holds.
        let mut content = io::format_topology(&topology);
        content.push_str(&format!(
            "# algo = {algo}, edges = {}, preserves connectivity = {}\n",
            topology.num_edges(),
            topology.preserves_connectivity_of(&udg)
        ));
        let _s = rim_obs::span("write");
        write_out(&out, &content)
    })();
    // The report goes to stderr so `--out -` topology output stays
    // machine-readable on stdout.
    emit_obs(mode, rec);
    result
}

/// `rim analyze --generate uniform:N` — the file-free streaming path:
/// generate N uniform nodes, assign nearest-neighbor radii, and run the
/// SoA streaming kernel. No node file, no topology file, no edge list.
fn analyze_generated(spec: &str, args: &Args) -> Result<(), UsageError> {
    let n: usize = match spec.split_once(':') {
        Some(("uniform", count)) => count
            .parse()
            .map_err(|e| UsageError(format!("bad node count in --generate {spec}: {e}")))?,
        _ => {
            return Err(UsageError(format!(
                "unknown --generate spec {spec} (expected uniform:N)"
            )))
        }
    };
    let seed: u64 = args.opt_parse("seed", 0)?;
    // Unit density by default: an n-node instance on a √n × √n square,
    // the regime of the Θ(√(log n)) interference statistics.
    let side: f64 = args.opt_parse("side", (n.max(1) as f64).sqrt())?;
    let mode = obs_mode(args)?;
    args.finish()?;
    if side <= 0.0 || !side.is_finite() {
        return Err(UsageError(format!("--side must be positive, got {side}")));
    }
    let rec = obs_install(mode);
    let (counts, max) = {
        let _root = rim_obs::span("analyze_generated");
        let soa = rim_workloads::uniform_soa(n, side, seed);
        let inst = rim_core::StreamInstance::try_with_nn_radii(soa)
            .map_err(|e| UsageError(e.to_string()))?;
        let counts = inst.interference_counts_sharded(rim_core::parallel::num_threads());
        let max = counts.iter().copied().max().unwrap_or(0);
        (counts, max)
    };
    emit_obs(mode, rec);
    let mean = if counts.is_empty() {
        0.0
    } else {
        counts.iter().map(|&c| f64::from(c)).sum::<f64>() / counts.len() as f64
    };
    let (lo, hi) = rim_core::sqrt_log_envelope(n);
    println!("nodes:                    {n} (generated uniform, seed {seed}, side {side})");
    println!("interference engine:      streaming (nearest-neighbor radii)");
    println!("receiver interference I:  {max}");
    println!("mean node interference:   {mean:.3}");
    println!(
        "sqrt(log n) envelope:     [{lo:.2}, {hi:.2}] -> {}",
        if (f64::from(max) >= lo && f64::from(max) <= hi) || n < 10_000 {
            "within"
        } else {
            "OUTSIDE"
        }
    );
    Ok(())
}

/// `rim analyze` — interference report for a topology.
pub fn analyze(args: &Args) -> Result<(), UsageError> {
    let generate = args.opt("generate", "");
    if !generate.is_empty() {
        return analyze_generated(&generate, args);
    }
    let engine: Engine = args.opt_parse("engine", Engine::Auto)?;
    let mode = obs_mode(args)?;
    let rec = obs_install(mode);
    let root = rim_obs::span("analyze");
    let nodes = {
        let _s = rim_obs::span("load");
        load_nodes(args)?
    };
    let topology = load_topology(args, &nodes)?;
    let phy = args.opt("phy", "off");
    let phys = match phy.as_str() {
        "off" => None,
        "disk" => Some(PhysModel::disk_equivalent(&topology)),
        "logdist" => {
            let alpha: f64 = args.opt_parse("alpha", 3.0)?;
            let power_dbm: f64 = args.opt_parse("power-dbm", 0.0)?;
            let theta_dbm: f64 = args.opt_parse("theta-dbm", -85.0)?;
            let noise_dbm: f64 = args.opt_parse("noise-dbm", -100.0)?;
            let beta_db: f64 = args.opt_parse("beta-db", 10.0)?;
            let sigma_db: f64 = args.opt_parse("sigma-db", 0.0)?;
            let phy_seed: u64 = args.opt_parse("phy-seed", 0)?;
            let params =
                PhysParams::from_link_budget(alpha, theta_dbm, noise_dbm, beta_db, sigma_db, phy_seed);
            let power_mw = vec![dbm_to_mw(power_dbm); topology.num_nodes()];
            Some(PhysModel::with_params(&topology, params, &power_mw))
        }
        other => {
            return Err(UsageError(format!(
                "unknown --phy mode {other} (expected off, disk or logdist)"
            )))
        }
    };
    args.finish()?;
    let udg = {
        let _s = rim_obs::span("udg");
        unit_disk_graph(&nodes)
    };
    let summary = InterferenceSummary::with_engine(&topology, engine);
    // Physical section computed inside the root span so its kernels show
    // up in the --obs report.
    let phys_report = phys.as_ref().map(|m| {
        let cov = physical_interference_vector_with(m, true);
        let sinr_mw = sinr_interference_with(m, true);
        let worst_cov = cov.iter().copied().max().unwrap_or(0);
        let worst_mw = sinr_mw.iter().copied().fold(0.0f64, f64::max);
        (worst_cov, worst_mw)
    });
    drop(root);
    emit_obs(mode, rec);
    println!("nodes:                    {}", nodes.len());
    println!("interference engine:      {}", engine.name());
    println!("udg edges / max degree:   {} / {}", udg.num_edges(), udg.max_degree());
    println!("topology edges:           {}", topology.num_edges());
    println!("is forest:                {}", topology.is_forest());
    println!(
        "preserves connectivity:   {}",
        topology.preserves_connectivity_of(&udg)
    );
    println!("receiver interference I:  {}", summary.max);
    println!("mean node interference:   {:.3}", summary.mean);
    println!(
        "sender-centric measure:   {}",
        sender_graph_interference(&topology)
    );
    println!("energy (alpha = 2):       {:.4}", topology.energy(2.0));
    if let Some(v) = summary.argmax() {
        println!("worst node:               {v} (I = {})", summary.per_node[v]);
    }
    if let (Some(m), Some((worst_cov, worst_mw))) = (&phys, phys_report) {
        let p = m.params();
        println!("physical model:           {phy} (alpha = {}, beta = {:.2})", p.alpha, p.beta);
        println!("physical interference I:  {worst_cov}");
        if worst_mw > 0.0 {
            println!(
                "worst SINR interference:  {:.3} dBm ({:.3e} mW)",
                mw_to_dbm(worst_mw),
                worst_mw
            );
        } else {
            println!("worst SINR interference:  none (no concurrent transmitter in range)");
        }
    }
    Ok(())
}

/// `rim optimal` — exact minimum-interference topology.
pub fn optimal(args: &Args) -> Result<(), UsageError> {
    let nodes = load_nodes(args)?;
    let max_steps: u64 = args.opt_parse("max-steps", SolverLimits::default().max_steps)?;
    args.finish()?;
    if nodes.len() > 12 {
        return Err(UsageError(format!(
            "exact solver handles at most 12 nodes, got {}",
            nodes.len()
        )));
    }
    let result = min_interference_topology(
        &nodes,
        1.0,
        SolverLimits {
            max_nodes: 12,
            max_steps,
        },
    );
    println!(
        "optimum I = {} ({}, {} search steps)",
        result.interference,
        if result.optimal { "proved optimal" } else { "budget exhausted — best found" },
        result.steps
    );
    print!("{}", io::format_topology(&result.topology));
    Ok(())
}

/// `rim simulate` — MAC simulation over a topology.
pub fn simulate(args: &Args) -> Result<(), UsageError> {
    let nodes = load_nodes(args)?;
    let topology = load_topology(args, &nodes)?;
    let slots: u64 = args.opt_parse("slots", 20_000)?;
    let flows: usize = args.opt_parse("flows", 8)?;
    let period: u64 = args.opt_parse("period", 40)?;
    let seed: u64 = args.opt_parse("seed", 0)?;
    let mac = match args.opt("mac", "csma").as_str() {
        "csma" => MacConfig::csma(),
        "aloha" => MacConfig::aloha(),
        other => return Err(UsageError(format!("unknown --mac {other}"))),
    };
    let mode = obs_mode(args)?;
    args.finish()?;
    let rec = obs_install(mode);
    let cfg = SimConfig {
        slots,
        mac,
        traffic: TrafficConfig::Cbr { flows, period },
        alpha: 2.0,
        seed,
    };
    let m = {
        let _root = rim_obs::span("simulate");
        Simulator::new(topology, cfg).run()
    };
    emit_obs(mode, rec);
    println!("generated:              {}", m.generated);
    println!("delivered:              {}", m.delivered);
    println!("delivery ratio:         {:.4}", m.delivery_ratio());
    println!("collision rate:         {:.4}", m.collision_rate());
    println!("tx per delivered pkt:   {:.2}", m.transmissions_per_delivery());
    println!("energy per delivered:   {:.5}", m.energy_per_delivery());
    println!("mean delay (slots):     {:.1}", m.mean_delay());
    println!("drops (no route/retry): {} / {}", m.dropped_no_route, m.dropped_retries);
    Ok(())
}

/// Parses a `family:N` churn trace spec.
fn parse_trace_spec(spec: &str) -> Result<(rim_churn::Family, usize), UsageError> {
    let err = || {
        UsageError(format!(
            "bad --trace spec {spec} (expected FAMILY:N, FAMILY one of \
             uniform, clustered, exp-chain, collinear, duplicate)"
        ))
    };
    let (tag, count) = spec.split_once(':').ok_or_else(err)?;
    let family = rim_churn::Family::parse(tag).ok_or_else(err)?;
    let n0: usize = count
        .parse()
        .map_err(|e| UsageError(format!("bad node count in --trace {spec}: {e}")))?;
    if n0 == 0 {
        return Err(UsageError("--trace population must be >= 1".into()));
    }
    Ok((family, n0))
}

/// `rim churn` — long-horizon churn workload: drive a seeded trace
/// through the incremental interference engine, emitting deterministic
/// checkpoint JSONL records plus one (wall-clock) timing summary.
pub fn churn(args: &Args) -> Result<(), UsageError> {
    let resume = args.opt("resume", "");
    let out = args.opt("out", "-");
    let snapshot = args.opt("snapshot", "");
    let verify: bool = args.opt_parse("verify", false)?;
    let every: u64 = args.opt_parse("checkpoint-every", 0)?;
    let mode = obs_mode(args)?;
    let mut sim = if resume.is_empty() {
        let spec = args.required("trace")?;
        let edits: u64 = args.opt_parse("edits", 10_000)?;
        let seed: u64 = args.opt_parse("seed", 0)?;
        args.finish()?;
        let (family, n0) = parse_trace_spec(&spec)?;
        ChurnSim::new(ChurnConfig { family, n0, seed }, edits)
    } else {
        // The snapshot carries the config, trace position, and counters;
        // --trace/--seed are rejected alongside it (unconsumed). --edits
        // changes meaning: it EXTENDS the budget by that many ops (the
        // op stream is budget-independent, so the extended run replays
        // exactly the suffix an uninterrupted longer run would produce).
        let extra: u64 = args.opt_parse("edits", 0)?;
        args.finish()?;
        let bytes = std::fs::read(&resume)
            .map_err(|e| UsageError(format!("cannot read {resume}: {e}")))?;
        let mut sim =
            decode_snapshot(&bytes).map_err(|e| UsageError(format!("{resume}: {e}")))?;
        sim.extend_budget(extra);
        sim
    };
    let budget = sim.remaining();
    let every = if every > 0 { every } else { (budget / 10).max(1) };
    let rec = obs_install(mode);

    let oracle_check = |sim: &ChurnSim| -> Result<(), UsageError> {
        let (t, slots) = sim.engine().live_topology();
        let want = rim_core::receiver::interference_vector_naive(&t);
        let got: Vec<usize> = slots
            .iter()
            .map(|&v| sim.engine().interference_at(v))
            .collect();
        if got != want {
            return Err(UsageError(format!(
                "maintained counts diverged from the naive oracle at edit {}",
                sim.counts().edits
            )));
        }
        Ok(())
    };

    // One record up front (the resumed/initial state), one per cadence
    // tick, then the timing summary. Checkpoint records are a pure
    // function of (config, edit index); only the summary carries wall
    // clock.
    let mut records = vec![sim.checkpoint_record()];
    let mut edit_ns: Vec<u64> = Vec::with_capacity(budget.min(2_000_000) as usize);
    let t0 = std::time::Instant::now();
    {
        let _root = rim_obs::span("churn");
        loop {
            let t = std::time::Instant::now();
            if sim.step().is_none() {
                break;
            }
            edit_ns.push(t.elapsed().as_nanos() as u64);
            if sim.counts().edits % every == 0 {
                if verify {
                    oracle_check(&sim)?;
                }
                records.push(sim.checkpoint_record());
            }
        }
    }
    let wall = t0.elapsed();
    if verify {
        oracle_check(&sim)?;
    }
    // The final state is always recorded, even when the cadence does not
    // land on the last edit (resumed budgets rarely divide evenly).
    if sim.counts().edits % every != 0 || records.len() == 1 {
        records.push(sim.checkpoint_record());
    }
    emit_obs(mode, rec);

    edit_ns.sort_unstable();
    let pct = |q: f64| -> u64 {
        match edit_ns.len() {
            0 => 0,
            len => edit_ns[((q * (len - 1) as f64).round() as usize).min(len - 1)],
        }
    };
    let done = edit_ns.len() as u64;
    let mut summary = format!(
        "{{\"record\":\"churn_summary\",\"family\":\"{}\",\"n0\":{},\"seed\":{},\
         \"edits\":{},\"live\":{},\"max_interference\":{},\"wall_ms\":{},\
         \"edits_per_sec\":{:.0},\"p50_edit_ns\":{},\"p95_edit_ns\":{}",
        sim.config().family,
        sim.config().n0,
        sim.config().seed,
        done,
        sim.live_count(),
        sim.graph_interference(),
        wall.as_millis(),
        done as f64 / wall.as_secs_f64().max(1e-9),
        pct(0.50),
        pct(0.95),
    );
    if let Some(kb) = rim_obs::peak_rss_kb() {
        summary.push_str(&format!(",\"peak_rss_kb\":{kb}"));
    }
    summary.push('}');
    records.push(summary);

    let mut body = records.join("\n");
    body.push('\n');
    write_out(&out, &body)?;
    if !snapshot.is_empty() {
        std::fs::write(&snapshot, encode_snapshot(&sim))
            .map_err(|e| UsageError(format!("cannot write {snapshot}: {e}")))?;
    }
    Ok(())
}

/// `rim schedule` — conflict-free TDMA frame for a topology.
pub fn schedule(args: &Args) -> Result<(), UsageError> {
    let nodes = load_nodes(args)?;
    let topology = load_topology(args, &nodes)?;
    args.finish()?;
    let s = rim_sim::tdma_schedule(&topology);
    assert_eq!(s.verify(&topology), None, "internal error: invalid schedule");
    println!(
        "I = {}, directed links = {}, frame length = {} slots",
        graph_interference(&topology),
        s.num_links(),
        s.frame_length()
    );
    for (i, slot) in s.slots.iter().enumerate() {
        let links: Vec<String> = slot.iter().map(|(u, v)| format!("{u}->{v}")).collect();
        println!("slot {i:>3}: {}", links.join(" "));
    }
    Ok(())
}

/// `rim render` — SVG picture of a topology.
pub fn render(args: &Args) -> Result<(), UsageError> {
    let nodes = load_nodes(args)?;
    let topology = load_topology(args, &nodes)?;
    let disks: bool = args.opt_parse("disks", false)?;
    let labels: bool = args.opt_parse("labels", true)?;
    let arcs: bool = args.opt_parse("arcs", false)?;
    let out = args.opt("out", "-");
    args.finish()?;
    let svg = if arcs {
        if !nodes.is_highway() {
            return Err(UsageError("--arcs true requires a highway instance".into()));
        }
        let h = HighwayInstance::new(nodes.points().iter().map(|p| p.x).collect());
        rim_viz::render_highway_arcs(&h, &topology, true)
    } else {
        rim_viz::render_topology(
            &topology,
            rim_viz::RenderOptions {
                show_disks: disks,
                show_interference: labels,
                ..rim_viz::RenderOptions::default()
            },
        )
    };
    write_out(&out, &svg)
}
