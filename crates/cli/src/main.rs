//! `rim` — command-line front end for the interference-model workspace.
//!
//! ```text
//! rim generate --kind uniform-square --n 100 --side 2 --seed 7 --out nodes.txt
//! rim generate --kind exp-chain --n 64 --out chain.txt
//! rim control  --algo mst --nodes nodes.txt --out topo.txt
//! rim analyze  --nodes nodes.txt --topology topo.txt
//! rim optimal  --nodes small.txt
//! rim simulate --nodes nodes.txt --topology topo.txt --slots 20000 --mac csma
//! rim churn    --trace uniform:1024 --edits 100000 --seed 7 --out churn.jsonl
//! rim schedule --nodes nodes.txt --topology topo.txt
//! rim render   --nodes nodes.txt --topology topo.txt --out picture.svg
//! ```
//!
//! Run `rim help` for the full flag reference.

#![forbid(unsafe_code)]

mod args;
mod commands;

use args::{Args, UsageError};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let result = Args::parse(raw).and_then(run);
    if let Err(e) = result {
        eprintln!("error: {e}");
        eprintln!("run `rim help` for usage");
        std::process::exit(2);
    }
}

fn run(args: Args) -> Result<(), UsageError> {
    match args.command() {
        "generate" => commands::generate(&args),
        "control" => commands::control(&args),
        "analyze" => commands::analyze(&args),
        "optimal" => commands::optimal(&args),
        "simulate" => commands::simulate(&args),
        "churn" => commands::churn(&args),
        "schedule" => commands::schedule(&args),
        "render" => commands::render(&args),
        "help" => {
            println!("{}", commands::HELP);
            Ok(())
        }
        other => Err(UsageError(format!("unknown command `{other}`"))),
    }
}
