//! Classic topology-control algorithms — the baselines of the paper.
//!
//! Section 4 of von Rickenbach et al. (IPDPS 2005) observes that, with one
//! exception, all known topology-control algorithms producing symmetric
//! links have every node connect to (at least) its nearest neighbor — they
//! *contain the Nearest Neighbor Forest* — and proves (Theorem 4.1) that
//! this alone already costs a factor `Ω(n)` in receiver-centric
//! interference. This crate implements those baselines so the claim can be
//! measured:
//!
//! | Algorithm | Module | Contains NNF? |
//! |---|---|---|
//! | Nearest Neighbor Forest | [`nnf`] | — (it *is* the NNF) |
//! | Euclidean MST (on the UDG) | [`emst`] | yes |
//! | Gabriel Graph | [`gabriel`] | yes |
//! | Relative Neighborhood Graph | [`rng`] | yes |
//! | Yao Graph | [`yao`] | yes |
//! | XTC (Wattenhofer & Zollinger) | [`xtc`] | yes |
//! | LIFE / LISE (Burkhart et al., the noted exception) | [`life`] | no |
//! | LMST (Li–Hou–Sha, reference \[9\]) | [`lmst`] | yes |
//! | CBTC(2π/3) (reference \[18\]) | [`cbtc`] | yes |
//! | KNeigh (k-nearest, symmetric) | [`kneigh`] | yes (given reciprocity) |
//! | Restricted Delaunay Graph (reference \[10\]) | [`rdg`] | yes |
//!
//! All constructors take a [`NodeSet`] plus its UDG and return a
//! [`Topology`] that is a subgraph of the UDG. MST, Gabriel, RNG, Yao,
//! XTC and LIFE preserve the UDG's connectivity; the NNF itself does not
//! (it is a forest that may split a UDG component — the other algorithms
//! *contain* it and add the edges that reconnect it).

//!
//! Construction is engine-selectable: Gabriel/RNG witness predicates,
//! LMST's per-node local MSTs, XTC's edge filter, and Yao's cone
//! selection all run `naive | indexed | parallel | auto` (see
//! [`pipeline`] and [`Baseline::build_with`]); every engine produces
//! the same topology — a differential-tested invariant — and the naive
//! witness scans are retained verbatim as oracles.

#![forbid(unsafe_code)]

pub mod cbtc;
pub mod emst;
pub mod gabriel;
pub mod kneigh;
pub mod life;
pub mod lmst;
pub mod nnf;
pub mod pipeline;
pub mod rdg;
pub mod rng;
pub mod xtc;
pub mod yao;

pub use rim_core::receiver::Engine;

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// The baseline algorithms, as a closed enumeration for sweeps/benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Nearest Neighbor Forest.
    Nnf,
    /// Euclidean minimum spanning tree of the UDG.
    Emst,
    /// Gabriel graph (intersected with the UDG).
    Gabriel,
    /// Relative neighborhood graph (intersected with the UDG).
    Rng,
    /// Yao graph with 6 cones.
    Yao6,
    /// XTC.
    Xtc,
    /// LIFE — low-interference forest w.r.t. the sender-centric measure.
    Life,
    /// LMST (local-MST, intersection variant) — reference \[9\].
    Lmst,
    /// CBTC with `α = 2π/3` — reference \[18\].
    Cbtc,
    /// KNeigh with `k = 9` (connectivity only w.h.p.).
    Kneigh9,
    /// Restricted Delaunay Graph — reference \[10\].
    Rdg,
}

impl Baseline {
    /// All baselines, in presentation order.
    pub const ALL: [Baseline; 11] = [
        Baseline::Nnf,
        Baseline::Emst,
        Baseline::Gabriel,
        Baseline::Rng,
        Baseline::Yao6,
        Baseline::Xtc,
        Baseline::Life,
        Baseline::Lmst,
        Baseline::Cbtc,
        Baseline::Kneigh9,
        Baseline::Rdg,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Nnf => "NNF",
            Baseline::Emst => "MST",
            Baseline::Gabriel => "GG",
            Baseline::Rng => "RNG",
            Baseline::Yao6 => "Yao6",
            Baseline::Xtc => "XTC",
            Baseline::Life => "LIFE",
            Baseline::Lmst => "LMST",
            Baseline::Cbtc => "CBTC",
            Baseline::Kneigh9 => "KNei9",
            Baseline::Rdg => "RDG",
        }
    }

    /// Does this construction guarantee connectivity preservation?
    /// (`Nnf` is a forest by design; `Kneigh9` preserves connectivity
    /// only with high probability.)
    pub fn guarantees_connectivity(self) -> bool {
        !matches!(self, Baseline::Nnf | Baseline::Kneigh9)
    }

    /// Runs the algorithm with automatic engine selection
    /// ([`Engine::Auto`]).
    pub fn build(self, nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
        self.build_with(nodes, udg, Engine::Auto)
    }

    /// Runs the algorithm with an explicit construction [`Engine`].
    ///
    /// Gabriel, RNG, LMST, XTC and Yao honour the selection (identical
    /// output on every engine — only speed differs); the remaining
    /// baselines have no engine-sensitive stage and ignore it.
    pub fn build_with(self, nodes: &NodeSet, udg: &AdjacencyList, engine: Engine) -> Topology {
        let _span = rim_obs::span(self.name());
        match self {
            Baseline::Nnf => nnf::nearest_neighbor_forest(nodes, udg),
            Baseline::Emst => emst::euclidean_mst(nodes, udg),
            Baseline::Gabriel => gabriel::gabriel_graph_with(nodes, udg, engine),
            Baseline::Rng => rng::relative_neighborhood_graph_with(nodes, udg, engine),
            Baseline::Yao6 => yao::yao_graph_with(nodes, udg, 6, engine),
            Baseline::Xtc => xtc::xtc_with(nodes, udg, engine),
            Baseline::Life => life::life(nodes, udg),
            Baseline::Lmst => {
                lmst::lmst_with(nodes, udg, lmst::LmstVariant::Intersection, engine)
            }
            Baseline::Cbtc => cbtc::cbtc(nodes, udg, cbtc::ALPHA_CONNECTIVITY),
            Baseline::Kneigh9 => kneigh::kneigh(nodes, udg, 9),
            Baseline::Rdg => rdg::restricted_delaunay(nodes, udg),
        }
    }
}
