//! KNeigh — k-nearest-neighbors topology control (Blough, Leoncini,
//! Resta, Santi; MobiHoc 2003 lineage).
//!
//! Every node lists its `k` nearest UDG neighbors; the symmetric output
//! keeps an edge iff **both** endpoints listed each other (the protocol's
//! "symmetric sub-graph" step). KNeigh preserves connectivity only with
//! high probability on random instances — not always — which is why it is
//! evaluated separately from the always-connected constructions. It
//! contains the NNF for `k >= 1` *in the union sense* but, due to the
//! intersection step, a node's nearest-neighbor edge survives only if it
//! is reciprocated in the other endpoint's top-`k`; with the customary
//! `k = 9` that is essentially always the case on uniform fields.

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// The `k` nearest UDG neighbors of `u` (ties towards smaller indices).
pub fn k_nearest(nodes: &NodeSet, udg: &AdjacencyList, u: usize, k: usize) -> Vec<usize> {
    let mut ns: Vec<usize> = udg.neighbors(u).collect();
    ns.sort_unstable_by(|&a, &b| {
        nodes
            .dist_sq(u, a)
            .total_cmp(&nodes.dist_sq(u, b))
            .then(a.cmp(&b))
    });
    ns.truncate(k);
    ns
}

/// Builds the symmetric KNeigh topology (intersection of top-`k` lists).
pub fn kneigh(nodes: &NodeSet, udg: &AdjacencyList, k: usize) -> Topology {
    assert!(k >= 1);
    let n = nodes.len();
    let lists: Vec<Vec<usize>> = (0..n).map(|u| k_nearest(nodes, udg, u, k)).collect();
    let mut g = AdjacencyList::new(n);
    for e in udg.edges() {
        if lists[e.u].contains(&e.v) && lists[e.v].contains(&e.u) {
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new((0..n).map(|_| Point::new(rnd() * side, rnd() * side)).collect())
    }

    #[test]
    fn degree_is_bounded_by_k() {
        let ns = random_field(100, 1.5, 2);
        let udg = unit_disk_graph(&ns);
        for k in [1usize, 3, 9] {
            let t = kneigh(&ns, &udg, k);
            assert!(t.graph().max_degree() <= k, "k={k}");
        }
    }

    #[test]
    fn k9_usually_preserves_connectivity_on_uniform_fields() {
        let mut preserved = 0;
        for seed in 1..6u64 {
            let ns = random_field(90, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            let t = kneigh(&ns, &udg, 9);
            if t.preserves_connectivity_of(&udg) {
                preserved += 1;
            }
        }
        assert!(preserved >= 4, "only {preserved}/5 preserved connectivity");
    }

    #[test]
    fn k1_is_mutual_nearest_neighbor_matching() {
        // With k = 1 only mutually-nearest pairs survive.
        let ns = NodeSet::on_line(&[0.0, 0.1, 0.5, 0.9, 1.0]);
        let udg = unit_disk_graph(&ns);
        let t = kneigh(&ns, &udg, 1);
        // (0,1) mutual nearest; (3,4) mutual nearest; node 2 unpaired.
        assert!(t.graph().has_edge(0, 1));
        assert!(t.graph().has_edge(3, 4));
        assert_eq!(t.graph().degree(2), 0);
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    fn can_break_connectivity_on_adversarial_instances() {
        // Two k-cliques joined by one long link: with k = 2 the bridge is
        // not in either endpoint's top-2.
        let ns = NodeSet::on_line(&[0.0, 0.01, 0.02, 0.99, 1.0, 1.01]);
        let udg = unit_disk_graph(&ns);
        assert!(rim_graph::traversal::is_connected(&udg));
        let t = kneigh(&ns, &udg, 2);
        assert!(!t.preserves_connectivity_of(&udg));
    }

    #[test]
    fn large_k_reduces_to_udg() {
        let ns = random_field(20, 1.0, 7);
        let udg = unit_disk_graph(&ns);
        let t = kneigh(&ns, &udg, 50);
        assert_eq!(t.num_edges(), udg.num_edges());
    }
}
