//! The Gabriel graph, intersected with the UDG.
//!
//! Edge `{u, v}` survives iff no third node lies in the closed disk whose
//! diameter is the segment `uv` — the classic planar structure used by
//! geographic routing (GPSR et al.). It is connected on each UDG
//! component (it contains the MST) and contains the Nearest Neighbor
//! Forest.
//!
//! Two witness predicates compute the same answer: the brute-force
//! [`is_gabriel_edge_naive`] scans all `n` nodes (the **permanent
//! oracle** the differential suites test against), while
//! [`is_gabriel_edge`] queries a [`SpatialIndex`] for the closed disk of
//! radius `|uv|` around `u` — any witness `w` has `|uw|² + |wv|² <=
//! |uv|²`, hence `|uw| <= |uv|` even after rounding, so the query never
//! misses one — and re-evaluates the exact predicate on the candidates.

use crate::pipeline::{self, witness_index};
use rim_core::receiver::Engine;
use rim_geom::SpatialIndex;
use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Returns `true` if the UDG edge `{u, v}` is a Gabriel edge: no other
/// node `w` satisfies `|uw|² + |wv|² <= |uv|²` (closed-disk convention:
/// a node *on* the diameter circle blocks the edge; deterministic and
/// conservative). Brute-force `O(n)` scan — the retained witness oracle.
pub fn is_gabriel_edge_naive(nodes: &NodeSet, u: usize, v: usize) -> bool {
    let d_uv = nodes.dist_sq(u, v);
    (0..nodes.len()).all(|w| {
        w == u || w == v || nodes.dist_sq(u, w) + nodes.dist_sq(w, v) > d_uv
    })
}

/// Index-backed witness test, exactly equal to
/// [`is_gabriel_edge_naive`]: candidates come from the closed disk of
/// radius `|uv|` around `u` (a superset of the diameter disk — see the
/// module docs for the containment argument) and are filtered by the
/// identical squared-distance predicate.
pub fn is_gabriel_edge(nodes: &NodeSet, index: &SpatialIndex, u: usize, v: usize) -> bool {
    let d_uv = nodes.dist_sq(u, v);
    let mut blocked = false;
    index.for_each_in_disk(nodes.pos(u), nodes.dist(u, v), |w| {
        if w != u && w != v && nodes.dist_sq(u, w) + nodes.dist_sq(w, v) <= d_uv {
            blocked = true;
        }
    });
    !blocked
}

/// Builds the Gabriel graph restricted to UDG edges with an explicit
/// [`Engine`]: `Naive` runs the all-node witness scan per edge
/// (`O(n·m)`), `Indexed` one local disk query per edge, `Parallel` fans
/// the indexed queries out over the shared executor. All engines return
/// the same topology; `Auto` picks by instance size.
pub fn gabriel_graph_with(nodes: &NodeSet, udg: &AdjacencyList, engine: Engine) -> Topology {
    match pipeline::resolve(engine, nodes.len()) {
        Engine::Naive => {
            let mut g = AdjacencyList::new(nodes.len());
            for e in udg.edges() {
                if is_gabriel_edge_naive(nodes, e.u, e.v) {
                    g.add_edge(e.u, e.v, e.weight);
                }
            }
            Topology::from_graph(nodes.clone(), g)
        }
        Engine::Indexed | Engine::PhysicalNaive | Engine::PhysicalIndexed | Engine::Streaming => {
            gabriel_graph_parallel(nodes, udg, 1)
        }
        Engine::Parallel | Engine::Auto => {
            gabriel_graph_parallel(nodes, udg, rim_par::num_threads())
        }
    }
}

/// Index-backed construction across an explicit number of worker
/// threads (`1` = the indexed engine, inline). The edge set is
/// independent of `threads` by construction.
pub fn gabriel_graph_parallel(nodes: &NodeSet, udg: &AdjacencyList, threads: usize) -> Topology {
    let index = witness_index(nodes, udg);
    let edges = udg.edges();
    let g = pipeline::filter_edges(nodes.len(), &edges, threads, |e| {
        is_gabriel_edge(nodes, &index, e.u, e.v)
    });
    Topology::from_graph(nodes.clone(), g)
}

/// Builds the Gabriel graph restricted to UDG edges
/// ([`Engine::Auto`]) — the default entry point.
pub fn gabriel_graph(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    gabriel_graph_with(nodes, udg, Engine::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn midpoint_node_blocks_edge() {
        let ns = NodeSet::on_line(&[0.0, 0.5, 1.0]);
        let udg = unit_disk_graph(&ns);
        let t = gabriel_graph(&ns, &udg);
        assert!(t.graph().has_edge(0, 1));
        assert!(t.graph().has_edge(1, 2));
        assert!(!t.graph().has_edge(0, 2), "node 1 sits inside the diameter disk");
    }

    #[test]
    fn node_outside_diameter_disk_does_not_block() {
        // w at distance such that the angle uwv is acute.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.9), // well above the diameter circle (radius 0.5)
        ]);
        let udg = unit_disk_graph(&ns);
        let t = gabriel_graph(&ns, &udg);
        assert!(t.graph().has_edge(0, 1));
    }

    #[test]
    fn preserves_connectivity_and_contains_nnf() {
        let mut state = 77u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..50).map(|_| Point::new(rnd() * 1.6, rnd() * 1.6)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let t = gabriel_graph(&ns, &udg);
        assert!(t.preserves_connectivity_of(&udg));
        assert!(contains_nnf(&t, &udg));
    }

    #[test]
    fn boundary_node_blocks_under_closed_convention() {
        // w on the diameter circle: right angle at w → blocks.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.5),
        ]);
        assert!(!is_gabriel_edge_naive(&ns, 0, 1));
        let udg = unit_disk_graph(&ns);
        let idx = witness_index(&ns, &udg);
        assert!(!is_gabriel_edge(&ns, &idx, 0, 1), "indexed witness must agree");
    }

    #[test]
    fn every_engine_builds_the_same_graph() {
        let mut state = 5u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..70).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let oracle = gabriel_graph_with(&ns, &udg, Engine::Naive);
        for e in [Engine::Indexed, Engine::Parallel, Engine::Auto] {
            let t = gabriel_graph_with(&ns, &udg, e);
            assert_eq!(oracle.edges(), t.edges(), "engine {}", e.name());
        }
    }
}
