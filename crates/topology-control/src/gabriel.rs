//! The Gabriel graph, intersected with the UDG.
//!
//! Edge `{u, v}` survives iff no third node lies in the closed disk whose
//! diameter is the segment `uv` — the classic planar structure used by
//! geographic routing (GPSR et al.). It is connected on each UDG
//! component (it contains the MST) and contains the Nearest Neighbor
//! Forest.

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Returns `true` if the UDG edge `{u, v}` is a Gabriel edge: no other
/// node `w` satisfies `|uw|² + |wv|² <= |uv|²` (closed-disk convention:
/// a node *on* the diameter circle blocks the edge; deterministic and
/// conservative).
pub fn is_gabriel_edge(nodes: &NodeSet, u: usize, v: usize) -> bool {
    let d_uv = nodes.dist_sq(u, v);
    (0..nodes.len()).all(|w| {
        w == u || w == v || nodes.dist_sq(u, w) + nodes.dist_sq(w, v) > d_uv
    })
}

/// Builds the Gabriel graph restricted to UDG edges.
pub fn gabriel_graph(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    let mut g = AdjacencyList::new(nodes.len());
    for e in udg.edges() {
        if is_gabriel_edge(nodes, e.u, e.v) {
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn midpoint_node_blocks_edge() {
        let ns = NodeSet::on_line(&[0.0, 0.5, 1.0]);
        let udg = unit_disk_graph(&ns);
        let t = gabriel_graph(&ns, &udg);
        assert!(t.graph().has_edge(0, 1));
        assert!(t.graph().has_edge(1, 2));
        assert!(!t.graph().has_edge(0, 2), "node 1 sits inside the diameter disk");
    }

    #[test]
    fn node_outside_diameter_disk_does_not_block() {
        // w at distance such that the angle uwv is acute.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.9), // well above the diameter circle (radius 0.5)
        ]);
        let udg = unit_disk_graph(&ns);
        let t = gabriel_graph(&ns, &udg);
        assert!(t.graph().has_edge(0, 1));
    }

    #[test]
    fn preserves_connectivity_and_contains_nnf() {
        let mut state = 77u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..50).map(|_| Point::new(rnd() * 1.6, rnd() * 1.6)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let t = gabriel_graph(&ns, &udg);
        assert!(t.preserves_connectivity_of(&udg));
        assert!(contains_nnf(&t, &udg));
    }

    #[test]
    fn boundary_node_blocks_under_closed_convention() {
        // w on the diameter circle: right angle at w → blocks.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.5),
        ]);
        assert!(!is_gabriel_edge(&ns, 0, 1));
    }
}
