//! The Nearest Neighbor Forest.
//!
//! Every node creates a (symmetric) link to its nearest UDG neighbor; the
//! union of these links is a forest on each UDG component. The paper's
//! Theorem 4.1 shows that any algorithm whose output *contains* this
//! forest is `Ω(n)` worse than optimal in the worst case.

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Index of the nearest UDG neighbor of `u` (ties towards the smaller
/// index), or `None` if `u` is isolated in the UDG.
pub fn nearest_neighbor(nodes: &NodeSet, udg: &AdjacencyList, u: usize) -> Option<usize> {
    udg.neighbors(u).min_by(|&a, &b| {
        nodes
            .dist_sq(u, a)
            .total_cmp(&nodes.dist_sq(u, b))
            .then(a.cmp(&b))
    })
}

/// Builds the Nearest Neighbor Forest: the union over all nodes of the
/// link to their nearest UDG neighbor (mutual pairs yield one edge).
pub fn nearest_neighbor_forest(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    let mut g = AdjacencyList::new(nodes.len());
    for u in 0..nodes.len() {
        if let Some(v) = nearest_neighbor(nodes, udg, u) {
            if !g.has_edge(u, v) {
                g.add_edge(u, v, nodes.dist(u, v));
            }
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

/// Returns `true` if `t` contains the Nearest Neighbor Forest of the UDG —
/// the structural property Theorem 4.1 punishes.
pub fn contains_nnf(t: &Topology, udg: &AdjacencyList) -> bool {
    let nodes = t.nodes();
    (0..nodes.len()).all(|u| match nearest_neighbor(nodes, udg, u) {
        Some(v) => t.graph().has_edge(u, v),
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn mutual_nearest_neighbors_share_one_edge() {
        let ns = NodeSet::on_line(&[0.0, 0.1, 0.9]);
        let udg = unit_disk_graph(&ns);
        let t = nearest_neighbor_forest(&ns, &udg);
        // 0 and 1 are mutual nearest; 2's nearest is 1.
        assert_eq!(t.num_edges(), 2);
        assert!(t.graph().has_edge(0, 1));
        assert!(t.graph().has_edge(1, 2));
        assert!(t.is_forest());
        assert!(contains_nnf(&t, &udg));
    }

    #[test]
    fn nnf_can_split_a_udg_component() {
        // Two tight pairs, bridgeable by a 0.9 link the NNF never takes.
        let ns = NodeSet::on_line(&[0.0, 0.1, 1.0, 1.1]);
        let udg = unit_disk_graph(&ns);
        assert!(rim_graph::traversal::is_connected(&udg));
        let t = nearest_neighbor_forest(&ns, &udg);
        assert_eq!(t.num_edges(), 2);
        assert!(!t.preserves_connectivity_of(&udg));
    }

    #[test]
    fn isolated_nodes_stay_isolated() {
        let ns = NodeSet::on_line(&[0.0, 5.0]);
        let udg = unit_disk_graph(&ns);
        let t = nearest_neighbor_forest(&ns, &udg);
        assert_eq!(t.num_edges(), 0);
        assert!(contains_nnf(&t, &udg));
    }

    #[test]
    fn ties_break_to_smaller_index() {
        let ns = NodeSet::on_line(&[0.5, 0.0, 1.0]); // node 0 equidistant to 1 and 2
        let udg = unit_disk_graph(&ns);
        assert_eq!(nearest_neighbor(&ns, &udg, 0), Some(1));
    }

    #[test]
    fn contains_nnf_detects_missing_edge() {
        let ns = NodeSet::on_line(&[0.0, 0.2, 0.4]);
        let udg = unit_disk_graph(&ns);
        // Chain topology 0-2? Not a UDG subgraph violation, but drop 1's
        // nearest link: topology {0-2} misses 1's nearest edge {1,0/2}.
        let t = Topology::from_pairs(ns.clone(), &[(0, 2)]);
        assert!(!contains_nnf(&t, &udg));
    }
}
