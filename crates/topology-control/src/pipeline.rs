//! Shared machinery of the near-linear construction pipeline.
//!
//! Every baseline that filters UDG edges through a witness predicate
//! (Gabriel, RNG, XTC) or computes a per-node local structure (LMST,
//! Yao) funnels through the helpers here:
//!
//! * [`witness_index`] builds the same [`SpatialIndex`] the interference
//!   engine scatters over, hinted by the median UDG edge length — the
//!   dominant witness-query radius.
//! * [`filter_edges`] fans an edge predicate out over the shared chunked
//!   scoped-thread executor ([`rim_par::par_map_ranges`]) and assembles
//!   the kept edges *in input order*, so every engine produces the same
//!   adjacency structure, not merely the same edge set.
//! * [`resolve`] maps [`Engine::Auto`] to a concrete engine by instance
//!   size, mirroring the interference kernels' policy.
//!
//! Correctness of the index-backed witnesses rests on a locality
//! argument: any Gabriel witness `w` of `{u, v}` satisfies
//! `|uw|² + |wv|² <= |uv|²`, hence `|uw|² <= |uv|²`, and any RNG witness
//! satisfies `max(|uw|, |wv|) < |uv|` — in both cases `|uw| <= |uv|`
//! *including at floating-point level*, because `dist` is the correctly
//! rounded (monotone) square root of `dist_sq`. The closed disk of
//! radius `|uv|` around `u` therefore contains every witness, and the
//! exact naive predicate is re-evaluated on the candidates it returns,
//! so index-backed construction equals the brute-force scan bit for bit.

use rim_core::receiver::Engine;
use rim_geom::SpatialIndex;
use rim_graph::{AdjacencyList, Edge};
use rim_udg::NodeSet;

/// Below this node count the all-node witness scan beats an index build.
pub(crate) const AUTO_NAIVE_MAX: usize = 64;
/// From this node count on, threads amortize their spawn cost for
/// construction workloads.
pub(crate) const AUTO_PARALLEL_MIN: usize = 2048;

/// Resolves [`Engine::Auto`] for a construction over `n` nodes: naive
/// below [`AUTO_NAIVE_MAX`], parallel from [`AUTO_PARALLEL_MIN`] when
/// more than one core is available, indexed in between. The physical
/// (SINR) engines only change how *interference* is evaluated, not how
/// geometric constructions run, so they normalize to their disk-side
/// strategy twins here.
pub(crate) fn resolve(engine: Engine, n: usize) -> Engine {
    match engine {
        Engine::Auto => {
            if n < AUTO_NAIVE_MAX {
                Engine::Naive
            } else if n >= AUTO_PARALLEL_MIN && rim_par::num_threads() > 1 {
                Engine::Parallel
            } else {
                Engine::Indexed
            }
        }
        Engine::PhysicalNaive => Engine::Naive,
        Engine::PhysicalIndexed => Engine::Indexed,
        // The streaming interference kernel has no witness-construction
        // analogue; it normalizes to the indexed strategy likewise.
        Engine::Streaming => Engine::Indexed,
        e => e,
    }
}

/// Builds the spatial index the witness predicates query: all node
/// positions, with the median UDG edge length as the cell hint (witness
/// queries use radius `|uv|` of the edge under test, so the median edge
/// balances bucket population against buckets touched). Falls back to a
/// kd-tree on degenerate spreads exactly as the interference engine
/// does.
// rim-lint: allow(panic-freedom) — the median index is guarded by the is_empty branch
pub fn witness_index(nodes: &NodeSet, udg: &AdjacencyList) -> SpatialIndex {
    let _span = rim_obs::span("control/witness_index");
    let mut lens: Vec<f64> = udg.edges().iter().map(|e| e.weight).collect();
    let hint = if lens.is_empty() {
        1.0 // edgeless UDG: nothing will be queried, any shape works
    } else {
        lens.sort_unstable_by(f64::total_cmp);
        lens[lens.len() / 2]
    };
    SpatialIndex::build(nodes.points(), hint)
}

/// Keeps the edges of `edges` for which `keep` holds, evaluating the
/// predicate across `threads` workers of the shared chunked executor
/// (inline when `threads <= 1`), and adds survivors to a fresh
/// `n`-vertex adjacency list *in input order* — so the result is
/// independent of the thread count by construction.
// rim-lint: allow(panic-freedom) — `par_map_ranges` only yields indices below `edges.len()`
pub(crate) fn filter_edges<F>(n: usize, edges: &[Edge], threads: usize, keep: F) -> AdjacencyList
where
    F: Fn(&Edge) -> bool + Sync,
{
    let _span = rim_obs::span("control/filter_edges");
    let mask = rim_par::par_map_ranges(edges.len(), threads, |range| {
        range.map(|i| keep(&edges[i])).collect::<Vec<bool>>()
    });
    let mut g = AdjacencyList::new(n);
    let mut kept_count = 0u64;
    for (e, kept) in edges.iter().zip(mask.into_iter().flatten()) {
        if kept {
            kept_count += 1;
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    rim_obs::counter_add("control.edges_in", edges.len() as u64);
    rim_obs::counter_add("control.edges_kept", kept_count);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn auto_resolution_matches_size_policy() {
        assert_eq!(resolve(Engine::Auto, 10), Engine::Naive);
        let mid = resolve(Engine::Auto, 1000);
        assert!(mid == Engine::Indexed, "mid-size must avoid thread spawn");
        for e in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
            assert_eq!(resolve(e, 5000), e, "explicit engines pass through");
        }
    }

    #[test]
    fn filter_edges_is_thread_count_invariant() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new((i % 8) as f64 * 0.3, (i / 8) as f64 * 0.3))
            .collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let edges = udg.edges();
        let keep = |e: &Edge| e.weight < 0.5;
        let single = filter_edges(ns.len(), &edges, 1, keep);
        for threads in 2..=8 {
            let multi = filter_edges(ns.len(), &edges, threads, keep);
            assert_eq!(single.edges(), multi.edges(), "threads={threads}");
        }
    }

    #[test]
    fn witness_index_handles_edgeless_graphs() {
        let ns = NodeSet::on_line(&[0.0, 5.0, 10.0]);
        let udg = unit_disk_graph(&ns);
        assert_eq!(udg.num_edges(), 0);
        let idx = witness_index(&ns, &udg);
        assert_eq!(idx.len(), 3);
    }
}
