//! The Relative Neighborhood Graph, intersected with the UDG.
//!
//! Edge `{u, v}` survives iff no third node `w` is simultaneously closer
//! to both endpoints than they are to each other (the "lune" is empty).
//! RNG ⊆ Gabriel graph, and RNG still contains the MST and therefore the
//! Nearest Neighbor Forest.

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Returns `true` if `{u, v}` is an RNG edge: there is no `w` with
/// `max(|uw|, |wv|) < |uv|` (strict lune; a node exactly at distance
/// `|uv|` from one endpoint does not block).
pub fn is_rng_edge(nodes: &NodeSet, u: usize, v: usize) -> bool {
    let d_uv = nodes.dist_sq(u, v);
    (0..nodes.len()).all(|w| {
        w == u || w == v || nodes.dist_sq(u, w).max(nodes.dist_sq(w, v)) >= d_uv
    })
}

/// Builds the RNG restricted to UDG edges.
pub fn relative_neighborhood_graph(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    let mut g = AdjacencyList::new(nodes.len());
    for e in udg.edges() {
        if is_rng_edge(nodes, e.u, e.v) {
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gabriel::gabriel_graph;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn lune_node_blocks_edge() {
        // Equilateral-ish: w close to both u and v.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.3),
        ]);
        assert!(!is_rng_edge(&ns, 0, 1));
        assert!(is_rng_edge(&ns, 0, 2));
        assert!(is_rng_edge(&ns, 1, 2));
    }

    #[test]
    fn rng_is_subgraph_of_gabriel() {
        let mut state = 31u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..60).map(|_| Point::new(rnd() * 1.8, rnd() * 1.8)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let r = relative_neighborhood_graph(&ns, &udg);
        let g = gabriel_graph(&ns, &udg);
        for e in r.edges() {
            assert!(g.graph().has_edge(e.u, e.v), "RNG edge missing from GG");
        }
        assert!(r.preserves_connectivity_of(&udg));
        assert!(contains_nnf(&r, &udg));
    }

    #[test]
    fn collinear_chain_keeps_consecutive_edges_only() {
        let ns = NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]);
        let udg = unit_disk_graph(&ns);
        let t = relative_neighborhood_graph(&ns, &udg);
        assert_eq!(t.num_edges(), 3);
        assert!(t.graph().has_edge(0, 1) && t.graph().has_edge(1, 2) && t.graph().has_edge(2, 3));
    }
}
