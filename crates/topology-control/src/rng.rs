//! The Relative Neighborhood Graph, intersected with the UDG.
//!
//! Edge `{u, v}` survives iff no third node `w` is simultaneously closer
//! to both endpoints than they are to each other (the "lune" is empty).
//! RNG ⊆ Gabriel graph, and RNG still contains the MST and therefore the
//! Nearest Neighbor Forest.
//!
//! As for the Gabriel graph, two witness predicates agree exactly: the
//! brute-force [`is_rng_edge_naive`] oracle scans all `n` nodes, while
//! [`is_rng_edge`] queries a [`SpatialIndex`] for the closed disk of
//! radius `|uv|` around `u` — a lune witness has `|uw| < |uv|`, so the
//! disk contains it even at floating-point level — and re-applies the
//! exact predicate to the candidates.

use crate::pipeline::{self, witness_index};
use rim_core::receiver::Engine;
use rim_geom::SpatialIndex;
use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Returns `true` if `{u, v}` is an RNG edge: there is no `w` with
/// `max(|uw|, |wv|) < |uv|` (strict lune; a node exactly at distance
/// `|uv|` from one endpoint does not block). Brute-force `O(n)` scan —
/// the retained witness oracle.
pub fn is_rng_edge_naive(nodes: &NodeSet, u: usize, v: usize) -> bool {
    let d_uv = nodes.dist_sq(u, v);
    (0..nodes.len()).all(|w| {
        w == u || w == v || nodes.dist_sq(u, w).max(nodes.dist_sq(w, v)) >= d_uv
    })
}

/// Index-backed lune test, exactly equal to [`is_rng_edge_naive`]:
/// candidates come from the closed disk of radius `|uv|` around `u`
/// (a superset of the lune) and are filtered by the identical
/// squared-distance predicate.
pub fn is_rng_edge(nodes: &NodeSet, index: &SpatialIndex, u: usize, v: usize) -> bool {
    let d_uv = nodes.dist_sq(u, v);
    let mut blocked = false;
    index.for_each_in_disk(nodes.pos(u), nodes.dist(u, v), |w| {
        if w != u && w != v && nodes.dist_sq(u, w).max(nodes.dist_sq(w, v)) < d_uv {
            blocked = true;
        }
    });
    !blocked
}

/// Builds the RNG restricted to UDG edges with an explicit [`Engine`]:
/// `Naive` scans all nodes per edge (`O(n·m)`), `Indexed` runs one local
/// disk query per edge, `Parallel` fans the queries out over the shared
/// executor. All engines return the same topology.
pub fn relative_neighborhood_graph_with(
    nodes: &NodeSet,
    udg: &AdjacencyList,
    engine: Engine,
) -> Topology {
    match pipeline::resolve(engine, nodes.len()) {
        Engine::Naive => {
            let mut g = AdjacencyList::new(nodes.len());
            for e in udg.edges() {
                if is_rng_edge_naive(nodes, e.u, e.v) {
                    g.add_edge(e.u, e.v, e.weight);
                }
            }
            Topology::from_graph(nodes.clone(), g)
        }
        Engine::Indexed | Engine::PhysicalNaive | Engine::PhysicalIndexed | Engine::Streaming => {
            relative_neighborhood_graph_parallel(nodes, udg, 1)
        }
        Engine::Parallel | Engine::Auto => {
            relative_neighborhood_graph_parallel(nodes, udg, rim_par::num_threads())
        }
    }
}

/// Index-backed construction across an explicit number of worker
/// threads (`1` = the indexed engine, inline). The edge set is
/// independent of `threads` by construction.
pub fn relative_neighborhood_graph_parallel(
    nodes: &NodeSet,
    udg: &AdjacencyList,
    threads: usize,
) -> Topology {
    let index = witness_index(nodes, udg);
    let edges = udg.edges();
    let g = pipeline::filter_edges(nodes.len(), &edges, threads, |e| {
        is_rng_edge(nodes, &index, e.u, e.v)
    });
    Topology::from_graph(nodes.clone(), g)
}

/// Builds the RNG restricted to UDG edges ([`Engine::Auto`]) — the
/// default entry point.
pub fn relative_neighborhood_graph(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    relative_neighborhood_graph_with(nodes, udg, Engine::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gabriel::gabriel_graph;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn lune_node_blocks_edge() {
        // Equilateral-ish: w close to both u and v.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.3),
        ]);
        assert!(!is_rng_edge_naive(&ns, 0, 1));
        assert!(is_rng_edge_naive(&ns, 0, 2));
        assert!(is_rng_edge_naive(&ns, 1, 2));
        let udg = unit_disk_graph(&ns);
        let idx = witness_index(&ns, &udg);
        assert!(!is_rng_edge(&ns, &idx, 0, 1), "indexed lune test must agree");
        assert!(is_rng_edge(&ns, &idx, 0, 2));
    }

    #[test]
    fn rng_is_subgraph_of_gabriel() {
        let mut state = 31u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..60).map(|_| Point::new(rnd() * 1.8, rnd() * 1.8)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let r = relative_neighborhood_graph(&ns, &udg);
        let g = gabriel_graph(&ns, &udg);
        for e in r.edges() {
            assert!(g.graph().has_edge(e.u, e.v), "RNG edge missing from GG");
        }
        assert!(r.preserves_connectivity_of(&udg));
        assert!(contains_nnf(&r, &udg));
    }

    #[test]
    fn collinear_chain_keeps_consecutive_edges_only() {
        let ns = NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]);
        let udg = unit_disk_graph(&ns);
        let t = relative_neighborhood_graph(&ns, &udg);
        assert_eq!(t.num_edges(), 3);
        assert!(t.graph().has_edge(0, 1) && t.graph().has_edge(1, 2) && t.graph().has_edge(2, 3));
    }

    #[test]
    fn every_engine_builds_the_same_graph() {
        let mut state = 91u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..70).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let oracle = relative_neighborhood_graph_with(&ns, &udg, Engine::Naive);
        for e in [Engine::Indexed, Engine::Parallel, Engine::Auto] {
            let t = relative_neighborhood_graph_with(&ns, &udg, e);
            assert_eq!(oracle.edges(), t.edges(), "engine {}", e.name());
        }
    }
}
