//! LMST — the local MST-based topology control of Li, Hou and Sha
//! (INFOCOM 2003), reference \[9\] of the paper.
//!
//! Every node `u` computes the Euclidean MST of its closed 1-hop
//! neighborhood `N(u) ∪ {u}` and *selects* the nodes adjacent to it on
//! that local tree. The output keeps a UDG edge `{u, v}` when the
//! endpoints' selections agree:
//!
//! * [`LmstVariant::Intersection`] (`G₀⁻`): both selected each other —
//!   the degree-bounded variant (≤ 6 in general position);
//! * [`LmstVariant::Union`] (`G₀⁺`): either selected the other.
//!
//! Li–Hou–Sha prove both preserve the UDG's connectivity; the
//! intersection variant is the default here. Like every construction of
//! its generation, LMST contains the Nearest Neighbor Forest (a node's
//! nearest neighbor is its first local-MST edge), so Theorem 4.1 of the
//! reproduced paper applies to it.
//!
//! Engines: the naive path re-runs the original per-node construction
//! (fresh allocations, `O(deg)` adjacency probes). The fast path feeds
//! the *identical* local edge list to the same Kruskal through reusable
//! scratch buffers and an `O(1)` per-node local-id map, so selections —
//! and therefore the output — are equal by construction; `Parallel`
//! fans the per-node stage out over the shared executor with one
//! scratch per worker.

use crate::pipeline;
use rim_core::receiver::Engine;
use rim_graph::mst::kruskal;
use rim_graph::{AdjacencyList, Edge};
use rim_udg::{NodeSet, Topology};

/// Which symmetrization of the directed local-MST selections to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmstVariant {
    /// Keep `{u, v}` iff `u` selected `v` **and** `v` selected `u`.
    Intersection,
    /// Keep `{u, v}` iff `u` selected `v` **or** `v` selected `u`.
    Union,
}

/// The nodes `u` selects: its neighbors on the MST of `N(u) ∪ {u}`.
/// Original allocation-per-node construction — the retained oracle path
/// the scratch-buffer implementation is differential-tested against.
fn local_selection_naive(nodes: &NodeSet, udg: &AdjacencyList, u: usize) -> Vec<usize> {
    // Local vertex ids: 0 = u, then the UDG neighbors in index order.
    let locals: Vec<usize> = std::iter::once(u).chain(udg.neighbors(u)).collect();
    if locals.len() == 1 {
        return Vec::new();
    }
    let mut edges = Vec::new();
    for a in 0..locals.len() {
        for b in (a + 1)..locals.len() {
            let (ga, gb) = (locals[a], locals[b]);
            // The local graph is the UDG induced on N(u) ∪ {u}.
            if ga == u || gb == u || udg.has_edge(ga, gb) {
                edges.push(Edge::new(a, b, nodes.dist(ga, gb)));
            }
        }
    }
    let mst = kruskal(locals.len(), &edges);
    mst.iter()
        .filter(|e| e.touches(0))
        .map(|e| locals[e.other(0)])
        .collect()
}

/// Reusable per-worker scratch for the fast local-MST stage: the
/// global→local id map (sentinel-reset between nodes), a local
/// adjacency mark row, and the local vertex/edge buffers. One instance
/// serves a whole chunk of nodes without reallocating.
struct Scratch {
    /// `local_id[g]` = local index of global node `g`, or `usize::MAX`.
    local_id: Vec<usize>,
    /// `adj[b]` = is local vertex `b` a UDG neighbor of the current `a`.
    adj: Vec<bool>,
    /// Local vertex ids: `locals[0] = u`, then the neighbors in order.
    locals: Vec<usize>,
    /// Local edge list handed to Kruskal.
    edges: Vec<Edge>,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        Scratch {
            local_id: vec![usize::MAX; n],
            adj: Vec::new(),
            locals: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Computes `u`'s selection, producing the exact edge list (same
    /// order, same weights) as [`local_selection_naive`] — adjacency is
    /// answered by the mark row instead of `O(deg)` `has_edge` probes.
    fn selection(&mut self, nodes: &NodeSet, udg: &AdjacencyList, u: usize) -> Vec<usize> {
        self.locals.clear();
        self.locals.push(u);
        self.locals.extend(udg.neighbors(u));
        let len = self.locals.len();
        if len == 1 {
            return Vec::new();
        }
        for (i, &g) in self.locals.iter().enumerate() {
            self.local_id[g] = i;
        }
        if self.adj.len() < len {
            self.adj.resize(len, false);
        }
        self.edges.clear();
        for a in 0..len {
            let ga = self.locals[a];
            // Edges incident to u (a == 0) exist unconditionally; for the
            // others, mark ga's local neighbors for O(1) membership tests.
            if ga != u {
                for w in udg.neighbors(ga) {
                    let id = self.local_id[w];
                    if id != usize::MAX {
                        self.adj[id] = true;
                    }
                }
            }
            for b in (a + 1)..len {
                if ga == u || self.adj[b] {
                    let gb = self.locals[b];
                    self.edges.push(Edge::new(a, b, nodes.dist(ga, gb)));
                }
            }
            if ga != u {
                for w in udg.neighbors(ga) {
                    let id = self.local_id[w];
                    if id != usize::MAX {
                        self.adj[id] = false;
                    }
                }
            }
        }
        let mst = kruskal(len, &self.edges);
        let sel = mst
            .iter()
            .filter(|e| e.touches(0))
            .map(|e| self.locals[e.other(0)])
            .collect();
        for &g in &self.locals {
            self.local_id[g] = usize::MAX;
        }
        sel
    }
}

/// Per-node selections for the chosen engine; `threads` only applies to
/// the parallel path.
fn selections(
    nodes: &NodeSet,
    udg: &AdjacencyList,
    engine: Engine,
    threads: usize,
) -> Vec<Vec<usize>> {
    let n = nodes.len();
    match engine {
        Engine::Naive => (0..n).map(|u| local_selection_naive(nodes, udg, u)).collect(),
        Engine::Indexed | Engine::PhysicalNaive | Engine::PhysicalIndexed | Engine::Streaming => {
            let mut scratch = Scratch::new(n);
            (0..n).map(|u| scratch.selection(nodes, udg, u)).collect()
        }
        Engine::Parallel | Engine::Auto => rim_par::par_map_ranges(n, threads, |range| {
            let mut scratch = Scratch::new(n);
            range
                .map(|u| scratch.selection(nodes, udg, u))
                .collect::<Vec<Vec<usize>>>()
        })
        .into_iter()
        .flatten()
        .collect(),
    }
}

/// Builds the LMST topology over the UDG with an explicit [`Engine`]
/// (see the module docs for what each engine changes — never the
/// output, a differential-tested invariant).
pub fn lmst_with(
    nodes: &NodeSet,
    udg: &AdjacencyList,
    variant: LmstVariant,
    engine: Engine,
) -> Topology {
    let resolved = pipeline::resolve(engine, nodes.len());
    let threads = match resolved {
        Engine::Parallel | Engine::Auto => rim_par::num_threads(),
        _ => 1,
    };
    lmst_assemble(nodes, udg, variant, selections(nodes, udg, resolved, threads))
}

/// Scratch-buffer construction across an explicit number of worker
/// threads (`1` = the indexed engine, inline). The edge set is
/// independent of `threads` by construction.
pub fn lmst_parallel(
    nodes: &NodeSet,
    udg: &AdjacencyList,
    variant: LmstVariant,
    threads: usize,
) -> Topology {
    lmst_assemble(
        nodes,
        udg,
        variant,
        selections(nodes, udg, Engine::Parallel, threads),
    )
}

/// Symmetrizes the selections into the output topology. Selection lists
/// are sorted once so the agreement test is a `binary_search`, not a
/// linear scan (quadratic blow-up on dense instances otherwise).
fn lmst_assemble(
    nodes: &NodeSet,
    udg: &AdjacencyList,
    variant: LmstVariant,
    mut selections: Vec<Vec<usize>>,
) -> Topology {
    for s in &mut selections {
        s.sort_unstable();
    }
    let selected = |u: usize, v: usize| selections[u].binary_search(&v).is_ok();
    let mut g = AdjacencyList::new(nodes.len());
    for e in udg.edges() {
        let keep = match variant {
            LmstVariant::Intersection => selected(e.u, e.v) && selected(e.v, e.u),
            LmstVariant::Union => selected(e.u, e.v) || selected(e.v, e.u),
        };
        if keep {
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

/// Builds the LMST topology over the UDG ([`Engine::Auto`]) — the
/// default entry point.
pub fn lmst(nodes: &NodeSet, udg: &AdjacencyList, variant: LmstVariant) -> Topology {
    lmst_with(nodes, udg, variant, Engine::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new((0..n).map(|_| Point::new(rnd() * side, rnd() * side)).collect())
    }

    #[test]
    fn both_variants_preserve_connectivity() {
        for seed in 1..5u64 {
            let ns = random_field(70, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            for variant in [LmstVariant::Intersection, LmstVariant::Union] {
                let t = lmst(&ns, &udg, variant);
                assert!(
                    t.preserves_connectivity_of(&udg),
                    "seed={seed} variant={variant:?}"
                );
            }
        }
    }

    #[test]
    fn intersection_is_subgraph_of_union() {
        let ns = random_field(60, 2.0, 9);
        let udg = unit_disk_graph(&ns);
        let inter = lmst(&ns, &udg, LmstVariant::Intersection);
        let union = lmst(&ns, &udg, LmstVariant::Union);
        for e in inter.edges() {
            assert!(union.graph().has_edge(e.u, e.v));
        }
        assert!(inter.num_edges() <= union.num_edges());
    }

    #[test]
    fn contains_the_nnf() {
        let ns = random_field(60, 2.0, 12);
        let udg = unit_disk_graph(&ns);
        let t = lmst(&ns, &udg, LmstVariant::Intersection);
        assert!(contains_nnf(&t, &udg));
    }

    #[test]
    fn degree_is_small_in_general_position() {
        let ns = random_field(120, 2.5, 4);
        let udg = unit_disk_graph(&ns);
        let t = lmst(&ns, &udg, LmstVariant::Intersection);
        assert!(
            t.graph().max_degree() <= 6,
            "LMST degree bound violated: {}",
            t.graph().max_degree()
        );
    }

    #[test]
    fn chain_is_kept_verbatim() {
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.8, 1.2]);
        let udg = unit_disk_graph(&ns);
        let t = lmst(&ns, &udg, LmstVariant::Intersection);
        assert_eq!(t.num_edges(), 3);
    }

    #[test]
    fn isolated_node_selects_nothing() {
        let ns = NodeSet::on_line(&[0.0, 5.0, 5.3]);
        let udg = unit_disk_graph(&ns);
        let t = lmst(&ns, &udg, LmstVariant::Intersection);
        assert_eq!(t.graph().degree(0), 0);
        assert!(t.graph().has_edge(1, 2));
    }

    #[test]
    fn scratch_selection_equals_naive_selection() {
        for seed in [3u64, 8, 21] {
            let ns = random_field(80, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            let mut scratch = Scratch::new(ns.len());
            for u in 0..ns.len() {
                assert_eq!(
                    scratch.selection(&ns, &udg, u),
                    local_selection_naive(&ns, &udg, u),
                    "seed={seed} u={u}"
                );
            }
        }
    }

    #[test]
    fn every_engine_builds_the_same_graph() {
        let ns = random_field(90, 2.2, 14);
        let udg = unit_disk_graph(&ns);
        for variant in [LmstVariant::Intersection, LmstVariant::Union] {
            let oracle = lmst_with(&ns, &udg, variant, Engine::Naive);
            for e in [Engine::Indexed, Engine::Parallel, Engine::Auto] {
                let t = lmst_with(&ns, &udg, variant, e);
                assert_eq!(oracle.edges(), t.edges(), "engine {} {variant:?}", e.name());
            }
        }
    }
}
