//! LMST — the local MST-based topology control of Li, Hou and Sha
//! (INFOCOM 2003), reference \[9\] of the paper.
//!
//! Every node `u` computes the Euclidean MST of its closed 1-hop
//! neighborhood `N(u) ∪ {u}` and *selects* the nodes adjacent to it on
//! that local tree. The output keeps a UDG edge `{u, v}` when the
//! endpoints' selections agree:
//!
//! * [`LmstVariant::Intersection`] (`G₀⁻`): both selected each other —
//!   the degree-bounded variant (≤ 6 in general position);
//! * [`LmstVariant::Union`] (`G₀⁺`): either selected the other.
//!
//! Li–Hou–Sha prove both preserve the UDG's connectivity; the
//! intersection variant is the default here. Like every construction of
//! its generation, LMST contains the Nearest Neighbor Forest (a node's
//! nearest neighbor is its first local-MST edge), so Theorem 4.1 of the
//! reproduced paper applies to it.

use rim_graph::mst::kruskal;
use rim_graph::{AdjacencyList, Edge};
use rim_udg::{NodeSet, Topology};

/// Which symmetrization of the directed local-MST selections to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmstVariant {
    /// Keep `{u, v}` iff `u` selected `v` **and** `v` selected `u`.
    Intersection,
    /// Keep `{u, v}` iff `u` selected `v` **or** `v` selected `u`.
    Union,
}

/// The nodes `u` selects: its neighbors on the MST of `N(u) ∪ {u}`.
fn local_selection(nodes: &NodeSet, udg: &AdjacencyList, u: usize) -> Vec<usize> {
    // Local vertex ids: 0 = u, then the UDG neighbors in index order.
    let locals: Vec<usize> = std::iter::once(u).chain(udg.neighbors(u)).collect();
    if locals.len() == 1 {
        return Vec::new();
    }
    let mut edges = Vec::new();
    for a in 0..locals.len() {
        for b in (a + 1)..locals.len() {
            let (ga, gb) = (locals[a], locals[b]);
            // The local graph is the UDG induced on N(u) ∪ {u}.
            if ga == u || gb == u || udg.has_edge(ga, gb) {
                edges.push(Edge::new(a, b, nodes.dist(ga, gb)));
            }
        }
    }
    let mst = kruskal(locals.len(), &edges);
    mst.iter()
        .filter(|e| e.touches(0))
        .map(|e| locals[e.other(0)])
        .collect()
}

/// Builds the LMST topology over the UDG.
pub fn lmst(nodes: &NodeSet, udg: &AdjacencyList, variant: LmstVariant) -> Topology {
    let n = nodes.len();
    let selections: Vec<Vec<usize>> = (0..n)
        .map(|u| local_selection(nodes, udg, u))
        .collect();
    let selected = |u: usize, v: usize| selections[u].contains(&v);
    let mut g = AdjacencyList::new(n);
    for e in udg.edges() {
        let keep = match variant {
            LmstVariant::Intersection => selected(e.u, e.v) && selected(e.v, e.u),
            LmstVariant::Union => selected(e.u, e.v) || selected(e.v, e.u),
        };
        if keep {
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new((0..n).map(|_| Point::new(rnd() * side, rnd() * side)).collect())
    }

    #[test]
    fn both_variants_preserve_connectivity() {
        for seed in 1..5u64 {
            let ns = random_field(70, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            for variant in [LmstVariant::Intersection, LmstVariant::Union] {
                let t = lmst(&ns, &udg, variant);
                assert!(
                    t.preserves_connectivity_of(&udg),
                    "seed={seed} variant={variant:?}"
                );
            }
        }
    }

    #[test]
    fn intersection_is_subgraph_of_union() {
        let ns = random_field(60, 2.0, 9);
        let udg = unit_disk_graph(&ns);
        let inter = lmst(&ns, &udg, LmstVariant::Intersection);
        let union = lmst(&ns, &udg, LmstVariant::Union);
        for e in inter.edges() {
            assert!(union.graph().has_edge(e.u, e.v));
        }
        assert!(inter.num_edges() <= union.num_edges());
    }

    #[test]
    fn contains_the_nnf() {
        let ns = random_field(60, 2.0, 12);
        let udg = unit_disk_graph(&ns);
        let t = lmst(&ns, &udg, LmstVariant::Intersection);
        assert!(contains_nnf(&t, &udg));
    }

    #[test]
    fn degree_is_small_in_general_position() {
        let ns = random_field(120, 2.5, 4);
        let udg = unit_disk_graph(&ns);
        let t = lmst(&ns, &udg, LmstVariant::Intersection);
        assert!(
            t.graph().max_degree() <= 6,
            "LMST degree bound violated: {}",
            t.graph().max_degree()
        );
    }

    #[test]
    fn chain_is_kept_verbatim() {
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.8, 1.2]);
        let udg = unit_disk_graph(&ns);
        let t = lmst(&ns, &udg, LmstVariant::Intersection);
        assert_eq!(t.num_edges(), 3);
    }

    #[test]
    fn isolated_node_selects_nothing() {
        let ns = NodeSet::on_line(&[0.0, 5.0, 5.3]);
        let udg = unit_disk_graph(&ns);
        let t = lmst(&ns, &udg, LmstVariant::Intersection);
        assert_eq!(t.graph().degree(0), 0);
        assert!(t.graph().has_edge(1, 2));
    }
}
