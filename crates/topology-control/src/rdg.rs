//! RDG — the Restricted Delaunay Graph, the planar-spanner family of
//! Li, Calinescu and Wan (INFOCOM 2002), reference \[10\] of the paper.
//!
//! The global Delaunay triangulation intersected with the UDG: a planar
//! constant-stretch spanner that contains the Gabriel graph (and hence
//! the MST and the Nearest Neighbor Forest — Theorem 4.1 applies).
//! The distributed protocol of \[10\] computes a local approximation of
//! exactly this structure; we compute it centrally.

use rim_geom::delaunay::delaunay;
use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Builds the Restricted Delaunay Graph (Delaunay ∩ UDG).
pub fn restricted_delaunay(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    let d = delaunay(nodes.points());
    let mut g = AdjacencyList::new(nodes.len());
    for (u, v) in d.edges {
        if udg.has_edge(u, v) {
            g.add_edge(u, v, nodes.dist(u, v));
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gabriel::gabriel_graph;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new((0..n).map(|_| Point::new(rnd() * side, rnd() * side)).collect())
    }

    #[test]
    fn contains_the_gabriel_graph() {
        let ns = random_field(70, 2.0, 21);
        let udg = unit_disk_graph(&ns);
        let rdg = restricted_delaunay(&ns, &udg);
        let gg = gabriel_graph(&ns, &udg);
        for e in gg.edges() {
            assert!(
                rdg.graph().has_edge(e.u, e.v),
                "Gabriel edge ({}, {}) missing from RDG",
                e.u,
                e.v
            );
        }
    }

    #[test]
    fn preserves_connectivity_and_contains_nnf() {
        for seed in 1..4u64 {
            let ns = random_field(60, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            let t = restricted_delaunay(&ns, &udg);
            assert!(t.preserves_connectivity_of(&udg), "seed={seed}");
            assert!(contains_nnf(&t, &udg), "seed={seed}");
        }
    }

    #[test]
    fn planarity_via_euler_bound() {
        // A planar graph has at most 3n − 6 edges.
        let ns = random_field(100, 1.2, 5);
        let udg = unit_disk_graph(&ns);
        let t = restricted_delaunay(&ns, &udg);
        assert!(t.num_edges() <= 3 * ns.len().saturating_sub(2));
        // …and is much sparser than the dense UDG it came from.
        assert!(t.num_edges() < udg.num_edges());
    }

    #[test]
    fn chain_input() {
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.8, 1.2]);
        let udg = unit_disk_graph(&ns);
        let t = restricted_delaunay(&ns, &udg);
        assert_eq!(t.num_edges(), 3);
        assert!(t.preserves_connectivity_of(&udg));
    }
}
