//! Euclidean minimum spanning tree of the UDG.
//!
//! The canonical energy-motivated topology: a minimum spanning forest of
//! the UDG under Euclidean edge lengths. It contains the Nearest Neighbor
//! Forest (the lightest edge at every vertex is in every MST under our
//! deterministic tie-breaking), so Theorem 4.1 applies to it.

use rim_graph::mst::kruskal;
use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Builds the Euclidean minimum spanning forest of the UDG.
pub fn euclidean_mst(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    let forest = kruskal(nodes.len(), &udg.edges());
    Topology::from_graph(nodes.clone(), AdjacencyList::from_edges(nodes.len(), &forest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn spans_each_component() {
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.8, 3.0, 3.5]);
        let udg = unit_disk_graph(&ns);
        let t = euclidean_mst(&ns, &udg);
        assert!(t.preserves_connectivity_of(&udg));
        assert!(t.is_forest());
        assert_eq!(t.num_edges(), 3);
    }

    #[test]
    fn contains_the_nnf() {
        let mut state = 5u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<rim_geom::Point> = (0..60)
            .map(|_| rim_geom::Point::new(rnd() * 2.0, rnd() * 2.0))
            .collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let t = euclidean_mst(&ns, &udg);
        assert!(contains_nnf(&t, &udg));
    }

    #[test]
    fn chain_mst_is_the_chain() {
        let ns = NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]);
        let udg = unit_disk_graph(&ns);
        let t = euclidean_mst(&ns, &udg);
        assert!(t.graph().has_edge(0, 1));
        assert!(t.graph().has_edge(1, 2));
        assert!(t.graph().has_edge(2, 3));
    }
}
