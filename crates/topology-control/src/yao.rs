//! The Yao graph — cone-based nearest-neighbor selection.
//!
//! Each node partitions the plane around itself into `k` equal cones and
//! keeps a link to the nearest UDG neighbor inside each cone. The
//! undirected output is the union of all selected links (a link exists if
//! *either* endpoint selected it), the convention of the CBTC family. For
//! `k >= 6` the result is connected on each UDG component and a spanner.

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Builds the Yao graph with `k >= 1` cones, restricted to UDG edges.
///
/// Cone `j` at node `u` covers angles `[2πj/k, 2π(j+1)/k)` measured from
/// the positive x-axis. Ties within a cone break towards the smaller
/// index.
pub fn yao_graph(nodes: &NodeSet, udg: &AdjacencyList, k: usize) -> Topology {
    assert!(k >= 1, "need at least one cone");
    let mut g = AdjacencyList::new(nodes.len());
    let tau = std::f64::consts::TAU;
    let mut best: Vec<Option<usize>> = vec![None; k];
    for u in 0..nodes.len() {
        best.iter_mut().for_each(|b| *b = None);
        let pu = nodes.pos(u);
        for v in udg.neighbors(u) {
            let mut angle = pu.angle_to(&nodes.pos(v));
            if angle < 0.0 {
                angle += tau;
            }
            let cone = ((angle / tau * k as f64) as usize).min(k - 1);
            let replace = match best[cone] {
                None => true,
                Some(w) => {
                    let dv = nodes.dist_sq(u, v);
                    let dw = nodes.dist_sq(u, w);
                    dv < dw || (dv == dw && v < w)
                }
            };
            if replace {
                best[cone] = Some(v);
            }
        }
        for &sel in best.iter().flatten() {
            if !g.has_edge(u, sel) {
                g.add_edge(u, sel, nodes.dist(u, sel));
            }
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn keeps_nearest_neighbor_per_cone() {
        // Two neighbors in the same (east) cone: only the closer is kept
        // by u, but the farther one may still select u from its side.
        let ns = NodeSet::on_line(&[0.0, 0.3, 0.8]);
        let udg = unit_disk_graph(&ns);
        let t = yao_graph(&ns, &udg, 4);
        assert!(t.graph().has_edge(0, 1));
        // Node 2's west cone selects node 1 (closer than 0), so {0,2}
        // only appears if node 0 selected 2 — it did not (1 is closer).
        assert!(!t.graph().has_edge(0, 2));
        assert!(t.graph().has_edge(1, 2));
    }

    #[test]
    fn six_cones_preserve_connectivity() {
        let mut state = 13u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..80).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let t = yao_graph(&ns, &udg, 6);
        assert!(t.preserves_connectivity_of(&udg));
        assert!(contains_nnf(&t, &udg));
        // Union convention still bounds *selected* out-degree by k, so the
        // edge count is at most k·n.
        assert!(t.num_edges() <= 6 * ns.len());
    }

    #[test]
    fn single_cone_is_nearest_neighbor_union() {
        // k = 1: every node selects its nearest neighbor only, so the Yao
        // union equals the Nearest Neighbor Forest.
        let ns = NodeSet::on_line(&[0.0, 0.25, 0.6, 0.61]);
        let udg = unit_disk_graph(&ns);
        let yao = yao_graph(&ns, &udg, 1);
        let nnf = crate::nnf::nearest_neighbor_forest(&ns, &udg);
        let mut a: Vec<_> = yao.edges().iter().map(|e| e.pair()).collect();
        let mut b: Vec<_> = nnf.edges().iter().map(|e| e.pair()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
