//! The Yao graph — cone-based nearest-neighbor selection.
//!
//! Each node partitions the plane around itself into `k` equal cones and
//! keeps a link to the nearest UDG neighbor inside each cone. The
//! undirected output is the union of all selected links (a link exists if
//! *either* endpoint selected it), the convention of the CBTC family. For
//! `k >= 6` the result is connected on each UDG component and a spanner.
//!
//! The per-node cone selection is already neighborhood-local, so the
//! `Naive` and `Indexed` engines share the serial path; the `Parallel`
//! engine fans nodes out over the shared executor and merges the
//! selected links through a sorted, deduplicated pair list — the same
//! edge set for every thread count.

use crate::pipeline;
use rim_core::receiver::Engine;
use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Fills `best` with node `u`'s per-cone selections: `best[j]` is the
/// closest UDG neighbor inside cone `j` (ties towards the smaller
/// index), or `None` for empty cones. `best` must have length `k`.
fn cone_selection(nodes: &NodeSet, udg: &AdjacencyList, u: usize, best: &mut [Option<usize>]) {
    let k = best.len();
    let tau = std::f64::consts::TAU;
    best.iter_mut().for_each(|b| *b = None);
    let pu = nodes.pos(u);
    for v in udg.neighbors(u) {
        let mut angle = pu.angle_to(&nodes.pos(v));
        if angle < 0.0 {
            angle += tau;
        }
        let cone = ((angle / tau * k as f64) as usize).min(k - 1);
        let replace = match best[cone] {
            None => true,
            Some(w) => {
                let dv = nodes.dist_sq(u, v);
                let dw = nodes.dist_sq(u, w);
                dv < dw || (dv == dw && v < w)
            }
        };
        if replace {
            best[cone] = Some(v);
        }
    }
}

/// Builds the Yao graph with `k >= 1` cones, restricted to UDG edges,
/// with an explicit [`Engine`]. Cone selection is already local, so
/// `Naive` and `Indexed` share the serial path; `Parallel` fans the
/// per-node stage out across workers. All engines return the same
/// topology.
///
/// Cone `j` at node `u` covers angles `[2πj/k, 2π(j+1)/k)` measured from
/// the positive x-axis. Ties within a cone break towards the smaller
/// index.
pub fn yao_graph_with(nodes: &NodeSet, udg: &AdjacencyList, k: usize, engine: Engine) -> Topology {
    assert!(k >= 1, "need at least one cone");
    match pipeline::resolve(engine, nodes.len()) {
        Engine::Naive | Engine::Indexed | Engine::PhysicalNaive | Engine::PhysicalIndexed | Engine::Streaming => {
            yao_graph_parallel(nodes, udg, k, 1)
        }
        Engine::Parallel | Engine::Auto => {
            yao_graph_parallel(nodes, udg, k, rim_par::num_threads())
        }
    }
}

/// Yao construction across an explicit number of worker threads (`1` =
/// serial, inline): each worker selects cones for a contiguous node
/// range, and the directed selections are merged into the undirected
/// union via a sorted pair list. The edge set is independent of
/// `threads` by construction.
pub fn yao_graph_parallel(
    nodes: &NodeSet,
    udg: &AdjacencyList,
    k: usize,
    threads: usize,
) -> Topology {
    assert!(k >= 1, "need at least one cone");
    let chunks = rim_par::par_map_ranges(nodes.len(), threads, |range| {
        let mut best: Vec<Option<usize>> = vec![None; k];
        let mut out: Vec<(usize, usize)> = Vec::new();
        for u in range {
            cone_selection(nodes, udg, u, &mut best);
            for &sel in best.iter().flatten() {
                out.push((u.min(sel), u.max(sel)));
            }
        }
        out
    });
    let mut pairs: Vec<(usize, usize)> = chunks.into_iter().flatten().collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut g = AdjacencyList::new(nodes.len());
    for (u, v) in pairs {
        g.add_edge(u, v, nodes.dist(u, v));
    }
    Topology::from_graph(nodes.clone(), g)
}

/// Builds the Yao graph with `k >= 1` cones, restricted to UDG edges
/// ([`Engine::Auto`]) — the default entry point.
pub fn yao_graph(nodes: &NodeSet, udg: &AdjacencyList, k: usize) -> Topology {
    yao_graph_with(nodes, udg, k, Engine::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn keeps_nearest_neighbor_per_cone() {
        // Two neighbors in the same (east) cone: only the closer is kept
        // by u, but the farther one may still select u from its side.
        let ns = NodeSet::on_line(&[0.0, 0.3, 0.8]);
        let udg = unit_disk_graph(&ns);
        let t = yao_graph(&ns, &udg, 4);
        assert!(t.graph().has_edge(0, 1));
        // Node 2's west cone selects node 1 (closer than 0), so {0,2}
        // only appears if node 0 selected 2 — it did not (1 is closer).
        assert!(!t.graph().has_edge(0, 2));
        assert!(t.graph().has_edge(1, 2));
    }

    #[test]
    fn six_cones_preserve_connectivity() {
        let mut state = 13u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..80).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let t = yao_graph(&ns, &udg, 6);
        assert!(t.preserves_connectivity_of(&udg));
        assert!(contains_nnf(&t, &udg));
        // Union convention still bounds *selected* out-degree by k, so the
        // edge count is at most k·n.
        assert!(t.num_edges() <= 6 * ns.len());
    }

    #[test]
    fn single_cone_is_nearest_neighbor_union() {
        // k = 1: every node selects its nearest neighbor only, so the Yao
        // union equals the Nearest Neighbor Forest.
        let ns = NodeSet::on_line(&[0.0, 0.25, 0.6, 0.61]);
        let udg = unit_disk_graph(&ns);
        let yao = yao_graph(&ns, &udg, 1);
        let nnf = crate::nnf::nearest_neighbor_forest(&ns, &udg);
        let mut a: Vec<_> = yao.edges().iter().map(|e| e.pair()).collect();
        let mut b: Vec<_> = nnf.edges().iter().map(|e| e.pair()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn every_engine_builds_the_same_graph() {
        let mut state = 55u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..90).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let oracle = yao_graph_with(&ns, &udg, 6, Engine::Naive);
        for e in [Engine::Indexed, Engine::Parallel, Engine::Auto] {
            let t = yao_graph_with(&ns, &udg, 6, e);
            let mut a: Vec<_> = oracle.edges().iter().map(|x| x.pair()).collect();
            let mut b: Vec<_> = t.edges().iter().map(|x| x.pair()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "engine {}", e.name());
        }
    }
}
