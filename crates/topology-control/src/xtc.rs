//! XTC — Wattenhofer & Zollinger's practical topology control (WMAN 2004),
//! reference \[19\] of the paper.
//!
//! Each node ranks its UDG neighbors by link quality — here Euclidean
//! distance with index tie-breaking, the standard instantiation — and
//! drops the link to neighbor `v` iff some third node `w` ranks better
//! than `v` from *both* sides:
//!
//! ```text
//! drop {u, v}  ⟺  ∃ w : w ≺_u v  and  w ≺_v u
//! ```
//!
//! With distance ranking this coincides with the Relative Neighborhood
//! Graph up to tie-breaking, preserves connectivity, and has degree at
//! most 6 in general position. XTC needs no position information — only
//! the neighbor rankings — which is why the paper lists it among the
//! "minimal assumptions" algorithms.
//!
//! The witness scan is already neighborhood-local (`O(deg²)` per node),
//! so the `Naive` and `Indexed` engines share the serial path; the
//! `Parallel` engine fans the per-edge test out over the shared
//! executor.

use crate::pipeline;
use rim_core::receiver::Engine;
use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// The total-order ranking `w ≺_u v`: distance from `u`, then index.
#[inline]
fn ranks_better(nodes: &NodeSet, u: usize, w: usize, v: usize) -> bool {
    let dw = nodes.dist_sq(u, w);
    let dv = nodes.dist_sq(u, v);
    dw < dv || (dw == dv && w < v)
}

/// Returns `true` if XTC keeps the UDG edge `{u, v}`.
pub fn keeps_edge(nodes: &NodeSet, udg: &AdjacencyList, u: usize, v: usize) -> bool {
    // A blocking w must be a common UDG neighbor ranked better from both
    // sides; it suffices to scan u's neighbor list.
    !udg.neighbors(u).any(|w| {
        w != v
            && udg.has_edge(w, v)
            && ranks_better(nodes, u, w, v)
            && ranks_better(nodes, v, w, u)
    })
}

/// Builds the XTC topology over the UDG with an explicit [`Engine`].
/// The per-edge test is already local, so `Naive` and `Indexed` share
/// the serial path; `Parallel` fans it out across workers. All engines
/// return the same topology.
pub fn xtc_with(nodes: &NodeSet, udg: &AdjacencyList, engine: Engine) -> Topology {
    match pipeline::resolve(engine, nodes.len()) {
        Engine::Naive | Engine::Indexed | Engine::PhysicalNaive | Engine::PhysicalIndexed | Engine::Streaming => {
            xtc_parallel(nodes, udg, 1)
        }
        Engine::Parallel | Engine::Auto => xtc_parallel(nodes, udg, rim_par::num_threads()),
    }
}

/// XTC across an explicit number of worker threads (`1` = serial,
/// inline). The edge set is independent of `threads` by construction.
pub fn xtc_parallel(nodes: &NodeSet, udg: &AdjacencyList, threads: usize) -> Topology {
    let edges = udg.edges();
    let g = pipeline::filter_edges(nodes.len(), &edges, threads, |e| {
        keeps_edge(nodes, udg, e.u, e.v)
    });
    Topology::from_graph(nodes.clone(), g)
}

/// Builds the XTC topology over the UDG ([`Engine::Auto`]) — the
/// default entry point.
pub fn xtc(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    xtc_with(nodes, udg, Engine::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    #[test]
    fn drops_the_long_side_of_a_triangle() {
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(0.45, 0.2),
        ]);
        let udg = unit_disk_graph(&ns);
        let t = xtc(&ns, &udg);
        assert!(!t.graph().has_edge(0, 1), "node 2 ranks better from both");
        assert!(t.graph().has_edge(0, 2));
        assert!(t.graph().has_edge(1, 2));
        assert!(t.preserves_connectivity_of(&udg));
    }

    #[test]
    fn preserves_connectivity_and_contains_nnf_on_random_instances() {
        let mut state = 2024u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..5 {
            let pts: Vec<Point> = (0..60).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect();
            let ns = NodeSet::new(pts);
            let udg = unit_disk_graph(&ns);
            let t = xtc(&ns, &udg);
            assert!(t.preserves_connectivity_of(&udg));
            assert!(contains_nnf(&t, &udg));
        }
    }

    #[test]
    fn equidistant_ties_resolved_by_index() {
        // u between two equidistant neighbors that are also in range of
        // each other: exactly one of the symmetric edges is dropped,
        // deterministically.
        let ns = NodeSet::on_line(&[0.0, 0.5, 1.0]);
        let udg = unit_disk_graph(&ns);
        let t = xtc(&ns, &udg);
        assert!(t.graph().has_edge(0, 1));
        assert!(t.graph().has_edge(1, 2));
        assert!(!t.graph().has_edge(0, 2));
        assert!(t.preserves_connectivity_of(&udg));
    }

    #[test]
    fn every_engine_builds_the_same_graph() {
        let mut state = 40u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..80).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect();
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        let oracle = xtc_with(&ns, &udg, Engine::Naive);
        for e in [Engine::Indexed, Engine::Parallel, Engine::Auto] {
            let t = xtc_with(&ns, &udg, e);
            assert_eq!(oracle.edges(), t.edges(), "engine {}", e.name());
        }
    }
}
