//! LIFE and LISE — the interference-aware constructions of Burkhart et
//! al. (MobiHoc 2004), reference \[2\] of the paper.
//!
//! These are the noted exception in Section 4: they do **not** necessarily
//! contain the Nearest Neighbor Forest, because they greedily minimize the
//! *sender-centric* link-coverage measure instead of link length.
//! The paper remarks that they nevertheless "perform badly for our
//! (receiver-centric) model" — a claim the benchmark harness reproduces.
//!
//! * **LIFE** (Low-Interference Forest Establisher): Kruskal over UDG
//!   edges ordered by coverage; the result is a spanning forest whose
//!   maximum link coverage is minimal among all spanning forests.
//! * **LISE** (Low-Interference Spanner Establisher): adds edges in
//!   coverage order until every UDG edge is `t`-spanned, yielding a
//!   spanner with minimum-possible maximum coverage.

use rim_core::sender::coverage_vector;
use rim_graph::shortest_path::dijkstra;
use rim_graph::{AdjacencyList, Edge, UnionFind};
use rim_udg::{NodeSet, Topology};

/// UDG edges sorted by sender-centric coverage (then by the deterministic
/// edge order).
fn edges_by_coverage(nodes: &NodeSet, udg: &AdjacencyList) -> Vec<(usize, Edge)> {
    // Coverage is defined on the *node positions* only (disks of radius
    // |uv|), so it can be computed before any topology exists. Wrapping
    // the UDG edge set in a throwaway topology lets the batched,
    // index-accelerated kernel price all edges in one pass — O(n + Σ_e
    // Cov(e)) instead of O(n·m) — and `coverage_vector` follows the
    // `edges()` order, so the zip below lines up.
    let full = Topology::from_graph(nodes.clone(), udg.clone());
    let mut out: Vec<(usize, Edge)> = coverage_vector(&full)
        .into_iter()
        .zip(full.edges())
        .collect();
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    out
}

/// Builds the LIFE forest: spanning forest of the UDG minimizing the
/// maximum sender-centric link coverage (greedy exchange argument — same
/// as Kruskal's optimality for bottleneck spanning trees).
pub fn life(nodes: &NodeSet, udg: &AdjacencyList) -> Topology {
    let mut uf = UnionFind::new(nodes.len());
    let mut g = AdjacencyList::new(nodes.len());
    for (_, e) in edges_by_coverage(nodes, udg) {
        if uf.union(e.u, e.v) {
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

/// Builds the LISE spanner: smallest coverage threshold such that taking
/// all UDG edges with coverage below it `t`-spans every UDG edge
/// (`t >= 1`, weighted stretch).
pub fn lise(nodes: &NodeSet, udg: &AdjacencyList, t: f64) -> Topology {
    assert!(t >= 1.0, "stretch must be at least 1");
    let ordered = edges_by_coverage(nodes, udg);
    let mut g = AdjacencyList::new(nodes.len());
    let mut idx = 0;
    // Process edges in coverage order; an edge already t-spanned by the
    // current graph is skipped, otherwise it is inserted together with
    // every not-yet-processed edge of equal coverage... (simple version:
    // insert greedily, checking spanning on demand).
    while idx < ordered.len() {
        let e = ordered[idx].1;
        idx += 1;
        let sp = dijkstra(&g, e.u);
        if sp.dist[e.v] > t * e.weight {
            g.add_edge(e.u, e.v, e.weight);
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::sender::sender_graph_interference;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    /// The Figure 1 style instance: a dense cluster plus one outlier just
    /// in range of the cluster's rightmost node.
    fn cluster_plus_outlier() -> NodeSet {
        let mut xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.02).collect();
        xs.push(1.1); // outlier, reachable only from the right end
        NodeSet::on_line(&xs)
    }

    #[test]
    fn life_preserves_connectivity() {
        let ns = cluster_plus_outlier();
        let udg = unit_disk_graph(&ns);
        let t = life(&ns, &udg);
        assert!(t.preserves_connectivity_of(&udg));
        assert!(t.is_forest());
    }

    #[test]
    fn life_minimizes_bottleneck_coverage() {
        let ns = cluster_plus_outlier();
        let udg = unit_disk_graph(&ns);
        let t = life(&ns, &udg);
        // Exhaustive bottleneck check on this small instance: no spanning
        // forest can avoid the outlier link (every spanning forest must
        // include some edge to the outlier, all of which have the same
        // coverage), so LIFE's bottleneck equals that unavoidable value.
        let full = Topology::empty(ns.clone());
        let unavoidable = udg
            .neighbors(8)
            .map(|v| rim_core::sender::edge_coverage(&full, 8, v))
            .min()
            .unwrap();
        assert_eq!(sender_graph_interference(&t), unavoidable);
    }

    #[test]
    fn life_need_not_contain_the_nnf() {
        // Section 4 notes LIFE/LISE as the exception that may omit
        // nearest-neighbor links. Explicit witness: u's nearest neighbor
        // is v, but the link {u, v} has high coverage because a cluster
        // sits right behind v — while a chain of short, low-coverage hops
        // connects u to the cluster the long way around. Kruskal-by-
        // coverage completes u–v connectivity through the detour before
        // ever considering {u, v}.
        let u = Point::new(0.0, 0.0);
        let v = Point::new(0.5, 0.0); // u's unique nearest neighbor
        let cluster: Vec<Point> = (0..5).map(|i| Point::new(0.76 + 0.03 * i as f64, 0.0)).collect();
        let detour = [
            Point::new(0.0, -0.55),
            Point::new(0.3, -0.62),
            Point::new(0.6, -0.62),
            Point::new(0.85, -0.55),
            Point::new(0.88, -0.3),
        ];
        let mut pts = vec![u, v];
        pts.extend(cluster);
        pts.extend(detour);
        let ns = NodeSet::new(pts);
        let udg = unit_disk_graph(&ns);
        // Sanity: v really is u's nearest neighbor.
        assert_eq!(crate::nnf::nearest_neighbor(&ns, &udg, 0), Some(1));
        let t = life(&ns, &udg);
        assert!(
            !t.graph().has_edge(0, 1),
            "LIFE took the high-coverage nearest-neighbor link"
        );
        assert!(!crate::nnf::contains_nnf(&t, &udg));
        assert!(t.preserves_connectivity_of(&udg));
    }

    #[test]
    fn lise_spans_every_udg_edge() {
        let ns = cluster_plus_outlier();
        let udg = unit_disk_graph(&ns);
        let t = lise(&ns, &udg, 2.0);
        assert!(t.preserves_connectivity_of(&udg));
        for e in udg.edges() {
            let sp = dijkstra(t.graph(), e.u);
            assert!(
                sp.dist[e.v] <= 2.0 * e.weight + 1e-12,
                "edge ({}, {}) not 2-spanned",
                e.u,
                e.v
            );
        }
    }

    #[test]
    fn lise_with_stretch_one_keeps_shortest_paths() {
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.8]);
        let udg = unit_disk_graph(&ns);
        let t = lise(&ns, &udg, 1.0);
        // d(0,2) over the topology must equal the direct UDG distance.
        let sp = dijkstra(t.graph(), 0);
        assert!((sp.dist[2] - 0.8).abs() < 1e-12);
    }
}
