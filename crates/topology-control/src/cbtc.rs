//! CBTC(α) — cone-based topology control of Wattenhofer, Li, Bahl and
//! Wang (INFOCOM 2001), reference \[18\] of the paper (the work that
//! "initiated the second wave" of topology control).
//!
//! Every node grows its transmission power, collecting neighbors in
//! distance order, until **every cone of angle α** around it contains a
//! selected neighbor — i.e. until the largest angular gap between
//! consecutive selected neighbors is below α — or until its maximum
//! power (the unit range) is reached. The output is symmetrized by
//! keeping a UDG edge when *either* endpoint selected it (the paper's
//! "asymmetric edge addition"). For `α <= 2π/3` the construction
//! preserves connectivity.

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// The canonical connectivity-preserving cone angle `2π/3`.
pub const ALPHA_CONNECTIVITY: f64 = 2.0 * std::f64::consts::PI / 3.0;

/// The neighbors node `u` selects under CBTC(α): the shortest distance
/// prefix of its UDG neighbors whose angular gaps are all `< α`
/// (all neighbors if no prefix achieves that).
fn cone_selection(nodes: &NodeSet, udg: &AdjacencyList, u: usize, alpha: f64) -> Vec<usize> {
    let pu = nodes.pos(u);
    let mut by_dist: Vec<usize> = udg.neighbors(u).collect();
    by_dist.sort_unstable_by(|&a, &b| {
        nodes
            .dist_sq(u, a)
            .total_cmp(&nodes.dist_sq(u, b))
            .then(a.cmp(&b))
    });
    let mut chosen: Vec<usize> = Vec::new();
    let mut angles: Vec<f64> = Vec::new();
    for (i, &v) in by_dist.iter().enumerate() {
        chosen.push(v);
        let mut angle = pu.angle_to(&nodes.pos(v));
        if angle < 0.0 {
            angle += std::f64::consts::TAU;
        }
        let pos = angles
            .binary_search_by(|a| a.total_cmp(&angle))
            .unwrap_or_else(|p| p);
        angles.insert(pos, angle);
        // Largest angular gap, wrapping around.
        let mut max_gap: f64 = 0.0;
        for w in angles.windows(2) {
            max_gap = max_gap.max(w[1] - w[0]);
        }
        max_gap = max_gap.max(angles[0] + std::f64::consts::TAU - angles[angles.len() - 1]);
        if max_gap < alpha {
            return chosen;
        }
        // Keep growing; if this was the last neighbor, fall through.
        let _ = i;
    }
    chosen
}

/// Builds the CBTC(α) topology over the UDG (union symmetrization).
pub fn cbtc(nodes: &NodeSet, udg: &AdjacencyList, alpha: f64) -> Topology {
    assert!(alpha > 0.0 && alpha <= std::f64::consts::TAU);
    let n = nodes.len();
    let mut g = AdjacencyList::new(n);
    for u in 0..n {
        for v in cone_selection(nodes, udg, u, alpha) {
            if !g.has_edge(u, v) {
                g.add_edge(u, v, nodes.dist(u, v));
            }
        }
    }
    Topology::from_graph(nodes.clone(), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nnf::contains_nnf;
    use rim_geom::Point;
    use rim_udg::udg::unit_disk_graph;

    fn random_field(n: usize, side: f64, seed: u64) -> NodeSet {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        NodeSet::new((0..n).map(|_| Point::new(rnd() * side, rnd() * side)).collect())
    }

    #[test]
    fn preserves_connectivity_at_two_pi_thirds() {
        for seed in 1..5u64 {
            let ns = random_field(80, 2.0, seed);
            let udg = unit_disk_graph(&ns);
            let t = cbtc(&ns, &udg, ALPHA_CONNECTIVITY);
            assert!(t.preserves_connectivity_of(&udg), "seed={seed}");
        }
    }

    #[test]
    fn contains_the_nnf() {
        // The nearest neighbor is always the first node selected.
        let ns = random_field(60, 2.0, 8);
        let udg = unit_disk_graph(&ns);
        let t = cbtc(&ns, &udg, ALPHA_CONNECTIVITY);
        assert!(contains_nnf(&t, &udg));
    }

    #[test]
    fn surrounded_node_stops_early() {
        // With three neighbors the angular gaps sum to 360° and one is
        // always >= 120°, so CBTC(2π/3) needs at least four directions
        // to stop. A center with four close neighbors at the cardinal
        // directions (gaps 90° < 120°) must not select the distant node.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),  // center
            Point::new(0.2, 0.0),  // 0°
            Point::new(0.0, 0.2),  // 90°
            Point::new(-0.2, 0.0), // 180°
            Point::new(0.0, -0.2), // 270°
            Point::new(0.9, 0.1),  // far
        ]);
        let udg = unit_disk_graph(&ns);
        let sel = cone_selection(&ns, &udg, 0, ALPHA_CONNECTIVITY);
        assert_eq!(sel, vec![1, 2, 3, 4]);
        assert!(!sel.contains(&5), "far node must not be selected");
    }

    #[test]
    fn boundary_node_uses_full_power() {
        // A node with all neighbors on one side can never close its cones
        // and selects everything in range.
        let ns = NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]);
        let udg = unit_disk_graph(&ns);
        let sel = cone_selection(&ns, &udg, 0, ALPHA_CONNECTIVITY);
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn smaller_alpha_selects_no_fewer_neighbors() {
        let ns = random_field(50, 1.5, 3);
        let udg = unit_disk_graph(&ns);
        for u in 0..ns.len() {
            let tight = cone_selection(&ns, &udg, u, 1.0);
            let loose = cone_selection(&ns, &udg, u, 3.0);
            assert!(tight.len() >= loose.len(), "node {u}");
        }
    }
}
