//! Thread-count invariance of the parallel construction pipeline.
//!
//! The scatter executor hands each worker a contiguous node/edge range
//! and every stage reassembles its output in input order, so the built
//! topology must be *identical* — not merely isomorphic — for every
//! thread count. This property layer pins that down over seeded random
//! instances with explicit thread counts `1..=8`, independent of the
//! machine's actual core count.

use rim_geom::Point;
use rim_rng::prop::check;
use rim_rng::{prop_ensure_eq, SmallRng};
use rim_topology_control::gabriel::gabriel_graph_parallel;
use rim_topology_control::lmst::{lmst_parallel, LmstVariant};
use rim_topology_control::rng::relative_neighborhood_graph_parallel;
use rim_topology_control::xtc::xtc_parallel;
use rim_topology_control::yao::yao_graph_parallel;
use rim_udg::udg::unit_disk_graph;
use rim_udg::{NodeSet, Topology};

/// Draws a node set whose size and density vary per case: between 2 and
/// 120 nodes on a square whose side scales the expected degree from
/// sparse chains to near-cliques.
fn arb_nodes(rng: &mut SmallRng) -> NodeSet {
    let n = rng.gen_range(2usize..120);
    let side = rng.gen_range(0.3..3.0);
    NodeSet::new(
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect(),
    )
}

/// Exact edge-list view: order AND weights, not just the edge set — the
/// invariance claim is bitwise, so compare the strongest observable.
fn edge_list(t: &Topology) -> Vec<(usize, usize, u64)> {
    t.edges().iter().map(|e| (e.u, e.v, e.weight.to_bits())).collect()
}

/// Checks one constructor for thread-count invariance against its own
/// single-threaded run.
fn invariant_over_threads<F>(name: &str, cases: u32, build: F)
where
    F: Fn(&NodeSet, &rim_graph::AdjacencyList, usize) -> Topology,
{
    check(name, cases, arb_nodes, |ns| {
        let udg = unit_disk_graph(ns);
        let reference = edge_list(&build(ns, &udg, 1));
        for threads in 2..=8usize {
            let got = edge_list(&build(ns, &udg, threads));
            prop_ensure_eq!(reference, got);
        }
        Ok(())
    });
}

#[test]
fn gabriel_is_thread_count_invariant() {
    invariant_over_threads("gabriel_is_thread_count_invariant", 24, |ns, udg, t| {
        gabriel_graph_parallel(ns, udg, t)
    });
}

#[test]
fn rng_is_thread_count_invariant() {
    invariant_over_threads("rng_is_thread_count_invariant", 24, |ns, udg, t| {
        relative_neighborhood_graph_parallel(ns, udg, t)
    });
}

#[test]
fn lmst_intersection_is_thread_count_invariant() {
    invariant_over_threads("lmst_intersection_is_thread_count_invariant", 12, |ns, udg, t| {
        lmst_parallel(ns, udg, LmstVariant::Intersection, t)
    });
}

#[test]
fn lmst_union_is_thread_count_invariant() {
    invariant_over_threads("lmst_union_is_thread_count_invariant", 12, |ns, udg, t| {
        lmst_parallel(ns, udg, LmstVariant::Union, t)
    });
}

#[test]
fn xtc_is_thread_count_invariant() {
    invariant_over_threads("xtc_is_thread_count_invariant", 24, |ns, udg, t| {
        xtc_parallel(ns, udg, t)
    });
}

#[test]
fn yao6_is_thread_count_invariant() {
    invariant_over_threads("yao6_is_thread_count_invariant", 24, |ns, udg, t| {
        yao_graph_parallel(ns, udg, 6, t)
    });
}

#[test]
fn thread_counts_beyond_node_count_are_fine() {
    // More workers than items: the executor clamps, the output does not
    // change.
    let ns = NodeSet::on_line(&[0.0, 0.4, 0.9, 1.3]);
    let udg = unit_disk_graph(&ns);
    let reference = edge_list(&gabriel_graph_parallel(&ns, &udg, 1));
    assert_eq!(reference, edge_list(&gabriel_graph_parallel(&ns, &udg, 64)));
    assert_eq!(reference, edge_list(&xtc_parallel(&ns, &udg, 64)));
}
