//! Differential-oracle tests for the construction pipeline.
//!
//! Per the workspace oracle policy (DESIGN.md §6/§7), the brute-force
//! witness scans are retained verbatim and every fast engine must
//! reproduce them **exactly** — same edge set, not approximately — on
//! five instance families: uniform, clustered, exponential-chain,
//! collinear, and duplicate-coordinate (the degenerate ones stress the
//! spatial index's kd-tree fallback and boundary ties).

use rim_geom::Point;
use rim_rng::SmallRng;
use rim_topology_control::gabriel::{is_gabriel_edge, is_gabriel_edge_naive};
use rim_topology_control::lmst::LmstVariant;
use rim_topology_control::pipeline::witness_index;
use rim_topology_control::rng::{is_rng_edge, is_rng_edge_naive};
use rim_topology_control::{lmst, Baseline, Engine};
use rim_udg::udg::unit_disk_graph;
use rim_udg::{NodeSet, Topology};

/// Canonical, order-independent edge-set view of a topology.
fn edge_set(t: &Topology) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = t.edges().iter().map(|e| e.pair()).collect();
    pairs.sort_unstable();
    pairs
}

fn uniform(n: usize, side: f64, seed: u64) -> NodeSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    NodeSet::new(
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect(),
    )
}

fn clustered(clusters: usize, per: usize, side: f64, seed: u64) -> NodeSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts = Vec::new();
    for _ in 0..clusters {
        let cx = rng.gen_range(0.0..side);
        let cy = rng.gen_range(0.0..side);
        for _ in 0..per {
            pts.push(Point::new(
                cx + rng.gen_range(-0.15..0.15),
                cy + rng.gen_range(-0.15..0.15),
            ));
        }
    }
    NodeSet::new(pts)
}

/// Exponentially growing gaps on a line — the paper's chain family and
/// the stress case that pushes the witness index onto its kd-tree
/// fallback.
fn exponential_chain(n: usize) -> NodeSet {
    let scale = 2f64.powi(-(n as i32));
    NodeSet::on_line(
        &(0..n)
            .map(|i| (2f64.powi(i as i32) - 1.0) * scale)
            .collect::<Vec<f64>>(),
    )
}

fn collinear(n: usize, seed: u64) -> NodeSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut x = 0.0;
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        xs.push(x);
        x += rng.gen_range(0.05..0.9);
    }
    NodeSet::on_line(&xs)
}

/// Many nodes sharing few distinct coordinates: zero-length edges,
/// boundary ties, and duplicate witnesses everywhere.
fn duplicates(n: usize, seed: u64) -> NodeSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let distinct: Vec<Point> = (0..7)
        .map(|_| Point::new(rng.gen_range(0.0..2.0), rng.gen_range(0.0..2.0)))
        .collect();
    NodeSet::new((0..n).map(|_| distinct[rng.gen_range(0..distinct.len())]).collect())
}

/// The five families, by name (names show up in assertion messages).
fn families() -> Vec<(&'static str, NodeSet)> {
    vec![
        ("uniform", uniform(140, 2.5, 7)),
        ("clustered", clustered(5, 24, 2.0, 11)),
        ("exp-chain", exponential_chain(40)),
        ("collinear", collinear(90, 3)),
        ("duplicate", duplicates(60, 19)),
    ]
}

/// The engine-sensitive baselines under differential test.
const PIPELINE_ALGOS: [Baseline; 5] = [
    Baseline::Gabriel,
    Baseline::Rng,
    Baseline::Lmst,
    Baseline::Xtc,
    Baseline::Yao6,
];

#[test]
fn every_engine_matches_the_naive_oracle_on_all_families() {
    for (family, ns) in families() {
        let udg = unit_disk_graph(&ns);
        for algo in PIPELINE_ALGOS {
            let oracle = edge_set(&algo.build_with(&ns, &udg, Engine::Naive));
            for engine in [Engine::Indexed, Engine::Parallel, Engine::Auto] {
                let fast = edge_set(&algo.build_with(&ns, &udg, engine));
                assert_eq!(
                    oracle,
                    fast,
                    "family={family} algo={} engine={}",
                    algo.name(),
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn indexed_witness_predicates_match_the_naive_scans_edge_by_edge() {
    for (family, ns) in families() {
        let udg = unit_disk_graph(&ns);
        let index = witness_index(&ns, &udg);
        for e in udg.edges() {
            assert_eq!(
                is_gabriel_edge_naive(&ns, e.u, e.v),
                is_gabriel_edge(&ns, &index, e.u, e.v),
                "family={family} gabriel witness {{{}, {}}}",
                e.u,
                e.v
            );
            assert_eq!(
                is_rng_edge_naive(&ns, e.u, e.v),
                is_rng_edge(&ns, &index, e.u, e.v),
                "family={family} rng lune {{{}, {}}}",
                e.u,
                e.v
            );
        }
    }
}

#[test]
fn lmst_union_variant_is_engine_invariant_too() {
    // Baseline::Lmst only exercises the intersection variant; the union
    // symmetrization shares the selection stage, so pin it separately.
    for (family, ns) in families() {
        let udg = unit_disk_graph(&ns);
        let oracle = edge_set(&lmst::lmst_with(&ns, &udg, LmstVariant::Union, Engine::Naive));
        for engine in [Engine::Indexed, Engine::Parallel] {
            let fast = edge_set(&lmst::lmst_with(&ns, &udg, LmstVariant::Union, engine));
            assert_eq!(oracle, fast, "family={family} engine={}", engine.name());
        }
    }
}

#[test]
fn engine_insensitive_baselines_ignore_the_selection() {
    // The other baselines must be unaffected by build_with's engine.
    let ns = uniform(80, 2.0, 23);
    let udg = unit_disk_graph(&ns);
    for algo in [Baseline::Nnf, Baseline::Emst, Baseline::Life, Baseline::Cbtc] {
        let a = edge_set(&algo.build_with(&ns, &udg, Engine::Naive));
        let b = edge_set(&algo.build_with(&ns, &udg, Engine::Parallel));
        assert_eq!(a, b, "algo={}", algo.name());
    }
}
