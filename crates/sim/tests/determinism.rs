//! Determinism of the simulation loop, pinned through the observability
//! counters.
//!
//! Two claims:
//!
//! 1. Same seed + same thread count ⇒ byte-identical metrics across two
//!    runs (the `Debug` rendering is compared, so even float formatting
//!    must match bit for bit).
//! 2. Different thread counts — exercised by building the input topology
//!    under the naive, indexed, and parallel construction engines, which
//!    use 0, 0, and N worker threads respectively — ⇒ identical metrics
//!    AND identical event-count counters. This pins down any hidden
//!    iteration-order dependence that the obs counters themselves could
//!    otherwise mask.
//!
//! Everything runs in ONE test function: the obs recorder is process-wide
//! and counter deltas would race against a concurrently running sibling
//! test that also drives the simulator.

use rim_core::receiver::Engine;
use rim_geom::Point;
use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
use rim_topology_control::Baseline;
use rim_udg::udg::unit_disk_graph;
use rim_udg::NodeSet;

fn nodes() -> NodeSet {
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    let mut rnd = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    NodeSet::new((0..40).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect())
}

fn config() -> SimConfig {
    SimConfig {
        slots: 4_000,
        mac: MacConfig::csma(),
        traffic: TrafficConfig::Poisson { rate: 0.3 },
        alpha: 2.0,
        seed: 1234,
    }
}

/// Churn extension of the same two claims, against the long-horizon
/// workload: same `(seed, trace)` ⇒ byte-identical checkpoint JSONL,
/// and the churned end state reads identically under every batch
/// engine (naive / indexed / parallel — 0, 0, and N worker threads).
///
/// This test deliberately touches neither the obs recorder's installed
/// state nor the `sim.events` counter, so it can coexist with the
/// recorder-owning test below (churn increments only `churn.*` /
/// `dynamic.*` counters, which that test never reads).
#[test]
fn churn_runs_are_deterministic_and_engine_invariant() {
    use rim_churn::{ChurnConfig, ChurnSim, Family};
    use rim_core::receiver::{interference_vector_naive, interference_vector_with};

    let cfg = ChurnConfig { family: Family::Uniform, n0: 72, seed: 9_001 };
    let jsonl_of = |edits: u64| {
        let mut sim = ChurnSim::new(cfg, edits);
        let mut out = Vec::new();
        while sim.step().is_some() {
            if sim.counts().edits % 400 == 0 {
                out.push(sim.checkpoint_record());
            }
        }
        out.push(sim.checkpoint_record());
        (out.join("\n"), sim)
    };

    // Claim 1: replay from the same (seed, trace) is byte-identical.
    let (a, sim_a) = jsonl_of(3_000);
    let (b, sim_b) = jsonl_of(3_000);
    assert_eq!(a, b, "same (seed, trace): checkpoint JSONL must be byte-identical");
    assert!(a.lines().count() >= 8, "checkpoints did not sample the run");

    // Claim 2: the churned end state reads the same under every engine
    // (the parallel engine shards across worker threads internally).
    let (t, slots) = sim_a.engine().live_topology();
    let want = interference_vector_naive(&t);
    for engine in [Engine::Indexed, Engine::Parallel] {
        assert_eq!(
            interference_vector_with(&t, engine),
            want,
            "engine {} diverged on the churned instance",
            engine.name()
        );
    }
    let got: Vec<usize> = slots.iter().map(|&v| sim_a.engine().interference_at(v)).collect();
    assert_eq!(got, want, "maintained churn counts diverged from the batch oracle");
    drop(sim_b);
}

#[test]
fn runs_are_deterministic_and_thread_count_invariant() {
    let ns = nodes();
    let udg = unit_disk_graph(&ns);
    let cfg = config();

    // Claim 1: identical seed and thread count ⇒ byte-identical metrics.
    let topology = Baseline::Gabriel.build_with(&ns, &udg, Engine::Indexed);
    let first = Simulator::new(topology.clone(), cfg).run();
    let second = Simulator::new(topology, cfg).run();
    assert!(first.generated > 0, "traffic must actually flow");
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "same seed, same thread count: metrics must be byte-identical"
    );

    // Claim 2: construction thread count must not leak into the run.
    // The three engines use different thread counts internally, so the
    // metrics AND the simulator's event counters must agree across them.
    let rec = rim_obs::install_recorder();
    let mut outcomes: Vec<(String, u64)> = Vec::new();
    for engine in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
        let topology = Baseline::Gabriel.build_with(&ns, &udg, engine);
        let before = rec.counter("sim.events");
        let metrics = Simulator::new(topology, cfg).run();
        let events = rec.counter("sim.events") - before;
        assert!(events > 0, "engine {}: no events recorded", engine.name());
        outcomes.push((format!("{metrics:?}"), events));
    }
    assert!(
        outcomes.windows(2).all(|w| w[0] == w[1]),
        "metrics or event counters differ across construction engines: {outcomes:#?}"
    );
}
