//! Determinism of the simulation loop, pinned through the observability
//! counters.
//!
//! Two claims:
//!
//! 1. Same seed + same thread count ⇒ byte-identical metrics across two
//!    runs (the `Debug` rendering is compared, so even float formatting
//!    must match bit for bit).
//! 2. Different thread counts — exercised by building the input topology
//!    under the naive, indexed, and parallel construction engines, which
//!    use 0, 0, and N worker threads respectively — ⇒ identical metrics
//!    AND identical event-count counters. This pins down any hidden
//!    iteration-order dependence that the obs counters themselves could
//!    otherwise mask.
//!
//! Everything runs in ONE test function: the obs recorder is process-wide
//! and counter deltas would race against a concurrently running sibling
//! test that also drives the simulator.

use rim_core::receiver::Engine;
use rim_geom::Point;
use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
use rim_topology_control::Baseline;
use rim_udg::udg::unit_disk_graph;
use rim_udg::NodeSet;

fn nodes() -> NodeSet {
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    let mut rnd = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    NodeSet::new((0..40).map(|_| Point::new(rnd() * 2.0, rnd() * 2.0)).collect())
}

fn config() -> SimConfig {
    SimConfig {
        slots: 4_000,
        mac: MacConfig::csma(),
        traffic: TrafficConfig::Poisson { rate: 0.3 },
        alpha: 2.0,
        seed: 1234,
    }
}

#[test]
fn runs_are_deterministic_and_thread_count_invariant() {
    let ns = nodes();
    let udg = unit_disk_graph(&ns);
    let cfg = config();

    // Claim 1: identical seed and thread count ⇒ byte-identical metrics.
    let topology = Baseline::Gabriel.build_with(&ns, &udg, Engine::Indexed);
    let first = Simulator::new(topology.clone(), cfg).run();
    let second = Simulator::new(topology, cfg).run();
    assert!(first.generated > 0, "traffic must actually flow");
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "same seed, same thread count: metrics must be byte-identical"
    );

    // Claim 2: construction thread count must not leak into the run.
    // The three engines use different thread counts internally, so the
    // metrics AND the simulator's event counters must agree across them.
    let rec = rim_obs::install_recorder();
    let mut outcomes: Vec<(String, u64)> = Vec::new();
    for engine in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
        let topology = Baseline::Gabriel.build_with(&ns, &udg, engine);
        let before = rec.counter("sim.events");
        let metrics = Simulator::new(topology, cfg).run();
        let events = rec.counter("sim.events") - before;
        assert!(events > 0, "engine {}: no events recorded", engine.name());
        outcomes.push((format!("{metrics:?}"), events));
    }
    assert!(
        outcomes.windows(2).all(|w| w[0] == w[1]),
        "metrics or event counters differ across construction engines: {outcomes:#?}"
    );
}
