//! Property-based tests for the simulator: accounting invariants must
//! hold for arbitrary topologies, MACs and traffic configurations.

use proptest::prelude::*;
use rim_sim::schedule::tdma_schedule;
use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
use rim_udg::{NodeSet, Topology};

/// Random connected-ish line topology (consecutive-link chains with a
/// few skips removed).
fn arb_topology() -> impl Strategy<Value = Topology> {
    (2usize..12, proptest::collection::vec(0.05f64..0.5, 1..11)).prop_map(|(n, gaps)| {
        let mut xs = vec![0.0f64];
        for i in 1..n {
            xs.push(xs[i - 1] + gaps[(i - 1) % gaps.len()]);
        }
        let pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Topology::from_pairs(NodeSet::on_line(&xs), &pairs)
    })
}

fn arb_mac() -> impl Strategy<Value = MacConfig> {
    prop_oneof![
        (0.05f64..1.0).prop_map(|p| MacConfig::SlottedAloha { p }),
        (1u32..8, 1u32..10).prop_map(|(e, r)| MacConfig::Csma {
            max_backoff_exp: e,
            max_retries: r
        }),
        Just(MacConfig::Tdma),
    ]
}

fn arb_traffic() -> impl Strategy<Value = TrafficConfig> {
    prop_oneof![
        (1usize..6, 5u64..50).prop_map(|(flows, period)| TrafficConfig::Cbr { flows, period }),
        (0.01f64..0.5).prop_map(|rate| TrafficConfig::Poisson { rate }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accounting_invariants(
        t in arb_topology(),
        mac in arb_mac(),
        traffic in arb_traffic(),
        seed in 0u64..1000,
    ) {
        let cfg = SimConfig { slots: 2_000, mac, traffic, alpha: 2.0, seed };
        let m = Simulator::new(t, cfg).run();
        prop_assert!(m.delivered + m.dropped_no_route + m.dropped_retries <= m.generated);
        prop_assert!(m.collisions <= m.transmissions);
        prop_assert!(m.total_hops >= m.delivered, "each delivery took >= 1 hop");
        prop_assert!(m.energy >= 0.0);
        prop_assert!((0.0..=1.0).contains(&m.delivery_ratio()));
        prop_assert!((0.0..=1.0).contains(&m.collision_rate()));
        if matches!(mac, MacConfig::Tdma) {
            prop_assert_eq!(m.collisions, 0, "TDMA never collides");
            prop_assert_eq!(m.dropped_retries, 0);
        }
    }

    #[test]
    fn determinism(t in arb_topology(), mac in arb_mac(), seed in 0u64..100) {
        let cfg = SimConfig {
            slots: 1_000,
            mac,
            traffic: TrafficConfig::Poisson { rate: 0.2 },
            alpha: 2.0,
            seed,
        };
        let a = Simulator::new(t.clone(), cfg).run();
        let b = Simulator::new(t, cfg).run();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tdma_schedules_are_always_valid(t in arb_topology()) {
        let s = tdma_schedule(&t);
        prop_assert_eq!(s.verify(&t), None);
        prop_assert_eq!(s.num_links(), 2 * t.num_edges());
        // Each node's incident directed links pairwise conflict, so the
        // frame is at least twice the maximum degree.
        prop_assert!(s.frame_length() >= 2 * t.graph().max_degree());
    }
}
