//! Property-based tests for the simulator: accounting invariants must
//! hold for arbitrary topologies, MACs and traffic configurations
//! (seeded in-repo harness, `rim_rng::prop`).

use rim_rng::prop::check;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};
use rim_sim::schedule::tdma_schedule;
use rim_sim::{MacConfig, SimConfig, Simulator, TrafficConfig};
use rim_udg::{NodeSet, Topology};

/// Random connected line topology (consecutive-link chains with random
/// gap lengths).
fn arb_topology(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(2usize..12);
    let mut xs = vec![0.0f64];
    for i in 1..n {
        xs.push(xs[i - 1] + rng.gen_range(0.05f64..0.5));
    }
    let pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    Topology::from_pairs(NodeSet::on_line(&xs), &pairs)
}

fn arb_mac(rng: &mut SmallRng) -> MacConfig {
    match rng.gen_range(0usize..3) {
        0 => MacConfig::SlottedAloha {
            p: rng.gen_range(0.05f64..1.0),
        },
        1 => MacConfig::Csma {
            max_backoff_exp: rng.gen_range(1u32..8),
            max_retries: rng.gen_range(1u32..10),
        },
        _ => MacConfig::Tdma,
    }
}

fn arb_traffic(rng: &mut SmallRng) -> TrafficConfig {
    if rng.gen() {
        TrafficConfig::Cbr {
            flows: rng.gen_range(1usize..6),
            period: rng.gen_range(5u64..50),
        }
    } else {
        TrafficConfig::Poisson {
            rate: rng.gen_range(0.01f64..0.5),
        }
    }
}

#[test]
fn accounting_invariants() {
    check(
        "accounting_invariants",
        48,
        |rng| {
            (
                arb_topology(rng),
                arb_mac(rng),
                arb_traffic(rng),
                rng.gen_range(0u64..1000),
            )
        },
        |(t, mac, traffic, seed)| {
            let cfg = SimConfig {
                slots: 2_000,
                mac: *mac,
                traffic: *traffic,
                alpha: 2.0,
                seed: *seed,
            };
            let m = Simulator::new(t.clone(), cfg).run();
            prop_ensure!(m.delivered + m.dropped_no_route + m.dropped_retries <= m.generated);
            prop_ensure!(m.collisions <= m.transmissions);
            prop_ensure!(m.total_hops >= m.delivered, "each delivery took >= 1 hop");
            prop_ensure!(m.energy >= 0.0);
            prop_ensure!((0.0..=1.0).contains(&m.delivery_ratio()));
            prop_ensure!((0.0..=1.0).contains(&m.collision_rate()));
            if matches!(mac, MacConfig::Tdma) {
                prop_ensure_eq!(m.collisions, 0);
                prop_ensure_eq!(m.dropped_retries, 0);
            }
            Ok(())
        },
    );
}

#[test]
fn determinism() {
    check(
        "determinism",
        64,
        |rng| (arb_topology(rng), arb_mac(rng), rng.gen_range(0u64..100)),
        |(t, mac, seed)| {
            let cfg = SimConfig {
                slots: 1_000,
                mac: *mac,
                traffic: TrafficConfig::Poisson { rate: 0.2 },
                alpha: 2.0,
                seed: *seed,
            };
            let a = Simulator::new(t.clone(), cfg).run();
            let b = Simulator::new(t.clone(), cfg).run();
            prop_ensure_eq!(a, b);
            Ok(())
        },
    );
}

#[test]
fn tdma_schedules_are_always_valid() {
    check(
        "tdma_schedules_are_always_valid",
        128,
        arb_topology,
        |t| {
            let s = tdma_schedule(t);
            prop_ensure_eq!(s.verify(t), None);
            prop_ensure_eq!(s.num_links(), 2 * t.num_edges());
            // Each node's incident directed links pairwise conflict, so the
            // frame is at least twice the maximum degree.
            prop_ensure!(s.frame_length() >= 2 * t.graph().max_degree());
            Ok(())
        },
    );
}
