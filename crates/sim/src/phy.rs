//! PHY layer: precomputed coverage under the disk interference model,
//! plus the physical-model variant built from SINR coverage radii
//! (`rim_core::physical`; SINR-threshold reception itself lives in
//! [`rim_core::physical::SinrTable`]).

use rim_core::physical::{build_phys_index, PhysModel};
use rim_core::receiver::build_index;
use rim_udg::Topology;

/// Precomputed coverage relations of a topology.
///
/// `coverers[v]` lists the nodes `u != v` with `|uv| <= r_u` — the
/// potential destroyers of a reception at `v`; by Definition 3.1,
/// `coverers[v].len() == I(v)`. `covered[u]` is the transpose.
#[derive(Debug, Clone)]
pub struct Coverage {
    /// For each receiver, the nodes whose disks cover it.
    pub coverers: Vec<Vec<u32>>,
    /// For each sender, the nodes its disk covers.
    pub covered: Vec<Vec<u32>>,
}

impl Coverage {
    /// Builds the coverage relation for a topology.
    ///
    /// One closed-disk query per transmitter over the shared interference
    /// index (same predicate as the batch kernels, `|uv| <= r_u` at
    /// distance level), so construction is output-sensitive instead of
    /// `O(n²)`. Both adjacency lists come out in ascending order:
    /// `coverers[v]` because senders are scattered in ascending `u`,
    /// `covered[u]` by an explicit sort (index visit order is
    /// backend-dependent).
    pub fn of(t: &Topology) -> Self {
        let n = t.num_nodes();
        let nodes = t.nodes();
        let index = build_index(t);
        let mut coverers = vec![Vec::new(); n];
        let mut covered = vec![Vec::new(); n];
        for u in 0..n {
            if t.graph().degree(u) == 0 {
                continue; // never transmits
            }
            index.for_each_in_disk(nodes.pos(u), t.radius(u), |v| {
                if v != u {
                    coverers[v].push(u as u32);
                    covered[u].push(v as u32);
                }
            });
            covered[u].sort_unstable();
        }
        Coverage { coverers, covered }
    }

    /// Builds the coverage relation under a physical (SINR) model:
    /// transmitter `u` covers `v` iff `|uv| <= ρ_u`, with `ρ_u` the
    /// power-derived coverage radius. For [`PhysModel::disk_equivalent`]
    /// the lists equal [`Coverage::of`]'s exactly (the disk-limit
    /// theorem, `DESIGN.md` §11) — a differential-tested contract.
    pub fn of_physical(m: &PhysModel) -> Self {
        let n = m.len();
        let index = build_phys_index(m);
        let mut coverers = vec![Vec::new(); n];
        let mut covered = vec![Vec::new(); n];
        for u in 0..n {
            if !m.transmits(u) {
                continue; // silent
            }
            index.for_each_in_disk(m.pos(u), m.coverage_radius(u), |v| {
                if v != u {
                    coverers[v].push(u as u32);
                    covered[u].push(v as u32);
                }
            });
            covered[u].sort_unstable();
        }
        Coverage { coverers, covered }
    }

    /// The receiver-centric interference `I(v)` — the number of potential
    /// collision sources at `v`.
    pub fn interference_at(&self, v: usize) -> usize {
        self.coverers[v].len()
    }

    /// Decides whether a frame `u → v` transmitted in a slot is received,
    /// given the set of nodes transmitting in that slot (`is_tx`).
    ///
    /// Reception fails iff `v` itself transmits (half duplex) or any
    /// covering node other than `u` transmits.
    pub fn received(&self, u: usize, v: usize, is_tx: &[bool]) -> bool {
        if is_tx[v] {
            return false;
        }
        !self.coverers[v]
            .iter()
            .any(|&w| w as usize != u && is_tx[w as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::receiver::interference_vector;
    use rim_udg::NodeSet;

    fn chain() -> Topology {
        Topology::from_pairs(
            NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]),
            &[(0, 1), (1, 2), (2, 3)],
        )
    }

    #[test]
    fn coverage_counts_equal_interference_vector() {
        let t = chain();
        let cov = Coverage::of(&t);
        let iv = interference_vector(&t);
        for v in 0..t.num_nodes() {
            assert_eq!(cov.interference_at(v), iv[v], "v={v}");
        }
    }

    #[test]
    fn coverers_and_covered_are_transposes() {
        let t = chain();
        let cov = Coverage::of(&t);
        for v in 0..t.num_nodes() {
            for &u in &cov.coverers[v] {
                assert!(cov.covered[u as usize].contains(&(v as u32)));
            }
        }
        let pairs_a: usize = cov.coverers.iter().map(Vec::len).sum();
        let pairs_b: usize = cov.covered.iter().map(Vec::len).sum();
        assert_eq!(pairs_a, pairs_b);
    }

    #[test]
    fn lone_transmission_is_received() {
        let t = chain();
        let cov = Coverage::of(&t);
        let mut tx = vec![false; 4];
        tx[0] = true;
        assert!(cov.received(0, 1, &tx));
    }

    #[test]
    fn covering_transmitter_destroys_reception() {
        let t = chain();
        let cov = Coverage::of(&t);
        // Node 2's disk (radius 0.3) covers node 1; concurrent tx 0→1 and
        // 2→3 collide at node 1.
        let mut tx = vec![false; 4];
        tx[0] = true;
        tx[2] = true;
        assert!(!cov.received(0, 1, &tx));
        // …while the reception at node 3 succeeds (node 0's disk of
        // radius 0.3 does not reach it, node 1 is silent).
        assert!(cov.received(2, 3, &tx));
    }

    #[test]
    fn half_duplex_receiver_cannot_listen() {
        let t = chain();
        let cov = Coverage::of(&t);
        let mut tx = vec![false; 4];
        tx[0] = true;
        tx[1] = true;
        assert!(!cov.received(0, 1, &tx));
    }

    #[test]
    fn physical_coverage_matches_disk_coverage_in_the_disk_limit() {
        let t = chain();
        let m = PhysModel::disk_equivalent(&t);
        let disk = Coverage::of(&t);
        let phys = Coverage::of_physical(&m);
        assert_eq!(phys.coverers, disk.coverers, "coverer lists must be identical");
        assert_eq!(phys.covered, disk.covered, "covered lists must be identical");
    }

    #[test]
    fn sinr_reception_agrees_with_boolean_reception_on_the_chain() {
        // In the disk limit (β = 1, noise ≈ 0) SINR reception over a
        // uniform chain reduces to the boolean rule: a frame u → v on a
        // link survives iff no other coverer of v transmits. Check every
        // transmit pattern of the four nodes, for every link, both ways.
        use rim_core::physical::SinrTable;
        let t = chain();
        let m = PhysModel::disk_equivalent(&t);
        let disk = Coverage::of(&t);
        let table = SinrTable::of(&m);
        let links = [(0usize, 1usize), (1, 2), (2, 3)];
        for pattern in 0u32..16 {
            let is_tx: Vec<bool> = (0..4).map(|i| pattern & (1 << i) != 0).collect();
            for &(a, b) in &links {
                for (u, v) in [(a, b), (b, a)] {
                    assert_eq!(
                        table.received(&m, u, v, &is_tx),
                        disk.received(u, v, &is_tx),
                        "link {u}->{v} under pattern {pattern:04b}"
                    );
                }
            }
        }
    }
}
